//! Splitting a wide blog-post table into hot and cold columns.
//!
//! The scenario the paper's introduction motivates: a `Post` table holds
//! both frequently accessed columns (title, status) and bulky rarely used
//! ones (body, attachments). The refactoring splits the cold columns into a
//! `PostContent` table. This example also shows what happens when *no*
//! equivalent program exists (the target drops a queried column).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example blog_split
//! ```

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use dbir::Schema;
use migrator::{SynthesisConfig, Synthesizer};

fn main() {
    let source_schema = Schema::parse(
        "Post(post_id: int, title: string, status: string, body: string, attachment: binary)",
    )
    .expect("schema parses");

    let target_schema = Schema::parse(
        "Post(post_id: int, title: string, status: string)\n\
         PostContent(post_id: int, body: string, attachment: binary)",
    )
    .expect("schema parses");

    let source = parse_program(
        r#"
        update addPost(post_id: int, title: string, status: string, body: string, attachment: binary)
            INSERT INTO Post VALUES (post_id: post_id, title: title, status: status,
                                     body: body, attachment: attachment);
        update deletePost(post_id: int)
            DELETE Post FROM Post WHERE post_id = post_id;
        update publishPost(post_id: int, newStatus: string)
            UPDATE Post SET status = newStatus WHERE post_id = post_id;
        query getPostSummary(post_id: int)
            SELECT title, status FROM Post WHERE post_id = post_id;
        query getPostBody(post_id: int)
            SELECT body FROM Post WHERE post_id = post_id;
        query getPostAttachment(post_id: int)
            SELECT attachment FROM Post WHERE post_id = post_id;
        query findPostsByStatus(status: string)
            SELECT title FROM Post WHERE status = status;
        "#,
        &source_schema,
    )
    .expect("program parses");

    let synthesizer = Synthesizer::new(SynthesisConfig::standard());

    println!("== Migrating the blog program to the split schema ==\n");
    let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
    match &result.program {
        Some(program) => {
            println!("{}", program_to_string(program));
            println!(
                "(explored {} candidates across {} value correspondences in {:.3}s)\n",
                result.stats.iterations,
                result.stats.value_correspondences,
                result.stats.total_time().as_secs_f64()
            );
        }
        None => println!("no equivalent program found\n"),
    }

    // A refactoring that loses information: the body column is dropped
    // entirely, but `getPostBody` still needs it, so synthesis must fail.
    let lossy_schema = Schema::parse(
        "Post(post_id: int, title: string, status: string)\n\
         PostContent(post_id: int, attachment: binary)",
    )
    .expect("schema parses");
    println!("== Attempting a lossy refactoring (body column dropped) ==\n");
    let result = synthesizer.synthesize(&source, &source_schema, &lossy_schema);
    match result.program {
        Some(_) => println!("unexpectedly found a program"),
        None => println!(
            "correctly reported that no equivalent program exists \
             (after {} value correspondences)",
            result.stats.value_correspondences
        ),
    }
}
