-- Music library, before refactoring: the artist name is stored inline in
-- every album row.
CREATE TABLE Album (
    album_id INTEGER PRIMARY KEY,
    title VARCHAR(255),
    artist_name VARCHAR(255)
);
