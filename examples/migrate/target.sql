-- Music library, after refactoring: artists move to their own table and
-- albums reference them by surrogate key.
CREATE TABLE Album (
    album_id INTEGER PRIMARY KEY,
    title VARCHAR(255),
    artist_id UUID REFERENCES Artist (artist_id)
);

CREATE TABLE Artist (
    artist_id UUID,
    artist_name VARCHAR(255)
);
