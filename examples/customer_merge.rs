//! Merging a customer table with its address table, and a look under the
//! hood at bounded equivalence checking and minimum failing inputs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example customer_merge
//! ```

use dbir::equiv::TestConfig;
use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use dbir::Schema;
use migrator::verify::{check_candidate, CheckOutcome};
use migrator::{SynthesisConfig, Synthesizer};

fn main() {
    let source_schema = Schema::parse(
        "Customer(cid: int, name: string, tier: string)\n\
         Address(cid: int, street: string, city: string)",
    )
    .expect("schema parses");
    let target_schema = Schema::parse(
        "Customer(cid: int, name: string, tier: string, street: string, city: string)",
    )
    .expect("schema parses");

    let source = parse_program(
        r#"
        update addCustomer(cid: int, name: string, tier: string, street: string, city: string)
            INSERT INTO Customer JOIN Address VALUES (Customer.cid: cid, name: name, tier: tier,
                                                      street: street, city: city);
        update deleteCustomer(cid: int)
            DELETE Customer, Address FROM Customer JOIN Address WHERE Customer.cid = cid;
        update upgradeTier(cid: int, newTier: string)
            UPDATE Customer SET tier = newTier WHERE cid = cid;
        query getCustomer(cid: int)
            SELECT name, tier FROM Customer WHERE cid = cid;
        query getShippingAddress(cid: int)
            SELECT street, city FROM Customer JOIN Address WHERE Customer.cid = cid;
        "#,
        &source_schema,
    )
    .expect("program parses");

    let synthesizer = Synthesizer::new(SynthesisConfig::standard());
    let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
    let migrated = result.program.expect("the merge refactoring synthesizes");

    println!("== Synthesized program over the merged schema ==\n");
    println!("{}", program_to_string(&migrated));

    // Demonstrate the testing infrastructure the synthesizer relies on:
    // a wrong candidate (projecting the wrong column) is rejected with a
    // minimum failing input.
    let wrong = parse_program(
        r#"
        update addCustomer(cid: int, name: string, tier: string, street: string, city: string)
            INSERT INTO Customer VALUES (cid: cid, name: name, tier: tier,
                                         street: street, city: city);
        update deleteCustomer(cid: int)
            DELETE Customer FROM Customer WHERE cid = cid;
        update upgradeTier(cid: int, newTier: string)
            UPDATE Customer SET tier = newTier WHERE cid = cid;
        query getCustomer(cid: int)
            SELECT name, city FROM Customer WHERE cid = cid;
        query getShippingAddress(cid: int)
            SELECT street, city FROM Customer WHERE cid = cid;
        "#,
        &target_schema,
    )
    .expect("program parses");

    println!("== Rejecting an incorrect candidate ==\n");
    match check_candidate(
        &source,
        &source_schema,
        &wrong,
        &target_schema,
        &TestConfig::default(),
    ) {
        CheckOutcome::NotEquivalent {
            minimum_failing_input,
            sequences_tested,
        } => {
            println!("minimum failing input: {minimum_failing_input}");
            println!("(found after executing {sequences_tested} invocation sequences)");
        }
        CheckOutcome::Equivalent { .. } => println!("unexpectedly equivalent"),
        CheckOutcome::Cancelled { .. } => unreachable!("no cancel token installed"),
    }
}
