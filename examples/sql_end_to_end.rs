//! The full SQL pipeline as a library: DDL in, migrated program, SQL and a
//! data-migration script out.
//!
//! This is the same scenario as `examples/migrate/` (a music library whose
//! artist names move into their own table), driven through `sqlbridge`
//! directly instead of the `migrate` binary. Run with:
//!
//! ```text
//! cargo run --release --example sql_end_to_end
//! ```

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use migrator::{SynthesisConfig, Synthesizer};
use sqlbridge::emit::{render_sql_program, Ansi};
use sqlbridge::migration::{migration_script, render_migration_script};
use sqlbridge::parse_ddl;

fn main() {
    let source_schema = parse_ddl(include_str!("migrate/source.sql")).expect("source DDL");
    let target_schema = parse_ddl(include_str!("migrate/target.sql")).expect("target DDL");
    let source =
        parse_program(include_str!("migrate/program.dbp"), &source_schema).expect("program");

    let result = Synthesizer::new(SynthesisConfig::standard()).synthesize(
        &source,
        &source_schema,
        &target_schema,
    );
    let program = result.program.expect("the artist split synthesizes");
    let phi = result.correspondence.expect("success carries phi");

    println!("== migrated program ==\n{}", program_to_string(&program));
    println!("== SQL ==\n{}", render_sql_program(&program, &Ansi));
    let script = migration_script(&source_schema, &target_schema, &phi, &Ansi);
    println!(
        "== data migration ==\n{}",
        render_migration_script(&script, &Ansi)
    );
    println!(
        "== stats ==\nvalue correspondences: {}, iterations: {}, total time: {:.3}s",
        result.stats.value_correspondences,
        result.stats.iterations,
        result.stats.total_time().as_secs_f64()
    );
}
