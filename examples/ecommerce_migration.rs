//! Migrating an application-scale e-commerce program.
//!
//! This example uses the benchmark generator to build a CRUD-style program
//! shaped like the paper's `coachup` application (45 functions over 4
//! tables) and migrates it to a schema where the first table is split and a
//! table gains new columns. It prints the per-stage statistics so the cost
//! profile of large benchmarks is visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ecommerce_migration
//! ```

use benchmarks::realworld::{build, RealWorldSpec, Refactoring};
use benchmarks::PaperNumbers;
use dbir::equiv::TestConfig;
use dbir::pretty::function_to_string;
use migrator::{SynthesisConfig, Synthesizer};

fn main() {
    // An e-commerce-flavoured application: users, orders, products, carts.
    let spec = RealWorldSpec {
        name: "ecommerce-demo",
        description: "Split the user table, add audit columns to orders",
        tables: 4,
        attrs: 40,
        funcs: 32,
        pairs: vec![],
        refactoring: vec![
            Refactoring::Split { table: 0, moved: 3 },
            Refactoring::AddAttrs { table: 1, count: 2 },
        ],
        paper: PaperNumbers {
            funcs: 32,
            source_tables: 4,
            source_attrs: 40,
            target_tables: 5,
            target_attrs: 43,
            value_corr: 1,
            iters: 1,
            synth_time_secs: 0.0,
            total_time_secs: 0.0,
            sketch_time_secs: None,
            enumerative_iters: None,
            enumerative_time_secs: None,
        },
    };
    let benchmark = build(&spec);

    println!(
        "source: {} tables, {} attributes, {} functions",
        benchmark.source_schema.table_count(),
        benchmark.source_schema.attr_count(),
        benchmark.source_program.functions.len()
    );
    println!(
        "target: {} tables, {} attributes\n",
        benchmark.target_schema.table_count(),
        benchmark.target_schema.attr_count()
    );

    // Application-scale runs use a slightly leaner testing configuration
    // (fewer argument combinations per function) — the same trade-off the
    // experiment harness makes for the real-world benchmarks.
    let config = SynthesisConfig {
        testing: TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::default()
        },
        verification: TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::thorough()
        },
        ..SynthesisConfig::standard()
    };
    let synthesizer = Synthesizer::new(config);
    let result = synthesizer.synthesize(
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
    );

    match result.program {
        Some(program) => {
            println!("== A few migrated functions ==\n");
            for function in program.functions.iter().take(4) {
                println!("{}", function_to_string(function));
            }
            println!("== Statistics ==");
            println!(
                "value correspondences: {}",
                result.stats.value_correspondences
            );
            println!("candidates explored:   {}", result.stats.iterations);
            println!("sequences executed:    {}", result.stats.sequences_tested);
            println!(
                "synthesis time:        {:.2}s",
                result.stats.synthesis_time.as_secs_f64()
            );
            println!(
                "verification time:     {:.2}s",
                result.stats.verification_time.as_secs_f64()
            );
        }
        None => {
            eprintln!("no equivalent program was found");
            std::process::exit(1);
        }
    }
}
