//! Quickstart: the paper's motivating example (Section 2).
//!
//! A course-management program stores instructor and TA pictures inline;
//! the refactored schema moves pictures into a dedicated `Picture` table.
//! The synthesizer migrates the program automatically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use dbir::Schema;
use migrator::{SynthesisConfig, Synthesizer};

fn main() {
    // The source schema stores pictures inline (Figure 2 of the paper).
    let source_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, IPic: binary)\n\
         TA(TaId: int, TName: string, TPic: binary)",
    )
    .expect("source schema is well-formed");

    // The target schema introduces a Picture table (Section 2).
    let target_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, PicId: id)\n\
         TA(TaId: int, TName: string, PicId: id)\n\
         Picture(PicId: id, Pic: binary)",
    )
    .expect("target schema is well-formed");

    // The original program over the source schema.
    let source = parse_program(
        r#"
        update addInstructor(id: int, name: string, pic: binary)
            INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
        update deleteInstructor(id: int)
            DELETE Instructor FROM Instructor WHERE InstId = id;
        query getInstructorInfo(id: int)
            SELECT IName, IPic FROM Instructor WHERE InstId = id;
        update addTA(id: int, name: string, pic: binary)
            INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
        update deleteTA(id: int)
            DELETE TA FROM TA WHERE TaId = id;
        query getTAInfo(id: int)
            SELECT TName, TPic FROM TA WHERE TaId = id;
        "#,
        &source_schema,
    )
    .expect("source program parses");

    println!("== Source program (over the old schema) ==\n");
    println!("{}", program_to_string(&source));

    let synthesizer = Synthesizer::new(SynthesisConfig::standard());
    let result = synthesizer.synthesize(&source, &source_schema, &target_schema);

    match result.program {
        Some(program) => {
            println!("== Synthesized program (over the new schema) ==\n");
            println!("{}", program_to_string(&program));
            println!("== Statistics ==");
            println!(
                "value correspondences considered: {}",
                result.stats.value_correspondences
            );
            println!(
                "candidate programs explored:      {}",
                result.stats.iterations
            );
            println!(
                "search space of largest sketch:   {} completions",
                result.stats.largest_search_space
            );
            println!(
                "synthesis time:                   {:.3}s",
                result.stats.synthesis_time.as_secs_f64()
            );
            println!(
                "verification time:                {:.3}s",
                result.stats.verification_time.as_secs_f64()
            );
        }
        None => {
            eprintln!("no equivalent program was found");
            std::process::exit(1);
        }
    }
}
