//! The paper's running example (Section 2), checked end to end at the level
//! of the individual pipeline stages: value correspondence, sketch shape,
//! search-space size and MFI-guided completion.

use dbir::equiv::{SourceOracle, TestConfig};
use dbir::parser::parse_program;
use dbir::schema::QualifiedAttr;
use dbir::{Program, Schema};
use migrator::completion::{complete_sketch, BlockingStrategy, CompletionControls};
use migrator::sketch_gen::{generate_sketch, SketchGenConfig};
use migrator::value_corr::{VcConfig, VcEnumerator};

fn schemas_and_program() -> (Schema, Schema, Program) {
    let source_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, IPic: binary)\n\
         TA(TaId: int, TName: string, TPic: binary)",
    )
    .unwrap();
    let target_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, PicId: id)\n\
         TA(TaId: int, TName: string, PicId: id)\n\
         Picture(PicId: id, Pic: binary)",
    )
    .unwrap();
    let program = parse_program(
        r#"
        update addInstructor(id: int, name: string, pic: binary)
            INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
        update deleteInstructor(id: int)
            DELETE Instructor FROM Instructor WHERE InstId = id;
        query getInstructorInfo(id: int)
            SELECT IName, IPic FROM Instructor WHERE InstId = id;
        update addTA(id: int, name: string, pic: binary)
            INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
        update deleteTA(id: int)
            DELETE TA FROM TA WHERE TaId = id;
        query getTAInfo(id: int)
            SELECT TName, TPic FROM TA WHERE TaId = id;
        "#,
        &source_schema,
    )
    .unwrap();
    (source_schema, target_schema, program)
}

#[test]
fn first_value_correspondence_matches_the_paper() {
    let (source_schema, target_schema, program) = schemas_and_program();
    let mut enumerator = VcEnumerator::new(
        &program,
        &source_schema,
        &target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator
        .next_correspondence()
        .expect("a correspondence exists");
    // Section 2: IPic -> Picture.Pic, TPic -> Picture.Pic, all other
    // attributes map to the same-named attribute.
    assert_eq!(
        phi.images(&QualifiedAttr::new("Instructor", "IPic")),
        [QualifiedAttr::new("Picture", "Pic")].into_iter().collect()
    );
    assert_eq!(
        phi.images(&QualifiedAttr::new("TA", "TPic")),
        [QualifiedAttr::new("Picture", "Pic")].into_iter().collect()
    );
    for (table, attr) in [
        ("Class", "ClassId"),
        ("Instructor", "InstId"),
        ("Instructor", "IName"),
        ("TA", "TaId"),
        ("TA", "TName"),
    ] {
        assert!(
            phi.images(&QualifiedAttr::new(table, attr))
                .contains(&QualifiedAttr::new(table, attr)),
            "{table}.{attr} should map to itself"
        );
    }
}

#[test]
fn sketch_search_space_is_at_least_as_large_as_the_papers() {
    let (source_schema, target_schema, program) = schemas_and_program();
    let mut enumerator = VcEnumerator::new(
        &program,
        &source_schema,
        &target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator.next_correspondence().unwrap();
    let sketch = generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default())
        .expect("the first correspondence admits a sketch");
    // The paper reports 164,025 completions for its sketch (Figure 3); our
    // join-chain enumeration finds a superset of the paper's chains, so the
    // space is at least that large.
    assert!(sketch.completion_count() >= 164_025);
    // Eight holes as in Figure 3: one per insert, two per delete, one per query.
    assert_eq!(sketch.holes.len(), 8);
}

#[test]
fn mfi_guided_completion_finds_the_figure_4_program() {
    let (source_schema, target_schema, program) = schemas_and_program();
    let mut enumerator = VcEnumerator::new(
        &program,
        &source_schema,
        &target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator.next_correspondence().unwrap();
    let sketch =
        generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
    let oracle = SourceOracle::new(&program, &source_schema);
    let outcome = complete_sketch(
        &sketch,
        &oracle,
        &target_schema,
        &TestConfig::default(),
        &TestConfig::thorough(),
        BlockingStrategy::MinimumFailingInput,
        0,
        CompletionControls::none(),
    );
    let synthesized = outcome.program.expect("completion succeeds");
    // Figure 4: every function routes pictures through the Picture table,
    // and the add functions insert into both the entity table and Picture.
    for name in ["addInstructor", "getInstructorInfo", "addTA", "getTAInfo"] {
        assert!(
            synthesized
                .function(name)
                .unwrap()
                .tables()
                .contains(&"Picture".into()),
            "{name} should use the Picture table"
        );
    }
    // MFI-based learning must prune aggressively: the number of candidates
    // examined must be a vanishing fraction of the search space.
    assert!(outcome.stats.iterations as u128 * 100 < outcome.stats.search_space);
}
