//! End-to-end synthesis of the ten textbook benchmarks (Table 1, upper
//! half): every benchmark must synthesize an equivalent program over its
//! target schema with the standard configuration.

use benchmarks::{benchmark_by_name, Benchmark};
use dbir::equiv::{compare_programs, TestConfig};
use migrator::{SynthesisConfig, Synthesizer};

fn synthesize_and_check(benchmark: &Benchmark) {
    let synthesizer = Synthesizer::new(SynthesisConfig::standard());
    let result = synthesizer.synthesize(
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
    );
    let program = result.program.unwrap_or_else(|| {
        panic!(
            "benchmark {} failed to synthesize (VCs: {}, iterations: {})",
            benchmark.name, result.stats.value_correspondences, result.stats.iterations
        )
    });
    assert!(
        program.validate(&benchmark.target_schema).is_ok(),
        "{}: synthesized program is ill-formed",
        benchmark.name
    );
    assert_eq!(
        program.functions.len(),
        benchmark.source_program.functions.len(),
        "{}: synthesized program must keep every function",
        benchmark.name
    );
    // Independent equivalence check at a deeper bound than the synthesizer's
    // in-loop testing.
    let report = compare_programs(
        &benchmark.source_program,
        &benchmark.source_schema,
        &program,
        &benchmark.target_schema,
        &TestConfig::thorough(),
    );
    assert!(
        report.equivalent,
        "{}: synthesized program is not equivalent (counterexample: {:?})",
        benchmark.name, report.counterexample
    );
    assert!(result.stats.value_correspondences >= 1);
    assert!(result.stats.iterations >= 1);
}

macro_rules! textbook_test {
    ($test_name:ident, $benchmark:expr) => {
        #[test]
        fn $test_name() {
            let benchmark = benchmark_by_name($benchmark).expect("benchmark exists");
            synthesize_and_check(&benchmark);
        }
    };
}

textbook_test!(oracle_1_synthesizes, "Oracle-1");
textbook_test!(oracle_2_synthesizes, "Oracle-2");
textbook_test!(ambler_1_synthesizes, "Ambler-1");
textbook_test!(ambler_2_synthesizes, "Ambler-2");
textbook_test!(ambler_3_synthesizes, "Ambler-3");
textbook_test!(ambler_4_synthesizes, "Ambler-4");
textbook_test!(ambler_5_synthesizes, "Ambler-5");
textbook_test!(ambler_6_synthesizes, "Ambler-6");
textbook_test!(ambler_7_synthesizes, "Ambler-7");
textbook_test!(ambler_8_synthesizes, "Ambler-8");
