//! Property-based tests at the synthesizer level: for randomly generated
//! rename refactorings, the synthesizer always produces an equivalent
//! program, and sketch instantiation is total over its assignment space.

use dbir::equiv::{compare_programs, TestConfig};
use dbir::parser::parse_program;
use dbir::Schema;
use migrator::sketch_gen::{generate_sketch, SketchGenConfig};
use migrator::value_corr::{VcConfig, VcEnumerator};
use migrator::{SynthesisConfig, Synthesizer};
use proptest::prelude::*;

/// A lowercase identifier usable as a column name.
fn ident() -> impl Strategy<Value = String> {
    "[a-z]{3,8}"
}

/// A random single-table rename scenario: source columns plus, for each, a
/// possibly different target name.
fn rename_scenario() -> impl Strategy<Value = (Vec<String>, Vec<String>)> {
    proptest::collection::btree_set(ident(), 2..5).prop_flat_map(|names| {
        let names: Vec<String> = names.into_iter().collect();
        let renames = names
            .iter()
            .map(|n| {
                prop_oneof![
                    2 => Just(n.clone()),
                    1 => Just(format!("{n}_v2")),
                ]
            })
            .collect::<Vec<_>>();
        (Just(names), renames)
    })
}

fn build_schema(table: &str, key: &str, columns: &[String]) -> Schema {
    let mut text = format!("{table}({key}: int");
    for column in columns {
        text.push_str(&format!(", {column}: string"));
    }
    text.push(')');
    Schema::parse(&text).expect("generated schema is well-formed")
}

fn build_program(schema: &Schema, key: &str, columns: &[String]) -> dbir::Program {
    let mut text = String::new();
    // Insert function covering every column.
    text.push_str(&format!("update addRow({key}: int"));
    for column in columns {
        text.push_str(&format!(", {column}: string"));
    }
    text.push_str(")\n    INSERT INTO Data VALUES (");
    text.push_str(&format!("{key}: {key}"));
    for column in columns {
        text.push_str(&format!(", {column}: {column}"));
    }
    text.push_str(");\n");
    // One query per column plus a delete.
    for (i, column) in columns.iter().enumerate() {
        text.push_str(&format!(
            "query get{i}({key}: int) SELECT {column} FROM Data WHERE {key} = {key};\n"
        ));
    }
    text.push_str(&format!(
        "update deleteRow({key}: int) DELETE Data FROM Data WHERE {key} = {key};\n"
    ));
    parse_program(&text, schema).expect("generated program parses")
}

proptest! {
    // End-to-end synthesis per case is relatively expensive; keep the number
    // of cases modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Renaming any subset of a table's columns is always synthesized, and
    /// the result is equivalent to the source program.
    #[test]
    fn random_renames_synthesize((columns, renamed) in rename_scenario()) {
        let source_schema = build_schema("Data", "row_id", &columns);
        let target_schema = build_schema("Data", "row_id", &renamed);
        let program = build_program(&source_schema, "row_id", &columns);

        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&program, &source_schema, &target_schema);
        let migrated = result.program.expect("rename refactorings always synthesize");
        let report = compare_programs(
            &program,
            &source_schema,
            &migrated,
            &target_schema,
            &TestConfig::default(),
        );
        prop_assert!(report.equivalent);
    }

    /// Every assignment of the motivating-example sketch either instantiates
    /// to a well-formed program or reports a structural conflict naming at
    /// least one hole (instantiation never panics and never produces an
    /// ill-formed program silently).
    #[test]
    fn sketch_instantiation_is_total(seed in proptest::collection::vec(0usize..1000, 8))
    {
        let source_schema = Schema::parse(
            "Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        ).unwrap();
        let target_schema = Schema::parse(
            "Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        ).unwrap();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &source_schema,
        ).unwrap();
        let mut enumerator = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = enumerator.next_correspondence().unwrap();
        let sketch = generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default())
            .unwrap();
        let assignment: Vec<usize> = sketch
            .holes
            .iter()
            .zip(&seed)
            .map(|(hole, s)| s % hole.domain.size())
            .collect();
        // The seed vector must be at least as long as the hole table for the
        // zip above to cover every hole.
        prop_assume!(seed.len() >= sketch.holes.len());
        match sketch.instantiate(&assignment) {
            Ok(candidate) => prop_assert!(candidate.validate(&target_schema).is_ok()),
            Err(conflicts) => {
                prop_assert!(!conflicts.is_empty());
                for conflict in conflicts {
                    prop_assert!(!conflict.holes.is_empty());
                }
            }
        }
    }
}
