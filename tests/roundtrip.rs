//! Round-trip property: pretty-printing any benchmark program and parsing
//! it back yields the same program, for all 20 evaluation benchmarks (both
//! the source programs and freshly synthesized target programs for a few
//! fast benchmarks).

use benchmarks::all_benchmarks;
use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use migrator::{SynthesisConfig, Synthesizer};

#[test]
fn benchmark_source_programs_roundtrip_through_the_printer() {
    for benchmark in all_benchmarks() {
        let text = program_to_string(&benchmark.source_program);
        let reparsed = parse_program(&text, &benchmark.source_schema).unwrap_or_else(|e| {
            panic!(
                "pretty-printed {} does not parse: {e}\n{text}",
                benchmark.name
            )
        });
        assert_eq!(
            benchmark.source_program, reparsed,
            "benchmark {} does not round-trip",
            benchmark.name
        );
    }
}

#[test]
fn synthesized_programs_roundtrip_too() {
    for name in ["Ambler-4", "Oracle-1"] {
        let benchmark = benchmarks::benchmark_by_name(name).expect("benchmark exists");
        let result = Synthesizer::new(SynthesisConfig::standard()).synthesize(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
        );
        let program = result.program.expect("fast benchmark synthesizes");
        let text = program_to_string(&program);
        let reparsed = parse_program(&text, &benchmark.target_schema)
            .unwrap_or_else(|e| panic!("synthesized {name} does not parse: {e}\n{text}"));
        assert_eq!(program, reparsed, "synthesized {name} does not round-trip");
    }
}
