//! End-to-end SQL pipeline test on the music-library example (not one of
//! the 20 paper benchmarks): DDL in, synthesized program + SQL + data
//! migration out, exercised at the library level.

use dbir::equiv::{compare_programs, TestConfig};
use dbir::parser::parse_program;
use migrator::{SynthesisConfig, Synthesizer};
use sqlbridge::emit::{render_sql_program, schema_to_ddl, Ansi, Dialect, Postgres, Sqlite};
use sqlbridge::migration::{migration_script, render_migration_script};
use sqlbridge::parse_ddl;
use sqlexec::{validate_migration, MemoryBackend};

const SOURCE_DDL: &str = include_str!("../examples/migrate/source.sql");
const TARGET_DDL: &str = include_str!("../examples/migrate/target.sql");
const PROGRAM: &str = include_str!("../examples/migrate/program.dbp");

#[test]
fn music_library_migrates_end_to_end() {
    let source_schema = parse_ddl(SOURCE_DDL).expect("source DDL parses");
    let target_schema = parse_ddl(TARGET_DDL).expect("target DDL parses");
    assert_eq!(source_schema.table_count(), 1);
    assert_eq!(target_schema.table_count(), 2);
    assert_eq!(target_schema.foreign_keys().len(), 1);

    let source = parse_program(PROGRAM, &source_schema).expect("program parses");
    let result = Synthesizer::new(SynthesisConfig::standard()).synthesize(
        &source,
        &source_schema,
        &target_schema,
    );
    let program = result.program.expect("the artist split synthesizes");
    let phi = result.correspondence.expect("success carries phi");

    // The migrated program is genuinely equivalent to the source program.
    let report = compare_programs(
        &source,
        &source_schema,
        &program,
        &target_schema,
        &TestConfig::default(),
    );
    assert!(report.equivalent);

    // All provided dialects render the program and the migration script.
    for dialect in [&Ansi as &dyn Dialect, &Sqlite, &Postgres] {
        let sql = render_sql_program(&program, dialect);
        let artist_insert = format!("INSERT INTO {}", dialect.ident("Artist"));
        assert!(
            sql.contains(&artist_insert),
            "{} dialect misses the Artist insert:\n{sql}",
            dialect.name()
        );
        let script = migration_script(&source_schema, &target_schema, &phi, dialect);
        assert_eq!(script.statements.len(), 2, "{:#?}", script.statements);
        assert!(script.statements[0].starts_with(&artist_insert));
        assert!(
            script.statements[1].starts_with(&format!("INSERT INTO {}", dialect.ident("Album")))
        );
        let rendered = render_migration_script(&script, dialect);
        assert!(rendered.contains("BEGIN;") && rendered.contains("COMMIT;"));
    }

    // The ingested schemas survive a DDL round trip.
    for schema in [&source_schema, &target_schema] {
        let reparsed = parse_ddl(&schema_to_ddl(schema, &Ansi)).expect("emitted DDL parses");
        assert_eq!(schema, &reparsed);
    }

    // And the emitted migration *executes*: seeded source instance, DDL +
    // data moves through the in-memory SQL backend, result row-multiset
    // equal to the dbir-level prediction.
    let outcome = validate_migration(
        &source_schema,
        &target_schema,
        &phi,
        &mut MemoryBackend::new(),
        3,
    )
    .expect("memory backend runs");
    assert!(outcome.ok, "{:#?}", outcome);
}
