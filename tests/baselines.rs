//! Cross-checks between the MFI-guided solver and the two baseline solvers
//! (symbolic enumeration without MFIs, and the CEGIS-style enumerator that
//! stands in for the Sketch tool).

use benchmarks::benchmark_by_name;
use dbir::equiv::{compare_programs, SourceOracle, TestConfig};
use migrator::baselines::{solve_cegis, solve_enumerative, CegisConfig};
use migrator::completion::{complete_sketch, BlockingStrategy, CompletionControls};
use migrator::sketch_gen::{generate_sketch, SketchGenConfig};
use migrator::value_corr::{VcConfig, VcEnumerator};
use migrator::{SynthesisConfig, Synthesizer};

/// All three solvers must agree (and produce equivalent programs) on the
/// small rename benchmark.
#[test]
fn all_solvers_agree_on_ambler_4() {
    let benchmark = benchmark_by_name("Ambler-4").unwrap();
    let mut enumerator = VcEnumerator::new(
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator.next_correspondence().unwrap();
    let sketch = generate_sketch(
        &benchmark.source_program,
        &phi,
        &benchmark.target_schema,
        &SketchGenConfig::default(),
    )
    .unwrap();

    let oracle = SourceOracle::new(&benchmark.source_program, &benchmark.source_schema);
    let mfi = complete_sketch(
        &sketch,
        &oracle,
        &benchmark.target_schema,
        &TestConfig::default(),
        &TestConfig::default(),
        BlockingStrategy::MinimumFailingInput,
        0,
        CompletionControls::none(),
    );
    let enumerative = solve_enumerative(
        &sketch,
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
        &TestConfig::default(),
        &TestConfig::default(),
        0,
    );
    let cegis = solve_cegis(
        &sketch,
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
        &CegisConfig::default(),
    );

    for (label, program) in [
        ("mfi", mfi.program),
        ("enumerative", enumerative.program),
        ("cegis", cegis.program),
    ] {
        let program = program.unwrap_or_else(|| panic!("{label} solver failed"));
        let report = compare_programs(
            &benchmark.source_program,
            &benchmark.source_schema,
            &program,
            &benchmark.target_schema,
            &TestConfig::thorough(),
        );
        assert!(
            report.equivalent,
            "{label} produced a non-equivalent program"
        );
    }

    // The MFI solver must not need more candidates than plain enumeration.
    assert!(mfi.stats.iterations <= enumerative.stats.iterations);
}

/// The enumerative baseline explores at least as many candidates as the
/// MFI-guided solver on a benchmark with a non-trivial search space.
#[test]
fn mfi_prunes_more_than_enumeration_on_ambler_1() {
    let benchmark = benchmark_by_name("Ambler-1").unwrap();
    let mut iterations = Vec::new();
    for solver in [
        migrator::SketchSolverKind::MfiGuided,
        migrator::SketchSolverKind::Enumerative,
    ] {
        let config = SynthesisConfig {
            solver,
            ..SynthesisConfig::standard()
        };
        let result = Synthesizer::new(config).synthesize(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
        );
        assert!(result.succeeded(), "{solver:?} failed to synthesize");
        iterations.push(result.stats.iterations);
    }
    assert!(
        iterations[0] <= iterations[1],
        "MFI-guided search ({}) should need no more iterations than enumeration ({})",
        iterations[0],
        iterations[1]
    );
}

/// The CEGIS baseline times out (hits its budget) on a benchmark with a
/// large search space, reproducing the shape of Table 2.
#[test]
fn cegis_baseline_hits_its_budget_on_the_motivating_example() {
    let source_schema = dbir::Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, IPic: binary)\n\
         TA(TaId: int, TName: string, TPic: binary)",
    )
    .unwrap();
    let target_schema = dbir::Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, PicId: id)\n\
         TA(TaId: int, TName: string, PicId: id)\n\
         Picture(PicId: id, Pic: binary)",
    )
    .unwrap();
    let program = dbir::parser::parse_program(
        r#"
        update addInstructor(id: int, name: string, pic: binary)
            INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
        update deleteInstructor(id: int)
            DELETE Instructor FROM Instructor WHERE InstId = id;
        query getInstructorInfo(id: int)
            SELECT IName, IPic FROM Instructor WHERE InstId = id;
        update addTA(id: int, name: string, pic: binary)
            INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
        update deleteTA(id: int)
            DELETE TA FROM TA WHERE TaId = id;
        query getTAInfo(id: int)
            SELECT TName, TPic FROM TA WHERE TaId = id;
        "#,
        &source_schema,
    )
    .unwrap();
    let mut enumerator = VcEnumerator::new(
        &program,
        &source_schema,
        &target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator.next_correspondence().unwrap();
    let sketch =
        generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
    // A deliberately small budget: lexicographic enumeration cannot reach a
    // correct completion of a ~10^5-program space in 50 candidates.
    let outcome = solve_cegis(
        &sketch,
        &program,
        &source_schema,
        &target_schema,
        &CegisConfig {
            max_candidates: 50,
            time_limit: std::time::Duration::from_secs(5),
            testing: TestConfig::default(),
        },
    );
    assert!(outcome.program.is_none());
    assert!(outcome.timed_out);
}
