//! # migrator-suite — workspace umbrella
//!
//! This crate ties the workspace together for the examples and integration
//! tests: it re-exports the database-program IR ([`dbir`]), the synthesizer
//! ([`migrator`]) and the evaluation benchmarks ([`benchmarks`]).
//!
//! See the individual crates for the real functionality:
//!
//! * [`pipeline`] — the `Refactoring` facade: typed stages
//!   (synthesize → emit → validate), progress events, cancellation &
//!   deadlines, structured errors — the recommended entry point;
//! * [`dbir`] — schemas, programs, the in-memory engine, bounded
//!   equivalence checking;
//! * [`migrator`] — value-correspondence enumeration, sketch generation and
//!   MFI-guided sketch completion;
//! * [`sqlexec`] — the in-memory SQL execution backend and the end-to-end
//!   migration validator;
//! * [`benchmarks`] — the 20 evaluation benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use benchmarks;
pub use dbir;
pub use migrator;
pub use pipeline;
pub use sqlexec;

/// Convenience re-export of the most commonly used entry points.
pub mod prelude {
    pub use benchmarks::{all_benchmarks, benchmark_by_name, Benchmark};
    pub use dbir::{parser::parse_program, Program, Schema};
    pub use migrator::{SynthesisConfig, Synthesizer};
    pub use pipeline::{RefactorError, Refactoring};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let schema = Schema::parse("T(a: int)").unwrap();
        let program = parse_program("query q(a: int) SELECT a FROM T WHERE a = a;", &schema);
        assert!(program.is_ok());
        assert_eq!(all_benchmarks().len(), 20);
        let _ = Synthesizer::new(SynthesisConfig::standard());
    }
}
