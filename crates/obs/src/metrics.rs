//! A metrics registry: named counters and timing histograms.
//!
//! The registry follows the determinism contract established by the
//! synthesis event log: **counters** must be byte-identical at any thread
//! count — callers achieve this by recording per-worker deltas into local
//! shards and merging them in enumeration order — while **timings** are
//! wall-clock diagnostics and are excluded from deterministic renderings
//! ([`Metrics::render_counters`]) and from `experiments check` comparisons.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use sqlbridge::Json;

const BUCKETS: usize = 32;

/// Aggregated wall-clock timing for one name: count, total, max and a
/// power-of-two microsecond histogram.
#[derive(Debug, Clone, Default)]
pub struct TimingStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: Duration,
    /// Largest single sample.
    pub max: Duration,
    /// `buckets[i]` counts samples with `2^(i-1) <= µs < 2^i` (bucket 0
    /// holds sub-microsecond samples).
    pub buckets: [u64; BUCKETS],
}

impl TimingStat {
    fn record(&mut self, duration: Duration) {
        self.count += 1;
        self.total += duration;
        self.max = self.max.max(duration);
        let micros = duration.as_micros();
        let index = if micros == 0 {
            0
        } else {
            (128 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[index] += 1;
    }

    /// Mean sample duration (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, TimingStat>,
}

/// A thread-safe registry of counters and timing histograms.
///
/// Locks recover from poisoning so a consumer panic cannot destroy the
/// collected numbers.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Returns the current value of the named counter (zero if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Records one wall-clock timing sample under `name`.
    pub fn record_time(&self, name: &str, duration: Duration) {
        let mut inner = self.lock();
        inner
            .timings
            .entry(name.to_string())
            .or_default()
            .record(duration);
    }

    /// Renders only the counters, sorted by name — the deterministic
    /// subset of the registry.  Two runs of the same workload at different
    /// thread counts must produce byte-identical output here.
    pub fn render_counters(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("{name} = {value}\n"));
        }
        out
    }

    /// Renders counters plus wall-clock timing summaries (count, total,
    /// mean, max).  The timing half varies run to run; never compare it.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("{name} = {value}\n"));
        }
        for (name, stat) in &inner.timings {
            out.push_str(&format!(
                "{name}: count {} total {:.3?} mean {:.3?} max {:.3?}\n",
                stat.count,
                stat.total,
                stat.mean(),
                stat.max
            ));
        }
        out
    }

    /// Renders the registry as JSON: a deterministic `counters` object and
    /// a wall-clock `timings` object.
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        let mut counters = Json::object();
        for (name, value) in &inner.counters {
            counters = counters.with(name.clone(), Json::from(*value as usize));
        }
        let mut timings = Json::object();
        for (name, stat) in &inner.timings {
            timings = timings.with(
                name.clone(),
                Json::object()
                    .with("count", Json::from(stat.count as usize))
                    .with("total_secs", Json::from(stat.total.as_secs_f64()))
                    .with("max_secs", Json::from(stat.max.as_secs_f64())),
            );
        }
        Json::object()
            .with("counters", counters)
            .with("timings", timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let metrics = Metrics::new();
        metrics.counter("z.last", 1);
        metrics.counter("a.first", 2);
        metrics.counter("a.first", 3);
        assert_eq!(metrics.counter_value("a.first"), 5);
        assert_eq!(metrics.render_counters(), "a.first = 5\nz.last = 1\n");
    }

    #[test]
    fn timings_are_excluded_from_the_deterministic_rendering() {
        let metrics = Metrics::new();
        metrics.counter("n", 1);
        metrics.record_time("t", Duration::from_millis(7));
        assert_eq!(metrics.render_counters(), "n = 1\n");
        assert!(metrics.render().contains("t: count 1"));
    }

    #[test]
    fn histogram_buckets_follow_powers_of_two() {
        let mut stat = TimingStat::default();
        stat.record(Duration::from_micros(0));
        stat.record(Duration::from_micros(1));
        stat.record(Duration::from_micros(2));
        stat.record(Duration::from_micros(3));
        assert_eq!(stat.buckets[0], 1);
        assert_eq!(stat.buckets[1], 1); // 1µs
        assert_eq!(stat.buckets[2], 2); // 2µs and 3µs
        assert_eq!(stat.count, 4);
    }
}
