//! Pipeline-stage events: ingest, emission and validation progress.
//!
//! The synthesis loop already streams `SynthesisEvent`s; these events fill
//! the remaining gap — DDL ingestion, SQL emission, backend execution and
//! validation comparison — so a consumer can follow a refactoring from the
//! first parsed table to the final instance diff.

use std::fmt;
use std::sync::Mutex;

/// One observable step of the refactoring pipeline outside the synthesis
/// loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineEvent {
    /// A DDL input was parsed into a schema.
    DdlParsed {
        /// Which input this was (`"source"` or `"target"`).
        input: String,
        /// Number of tables in the parsed schema.
        tables: usize,
    },
    /// The synthesized program was emitted as SQL.
    Emitted {
        /// Dialect the SQL was emitted for.
        dialect: String,
        /// Number of emitted SQL functions.
        functions: usize,
        /// Number of data-migration statements in the script.
        statements: usize,
    },
    /// One data move of the migration script was planned during emission:
    /// which target table it fills and which (joined) source tables feed
    /// it. Emitted once per planned `INSERT INTO .. SELECT` statement, so a
    /// `watch` consumer sees the shape of the migration before anything
    /// executes.
    DataMovePlanned {
        /// Target table receiving the moved rows.
        target: String,
        /// Source tables joined to produce the rows, in join order.
        tables: Vec<String>,
        /// 1-based index of this move among the planned moves.
        statement: usize,
        /// Total planned data-move statements.
        statements: usize,
    },
    /// The backend executed one data-move statement of the migration
    /// script. This is the migration-progress event the zero-downtime
    /// (expand/contract) execution story builds on: a chunked backfill
    /// reports one of these per completed chunk.
    DataMoved {
        /// Backend that executed the statement.
        backend: String,
        /// Target table that received rows.
        table: String,
        /// 1-based index of this move among the data-move statements.
        statement: usize,
        /// Total data-move statements in the script.
        statements: usize,
        /// Rows present in the target table after this move.
        rows: usize,
    },
    /// The end-to-end validation script was staged for a backend.
    ScriptStaged {
        /// Backend the script is staged for.
        backend: String,
        /// Rows seeded per source table.
        seeded_rows: usize,
        /// Number of migration statements in the staged script.
        statements: usize,
    },
    /// The backend executed one section of the staged script.
    BackendStatementExecuted {
        /// Backend that executed the section.
        backend: String,
        /// Which section ran (`"ddl"`, `"seed"`, `"migration"`).
        phase: String,
        /// Number of SQL statements in the section.
        statements: usize,
    },
    /// The migrated instance was compared against the predicted target.
    ValidationCompared {
        /// Backend whose result was compared.
        backend: String,
        /// Whether the instances agreed.
        ok: bool,
        /// Number of target tables compared.
        tables_compared: usize,
        /// Number of row-level differences found.
        diffs: usize,
    },
}

impl fmt::Display for PipelineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineEvent::DdlParsed { input, tables } => {
                write!(f, "parsed {input} DDL: {tables} table(s)")
            }
            PipelineEvent::Emitted {
                dialect,
                functions,
                statements,
            } => write!(
                f,
                "emitted {functions} function(s), {statements} migration statement(s) [{dialect}]"
            ),
            PipelineEvent::DataMovePlanned {
                target,
                tables,
                statement,
                statements,
            } => write!(
                f,
                "planned data move {statement}/{statements}: {} -> {target}",
                tables.join(" + ")
            ),
            PipelineEvent::DataMoved {
                backend,
                table,
                statement,
                statements,
                rows,
            } => write!(
                f,
                "{backend} moved data {statement}/{statements}: {table} now {rows} row(s)"
            ),
            PipelineEvent::ScriptStaged {
                backend,
                seeded_rows,
                statements,
            } => write!(
                f,
                "staged validation script for {backend}: {seeded_rows} row(s)/table, {statements} migration statement(s)"
            ),
            PipelineEvent::BackendStatementExecuted {
                backend,
                phase,
                statements,
            } => write!(f, "{backend} executed {phase}: {statements} statement(s)"),
            PipelineEvent::ValidationCompared {
                backend,
                ok,
                tables_compared,
                diffs,
            } => write!(
                f,
                "validation on {backend}: {} ({tables_compared} table(s), {diffs} diff(s))",
                if *ok { "ok" } else { "MISMATCH" }
            ),
        }
    }
}

/// A consumer of pipeline-stage events.  Implementations must tolerate
/// being called from any thread.
pub trait PipelineObserver: Send + Sync {
    /// Called once per pipeline event, in stage order.
    fn pipeline_event(&self, event: &PipelineEvent);
}

/// A [`PipelineObserver`] that buffers events for later inspection.
///
/// Like the synthesis `EventLog`, the buffer survives a poisoned lock: a
/// panicking consumer thread cannot wipe the record that explains it.
#[derive(Debug, Default)]
pub struct PipelineEventLog {
    events: Mutex<Vec<PipelineEvent>>,
}

impl PipelineEventLog {
    /// Creates an empty log.
    pub fn new() -> PipelineEventLog {
        PipelineEventLog::default()
    }

    /// Returns a copy of the buffered events in arrival order.
    pub fn events(&self) -> Vec<PipelineEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Renders the buffered events one per line.
    pub fn render(&self) -> String {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&format!("{event}\n"));
        }
        out
    }
}

impl PipelineObserver for PipelineEventLog {
    fn pipeline_event(&self, event: &PipelineEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buffers_events_in_order() {
        let log = PipelineEventLog::new();
        log.pipeline_event(&PipelineEvent::DdlParsed {
            input: "source".into(),
            tables: 1,
        });
        log.pipeline_event(&PipelineEvent::DataMoved {
            backend: "memory".into(),
            table: "Users".into(),
            statement: 1,
            statements: 2,
            rows: 5,
        });
        log.pipeline_event(&PipelineEvent::ValidationCompared {
            backend: "memory".into(),
            ok: true,
            tables_compared: 2,
            diffs: 0,
        });
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert!(log.render().contains("parsed source DDL"));
        assert!(log
            .render()
            .contains("memory moved data 1/2: Users now 5 row(s)"));
        assert!(log.render().contains("validation on memory: ok"));
    }
}
