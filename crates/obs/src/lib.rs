//! # obs — observability for the Migrator pipeline
//!
//! Three small pieces, shared by every layer of the workspace:
//!
//! * [`Trace`] — hierarchical timed spans for pipeline stages, rendered as
//!   a human-readable tree or as Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`), built with the in-tree
//!   `sqlbridge::Json` writer;
//! * [`Metrics`] — a registry of counters and timing histograms.  Counters
//!   follow the event-log determinism contract (byte-identical at any
//!   thread count when merged in enumeration order); timings are
//!   wall-clock diagnostics and excluded from deterministic renderings;
//! * [`PipelineEvent`] / [`PipelineObserver`] — stage events for ingest,
//!   emission, backend execution and validation, complementing the
//!   synthesis-loop event stream;
//! * [`SearchLedger`] — search forensics: a deterministic, bounded-memory
//!   rejection taxonomy plus MFI-kill / death-depth / hole-domain
//!   histograms, explaining *why* a synthesis run failed.
//!
//! ```
//! use obs::{Metrics, PipelineEvent, PipelineEventLog, PipelineObserver, Trace};
//! use std::time::Duration;
//!
//! // Spans nest by begin/end order and export as Chrome trace JSON.
//! let trace = Trace::new();
//! let stage = trace.begin("synthesize");
//! trace.end(stage);
//! trace.add_phase(stage, "oracle", Duration::from_millis(2));
//! let json = trace.to_chrome_json().to_pretty_string();
//! assert!(json.contains("traceEvents"));
//!
//! // Counters render deterministically; timings stay out of that view.
//! let metrics = Metrics::new();
//! metrics.counter("synthesis.sketches_generated", 3);
//! metrics.record_time("synthesis.wall", Duration::from_millis(14));
//! assert_eq!(metrics.render_counters(), "synthesis.sketches_generated = 3\n");
//!
//! // Pipeline events narrate the stages outside the synthesis loop.
//! let log = PipelineEventLog::new();
//! log.pipeline_event(&PipelineEvent::DdlParsed { input: "source".into(), tables: 1 });
//! assert!(log.render().contains("parsed source DDL"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod forensics;
mod metrics;
mod trace;

pub use event::{PipelineEvent, PipelineEventLog, PipelineObserver};
pub use forensics::SearchLedger;
pub use metrics::{Metrics, TimingStat};
pub use trace::{SpanHandle, Trace};
