//! Search forensics: a deterministic ledger that explains *why* a
//! synthesis run came up empty, not just how long it ran.
//!
//! The timing instruments ([`Trace`](crate::Trace), [`Metrics`](crate::Metrics))
//! answer "where did the time go?". The [`SearchLedger`] answers the
//! questions a failed run raises: which value correspondences were
//! rejected and for what reason (sketch generation failed, every
//! completion blocked, iteration budget exhausted), which minimum failing
//! inputs killed the candidate cohorts, at what update-call depth the
//! candidates died, and which sketch-hole domains the learned blocking
//! clauses implicated.
//!
//! Everything is aggregated into **bounded histograms** — a fixed number
//! of death-depth buckets, a capped killer-query table, one counter per
//! hole-domain kind — so memory stays O(histogram) even when a search
//! explores hundreds of thousands of completions.
//!
//! ## Determinism contract
//!
//! The ledger is fed exclusively from the synthesis event main stream,
//! which is delivered in enumeration order at any thread count (worker
//! buffers are merged index-ordered; losing speculations are discarded).
//! Every counter here is therefore byte-identical at any thread budget,
//! and [`SearchLedger::render`] deliberately contains **no wall-clock
//! content** — the rendered report of a deterministic run can be compared
//! byte-for-byte across thread counts. The one exception is a run that
//! stops on a wall-clock deadline: *where* the interrupt lands is
//! inherently timing-dependent, so ledgers of timed-out runs are
//! approximate snapshots of the search at interrupt time.
//!
//! Like the event log, the ledger is poison-safe: a panic while holding
//! the state lock must not destroy the diagnostic record that explains
//! the crash.

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

use sqlbridge::Json;

/// Death-depth buckets `0 ..= DEPTH_BUCKETS-2` update calls, with the last
/// bucket collecting everything deeper ("7+").
const DEPTH_BUCKETS: usize = 8;

/// Distinct killer-query names tracked before spilling into `(other)`.
const MAX_KILLER_QUERIES: usize = 32;

/// How the value-correspondence frontier ended.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FrontierEnd {
    /// The ranked correspondence space was fully drained.
    Drained {
        /// Correspondences the enumerator produced in total.
        produced: usize,
    },
    /// The MaxSAT encoding was unsatisfiable from the start: no
    /// correspondence maps every must-map attribute.
    Infeasible,
    /// The `max_value_correspondences` budget stopped the search with
    /// lower-ranked correspondences still unexplored.
    BudgetReached {
        /// Correspondences explored before the budget ran out.
        explored: usize,
    },
}

#[derive(Debug, Default)]
struct LedgerState {
    outcome: Option<String>,
    interrupted: Option<String>,
    correspondences: u64,
    frontier: Option<FrontierEnd>,
    sketches_generated: u64,
    sketch_gen_failed: u64,
    space_exhausted: u64,
    iteration_budget_hit: u64,
    solved: Option<(usize, usize)>,
    candidates_accepted: u64,
    candidates_rejected: u64,
    largest_completion_space: u128,
    mfi_count: u64,
    completions_pruned: u128,
    largest_cohort: u128,
    depth_histogram: [u64; DEPTH_BUCKETS],
    killer_queries: Vec<(String, u64)>,
    other_query_kills: u64,
    domain_blocks: Vec<(&'static str, u64)>,
}

/// A deterministic, bounded-memory record of where a synthesis search
/// spent its candidates and why they died.
///
/// Feed it from the synthesis event main stream (the pipeline facade's
/// `Refactoring::forensics` hook does this wiring), then read the result
/// with [`render`](SearchLedger::render) (stable text report) or
/// [`to_json`](SearchLedger::to_json) (machine-readable mirror).
///
/// ```
/// use obs::SearchLedger;
///
/// let ledger = SearchLedger::new();
/// ledger.correspondence_enumerated();
/// ledger.sketch_generated(4, 1_000);
/// ledger.candidate_checked(false);
/// ledger.mfi(1, "getScore", 250, &[("attr", 2), ("join", 1)]);
/// ledger.bound_exhausted(true);
/// ledger.frontier_drained(1, false);
/// ledger.set_outcome("no_solution");
/// let report = ledger.render();
/// assert!(report.contains("all completions blocked"));
/// assert!(report.contains("getScore"));
/// ```
#[derive(Debug, Default)]
pub struct SearchLedger {
    state: Mutex<LedgerState>,
}

impl SearchLedger {
    /// An empty ledger.
    pub fn new() -> SearchLedger {
        SearchLedger::default()
    }

    /// Locks the state, recovering it from a panicked thread if needed.
    fn state(&self) -> MutexGuard<'_, LedgerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A value correspondence was enumerated and committed to.
    pub fn correspondence_enumerated(&self) {
        self.state().correspondences += 1;
    }

    /// A sketch with `holes` holes and `completions` possible
    /// instantiations was generated.
    pub fn sketch_generated(&self, holes: usize, completions: u128) {
        let _ = holes;
        let mut state = self.state();
        state.sketches_generated += 1;
        state.largest_completion_space = state.largest_completion_space.max(completions);
    }

    /// Sketch generation produced no sketch for a correspondence.
    pub fn sketch_generation_failed(&self) {
        self.state().sketch_gen_failed += 1;
    }

    /// One candidate completion went through bounded testing.
    pub fn candidate_checked(&self, accepted: bool) {
        let mut state = self.state();
        if accepted {
            state.candidates_accepted += 1;
        } else {
            state.candidates_rejected += 1;
        }
    }

    /// A minimum failing input killed a candidate cohort.
    ///
    /// * `depth` — update calls preceding the distinguishing query;
    /// * `query` — name of the distinguishing query function;
    /// * `pruned` — completions sharing the blocked hole assignment (the
    ///   cohort the learned clause removes from the space);
    /// * `domains` — blocked-hole counts per hole-domain kind.
    pub fn mfi(&self, depth: usize, query: &str, pruned: u128, domains: &[(&'static str, usize)]) {
        let mut state = self.state();
        state.mfi_count += 1;
        state.completions_pruned = state.completions_pruned.saturating_add(pruned);
        state.largest_cohort = state.largest_cohort.max(pruned);
        let bucket = depth.min(DEPTH_BUCKETS - 1);
        state.depth_histogram[bucket] += 1;
        if let Some(entry) = state
            .killer_queries
            .iter_mut()
            .find(|(name, _)| name == query)
        {
            entry.1 += 1;
        } else if state.killer_queries.len() < MAX_KILLER_QUERIES {
            state.killer_queries.push((query.to_string(), 1));
        } else {
            state.other_query_kills += 1;
        }
        for &(kind, count) in domains {
            if let Some(entry) = state
                .domain_blocks
                .iter_mut()
                .find(|(name, _)| *name == kind)
            {
                entry.1 += count as u64;
            } else {
                state.domain_blocks.push((kind, count as u64));
            }
        }
    }

    /// A correspondence's completion search gave up: either the SAT space
    /// was drained (`space_exhausted`, every completion blocked) or the
    /// per-sketch iteration budget ran out.
    pub fn bound_exhausted(&self, space_exhausted: bool) {
        let mut state = self.state();
        if space_exhausted {
            state.space_exhausted += 1;
        } else {
            state.iteration_budget_hit += 1;
        }
    }

    /// The `index`-th correspondence solved the problem after
    /// `iterations` candidates.
    pub fn solved(&self, index: usize, iterations: usize) {
        self.state().solved = Some((index, iterations));
    }

    /// The run was interrupted (deadline or cancellation).
    pub fn interrupted(&self, reason: &str) {
        self.state().interrupted = Some(reason.to_string());
    }

    /// The correspondence enumerator ran dry after producing `produced`
    /// correspondences; `infeasible` marks a MaxSAT-unsat frontier (no
    /// correspondence satisfies the must-map constraints at all).
    pub fn frontier_drained(&self, produced: usize, infeasible: bool) {
        self.state().frontier = Some(if infeasible {
            FrontierEnd::Infeasible
        } else {
            FrontierEnd::Drained { produced }
        });
    }

    /// The `max_value_correspondences` budget stopped the search after
    /// exploring `explored` correspondences, leaving lower-ranked
    /// correspondences unexplored ("ranked out").
    pub fn frontier_budget_reached(&self, explored: usize) {
        self.state().frontier = Some(FrontierEnd::BudgetReached { explored });
    }

    /// Records the run's final outcome (e.g. `no_solution`, `solved`).
    pub fn set_outcome(&self, outcome: &str) {
        self.state().outcome = Some(outcome.to_string());
    }

    /// Renders the deterministic text report.
    ///
    /// Contains no wall-clock content: for a run that ends without a
    /// deadline interrupt, the rendering is byte-identical at any thread
    /// count.
    pub fn render(&self) -> String {
        let state = self.state();
        let mut out = String::new();
        out.push_str("== search forensics ==\n");
        let outcome = state.outcome.as_deref().unwrap_or("unknown");
        let _ = writeln!(out, "outcome: {outcome}");
        if let Some(reason) = &state.interrupted {
            let _ = writeln!(out, "interrupted: {reason} (counters are a snapshot)");
        }
        let frontier = match &state.frontier {
            None => "search ended before the frontier".to_string(),
            Some(FrontierEnd::Drained { produced }) => {
                format!("ranked space drained after {produced} correspondences")
            }
            Some(FrontierEnd::Infeasible) => {
                "MaxSAT infeasible: no correspondence maps every required attribute".to_string()
            }
            Some(FrontierEnd::BudgetReached { explored }) => format!(
                "correspondence budget reached after {explored} (lower-ranked tail unexplored)"
            ),
        };
        let _ = writeln!(
            out,
            "value correspondences: {} explored; {frontier}",
            state.correspondences
        );
        out.push_str("rejection taxonomy (per correspondence):\n");
        let _ = writeln!(
            out,
            "  sketch generation failed   {:>8}",
            state.sketch_gen_failed
        );
        let _ = writeln!(
            out,
            "  all completions blocked    {:>8}",
            state.space_exhausted
        );
        let _ = writeln!(
            out,
            "  iteration budget exhausted {:>8}",
            state.iteration_budget_hit
        );
        match state.solved {
            Some((index, iterations)) => {
                let _ = writeln!(
                    out,
                    "  solved                     {:>8}  (correspondence[{index}] after \
                     {iterations} candidates)",
                    1
                );
            }
            None => {
                let _ = writeln!(out, "  solved                     {:>8}", 0);
            }
        }
        let _ = writeln!(
            out,
            "candidates checked: {} ({} accepted, {} rejected)",
            state.candidates_accepted + state.candidates_rejected,
            state.candidates_accepted,
            state.candidates_rejected
        );
        let _ = writeln!(
            out,
            "sketches generated: {}; largest completion space: {}",
            state.sketches_generated, state.largest_completion_space
        );
        let _ = writeln!(
            out,
            "blocking clauses (MFIs): {} learned, pruning {} completions (largest cohort {})",
            state.mfi_count, state.completions_pruned, state.largest_cohort
        );
        if state.mfi_count > 0 {
            out.push_str("death depth (update calls before the distinguishing query):\n");
            for (depth, count) in state.depth_histogram.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let label = if depth == DEPTH_BUCKETS - 1 {
                    format!("{depth}+ updates")
                } else {
                    format!("{depth} updates ")
                };
                let _ = writeln!(out, "  {label:<12} {count:>8}");
            }
            out.push_str("killer queries (distinguishing query of each MFI):\n");
            for (query, count) in &state.killer_queries {
                let _ = writeln!(out, "  {query:<26} {count:>8}");
            }
            if state.other_query_kills > 0 {
                let _ = writeln!(out, "  {:<26} {:>8}", "(other)", state.other_query_kills);
            }
            out.push_str("hole domains implicated in blocking clauses:\n");
            for (kind, count) in &state.domain_blocks {
                let _ = writeln!(out, "  {kind:<26} {count:>8}");
            }
        }
        out
    }

    /// The machine-readable mirror of [`render`](SearchLedger::render).
    ///
    /// `u128`-valued fields (completion-space and pruned-cohort sizes) are
    /// encoded as decimal strings: they can exceed every JSON number
    /// representation the in-tree parser guarantees round-trips.
    pub fn to_json(&self) -> Json {
        let state = self.state();
        let frontier = match &state.frontier {
            None => Json::Null,
            Some(FrontierEnd::Drained { produced }) => Json::object()
                .with("kind", Json::str("drained"))
                .with("produced", Json::from(*produced)),
            Some(FrontierEnd::Infeasible) => {
                Json::object().with("kind", Json::str("maxsat_infeasible"))
            }
            Some(FrontierEnd::BudgetReached { explored }) => Json::object()
                .with("kind", Json::str("budget_reached"))
                .with("explored", Json::from(*explored)),
        };
        let taxonomy = Json::object()
            .with(
                "sketch_generation_failed",
                Json::from(state.sketch_gen_failed as usize),
            )
            .with(
                "all_completions_blocked",
                Json::from(state.space_exhausted as usize),
            )
            .with(
                "iteration_budget_exhausted",
                Json::from(state.iteration_budget_hit as usize),
            )
            .with("solved", Json::from(usize::from(state.solved.is_some())));
        let mut death_depth = Vec::new();
        for (depth, count) in state.depth_histogram.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            let label = if depth == DEPTH_BUCKETS - 1 {
                format!("{depth}+")
            } else {
                depth.to_string()
            };
            death_depth.push(
                Json::object()
                    .with("updates", Json::str(&label))
                    .with("count", Json::from(*count as usize)),
            );
        }
        let mut killers = Vec::new();
        for (query, count) in &state.killer_queries {
            killers.push(
                Json::object()
                    .with("query", Json::str(query))
                    .with("count", Json::from(*count as usize)),
            );
        }
        if state.other_query_kills > 0 {
            killers.push(
                Json::object()
                    .with("query", Json::str("(other)"))
                    .with("count", Json::from(state.other_query_kills as usize)),
            );
        }
        let mut domains = Vec::new();
        for (kind, count) in &state.domain_blocks {
            domains.push(
                Json::object()
                    .with("domain", Json::str(*kind))
                    .with("count", Json::from(*count as usize)),
            );
        }
        let solved = match state.solved {
            Some((index, iterations)) => Json::object()
                .with("correspondence", Json::from(index))
                .with("iterations", Json::from(iterations)),
            None => Json::Null,
        };
        Json::object()
            .with(
                "outcome",
                match &state.outcome {
                    Some(outcome) => Json::str(outcome),
                    None => Json::Null,
                },
            )
            .with(
                "interrupted",
                match &state.interrupted {
                    Some(reason) => Json::str(reason),
                    None => Json::Null,
                },
            )
            .with(
                "value_correspondences",
                Json::from(state.correspondences as usize),
            )
            .with("frontier", frontier)
            .with("taxonomy", taxonomy)
            .with("solved", solved)
            .with(
                "candidates",
                Json::object()
                    .with(
                        "checked",
                        Json::from(
                            (state.candidates_accepted + state.candidates_rejected) as usize,
                        ),
                    )
                    .with("accepted", Json::from(state.candidates_accepted as usize))
                    .with("rejected", Json::from(state.candidates_rejected as usize)),
            )
            .with(
                "sketches_generated",
                Json::from(state.sketches_generated as usize),
            )
            .with(
                "largest_completion_space",
                Json::str(state.largest_completion_space.to_string()),
            )
            .with(
                "mfi",
                Json::object()
                    .with("count", Json::from(state.mfi_count as usize))
                    .with(
                        "completions_pruned",
                        Json::str(state.completions_pruned.to_string()),
                    )
                    .with(
                        "largest_cohort",
                        Json::str(state.largest_cohort.to_string()),
                    ),
            )
            .with("death_depth", Json::Array(death_depth))
            .with("killer_queries", Json::Array(killers))
            .with("hole_domains", Json::Array(domains))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failing_ledger() -> SearchLedger {
        let ledger = SearchLedger::new();
        ledger.correspondence_enumerated();
        ledger.sketch_generated(3, 1_000);
        ledger.candidate_checked(false);
        ledger.mfi(0, "getScore", 100, &[("attr", 2)]);
        ledger.candidate_checked(false);
        ledger.mfi(2, "getScore", 50, &[("attr", 1), ("join", 1)]);
        ledger.bound_exhausted(true);
        ledger.correspondence_enumerated();
        ledger.sketch_generation_failed();
        ledger.frontier_budget_reached(2);
        ledger.set_outcome("no_solution");
        ledger
    }

    #[test]
    fn render_reports_the_taxonomy_and_histograms() {
        let report = failing_ledger().render();
        assert!(report.starts_with("== search forensics ==\n"));
        assert!(report.contains("outcome: no_solution"));
        assert!(report.contains("correspondence budget reached after 2"));
        assert!(report.contains("sketch generation failed"));
        assert!(report.contains("all completions blocked"));
        assert!(report.contains("candidates checked: 2 (0 accepted, 2 rejected)"));
        assert!(report.contains("2 learned, pruning 150 completions (largest cohort 100)"));
        assert!(report.contains("0 updates"));
        assert!(report.contains("2 updates"));
        assert!(report.contains("getScore"));
        assert!(report.contains("attr"));
        assert!(report.contains("join"));
        // No wall-clock content: nothing in the report is a duration.
        assert!(!report.contains("ms"));
    }

    #[test]
    fn json_mirrors_the_report() {
        let json = failing_ledger().to_json();
        let parsed = Json::parse(&json.to_compact_string()).expect("ledger JSON parses");
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some("no_solution")
        );
        let taxonomy = parsed.get("taxonomy").expect("taxonomy");
        assert_eq!(
            taxonomy
                .get("all_completions_blocked")
                .and_then(Json::as_i128),
            Some(1)
        );
        assert_eq!(
            taxonomy
                .get("sketch_generation_failed")
                .and_then(Json::as_i128),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("mfi")
                .and_then(|m| m.get("completions_pruned"))
                .and_then(Json::as_str),
            Some("150")
        );
        let killers = parsed
            .get("killer_queries")
            .and_then(Json::as_array)
            .expect("killer queries");
        assert_eq!(killers.len(), 1);
        assert_eq!(
            killers[0].get("query").and_then(Json::as_str),
            Some("getScore")
        );
        assert_eq!(killers[0].get("count").and_then(Json::as_i128), Some(2));
    }

    #[test]
    fn depth_overflow_and_query_cap_stay_bounded() {
        let ledger = SearchLedger::new();
        for i in 0..100 {
            ledger.mfi(i, &format!("q{i}"), 1, &[]);
        }
        let state = ledger.state();
        // Depths 7..=99 collapse into the overflow bucket.
        assert_eq!(state.depth_histogram[DEPTH_BUCKETS - 1], 93);
        // Only the first 32 distinct query names get their own row.
        assert_eq!(state.killer_queries.len(), MAX_KILLER_QUERIES);
        assert_eq!(state.other_query_kills, 100 - MAX_KILLER_QUERIES as u64);
        drop(state);
        let report = ledger.render();
        assert!(report.contains("7+ updates"));
        assert!(report.contains("(other)"));
    }

    #[test]
    fn a_poisoned_ledger_still_renders() {
        let ledger = std::sync::Arc::new(SearchLedger::new());
        ledger.set_outcome("solved");
        let poisoner = std::sync::Arc::clone(&ledger);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("holder panicked");
        })
        .join();
        assert!(result.is_err());
        assert!(ledger.render().contains("outcome: solved"));
        ledger.correspondence_enumerated();
        assert_eq!(ledger.state().correspondences, 1);
    }

    #[test]
    fn solved_runs_render_the_winning_correspondence() {
        let ledger = SearchLedger::new();
        ledger.correspondence_enumerated();
        ledger.sketch_generated(2, 8);
        ledger.candidate_checked(true);
        ledger.solved(0, 1);
        ledger.set_outcome("solved");
        let report = ledger.render();
        assert!(report.contains("correspondence[0] after 1 candidates"));
        assert!(report.contains("candidates checked: 1 (1 accepted, 0 rejected)"));
        // No MFIs: the histogram sections are omitted entirely.
        assert!(!report.contains("death depth"));
    }
}
