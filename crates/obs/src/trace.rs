//! Hierarchical spans and Chrome-trace export.
//!
//! A [`Trace`] records a tree of timed spans: every pipeline stage
//! (ingest, synthesize, emit, validate) opens a span, and synthesis-phase
//! aggregates (oracle time, snapshot time, DFS time, …) are attached as
//! synthetic *phase* spans on a second track.  The recorder renders a
//! human-readable tree via [`Trace::render_tree`] and Chrome trace-event
//! JSON via [`Trace::to_chrome_json`] — the latter loads directly into
//! Perfetto or `chrome://tracing`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use sqlbridge::Json;

/// Which timeline a span is drawn on in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Track {
    /// Real pipeline stages, nested by begin/end order (tid 1).
    Pipeline,
    /// Synthetic aggregated synthesis phases (tid 2).  Phase durations are
    /// summed across workers, so they may exceed their parent stage's
    /// wall-clock duration; a separate track keeps the picture honest.
    Phases,
}

#[derive(Debug)]
struct Span {
    name: String,
    parent: Option<usize>,
    start: Duration,
    end: Option<Duration>,
    args: Vec<(String, Json)>,
    track: Track,
}

#[derive(Debug)]
struct TraceInner {
    spans: Vec<Span>,
    stack: Vec<usize>,
    phase_base: Option<usize>,
    phase_cursor: Duration,
}

/// A handle to a span opened with [`Trace::begin`]; pass it back to
/// [`Trace::end`] to close the span.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    index: usize,
}

/// A thread-safe span recorder.
///
/// All locks recover from poisoning: a panic on one thread never destroys
/// the trace that explains it.
#[derive(Debug)]
pub struct Trace {
    origin: Instant,
    inner: Mutex<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Creates an empty trace; the clock starts now.
    pub fn new() -> Trace {
        Trace {
            origin: Instant::now(),
            inner: Mutex::new(TraceInner {
                spans: Vec::new(),
                stack: Vec::new(),
                phase_base: None,
                phase_cursor: Duration::ZERO,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a new span nested under the innermost open span.
    pub fn begin(&self, name: impl Into<String>) -> SpanHandle {
        let elapsed = self.origin.elapsed();
        let mut inner = self.lock();
        let parent = inner.stack.last().copied();
        let index = inner.spans.len();
        inner.spans.push(Span {
            name: name.into(),
            parent,
            start: elapsed,
            end: None,
            args: Vec::new(),
            track: Track::Pipeline,
        });
        inner.stack.push(index);
        SpanHandle { index }
    }

    /// Closes the span; a handle that was already closed is ignored.
    pub fn end(&self, handle: SpanHandle) {
        let elapsed = self.origin.elapsed();
        let mut inner = self.lock();
        if let Some(span) = inner.spans.get_mut(handle.index) {
            if span.end.is_none() {
                span.end = Some(elapsed);
            }
        }
        inner.stack.retain(|&i| i != handle.index);
    }

    /// Attaches a key/value argument to the span (rendered in the Chrome
    /// trace `args` object and the tree summary).
    pub fn set_arg(&self, handle: SpanHandle, key: impl Into<String>, value: Json) {
        let mut inner = self.lock();
        if let Some(span) = inner.spans.get_mut(handle.index) {
            span.args.push((key.into(), value));
        }
    }

    /// Records a synthetic aggregated phase span of the given duration on
    /// the "synthesis phases" track.  Phases for the same `base` span are
    /// laid out end-to-end starting at the base span's start time; their
    /// summed duration may exceed the base span (work is summed across
    /// workers).
    pub fn add_phase(&self, base: SpanHandle, name: impl Into<String>, duration: Duration) {
        let mut inner = self.lock();
        let Some(base_start) = inner.spans.get(base.index).map(|s| s.start) else {
            return;
        };
        if inner.phase_base != Some(base.index) {
            inner.phase_base = Some(base.index);
            inner.phase_cursor = base_start;
        }
        let start = inner.phase_cursor;
        inner.phase_cursor += duration;
        inner.spans.push(Span {
            name: name.into(),
            parent: None,
            start,
            end: Some(start + duration),
            args: Vec::new(),
            track: Track::Phases,
        });
    }

    /// Renders the span tree as indented text with per-span durations.
    pub fn render_tree(&self) -> String {
        let now = self.origin.elapsed();
        let inner = self.lock();
        let mut out = String::from("trace\n");
        fn emit(
            spans: &[Span],
            parent: Option<usize>,
            depth: usize,
            now: Duration,
            out: &mut String,
        ) {
            for (index, span) in spans.iter().enumerate() {
                if span.track != Track::Pipeline || span.parent != parent {
                    continue;
                }
                let dur = span.end.unwrap_or(now).saturating_sub(span.start);
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("{:<24} {:>10.3?}", span.name, dur));
                for (key, value) in &span.args {
                    out.push_str(&format!("  {key}={}", value.to_compact_string()));
                }
                out.push('\n');
                emit(spans, Some(index), depth + 1, now, out);
            }
        }
        emit(&inner.spans, None, 0, now, &mut out);
        let phases: Vec<&Span> = inner
            .spans
            .iter()
            .filter(|s| s.track == Track::Phases)
            .collect();
        if !phases.is_empty() {
            out.push_str("  synthesis phases (summed across workers)\n");
            for span in phases {
                let dur = span.end.unwrap_or(now).saturating_sub(span.start);
                out.push_str(&format!("    {:<22} {:>10.3?}\n", span.name, dur));
            }
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto and
    /// `chrome://tracing`.  Open spans are closed at the current instant.
    pub fn to_chrome_json(&self) -> Json {
        let now = self.origin.elapsed();
        let inner = self.lock();
        let mut events: Vec<Json> = Vec::new();
        for (tid, label) in [(1usize, "pipeline"), (2usize, "synthesis phases")] {
            events.push(
                Json::object()
                    .with("name", Json::str("thread_name"))
                    .with("ph", Json::str("M"))
                    .with("pid", Json::from(1usize))
                    .with("tid", Json::from(tid))
                    .with("args", Json::object().with("name", Json::str(label))),
            );
        }
        for span in &inner.spans {
            let dur = span.end.unwrap_or(now).saturating_sub(span.start);
            let (tid, cat) = match span.track {
                Track::Pipeline => (1usize, "pipeline"),
                Track::Phases => (2usize, "phase"),
            };
            let mut args = Json::object();
            for (key, value) in &span.args {
                args = args.with(key.clone(), value.clone());
            }
            events.push(
                Json::object()
                    .with("name", Json::str(&span.name))
                    .with("cat", Json::str(cat))
                    .with("ph", Json::str("X"))
                    .with("ts", Json::from(span.start.as_micros() as usize))
                    .with("dur", Json::from(dur.as_micros() as usize))
                    .with("pid", Json::from(1usize))
                    .with("tid", Json::from(tid))
                    .with("args", args),
            );
        }
        Json::object().with("traceEvents", Json::Array(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_begin_end_order() {
        let trace = Trace::new();
        let outer = trace.begin("outer");
        let inner = trace.begin("inner");
        trace.end(inner);
        trace.end(outer);
        let tree = trace.render_tree();
        assert!(tree.contains("outer"));
        assert!(tree.contains("inner"));
        let outer_at = tree.find("outer").unwrap();
        let inner_at = tree.find("inner").unwrap();
        assert!(outer_at < inner_at, "outer listed before nested inner");
    }

    #[test]
    fn chrome_export_round_trips_through_the_json_parser() {
        let trace = Trace::new();
        let outer = trace.begin("stage");
        trace.set_arg(outer, "tables", Json::from(2usize));
        trace.end(outer);
        trace.add_phase(outer, "oracle", Duration::from_millis(3));
        let text = trace.to_chrome_json().to_pretty_string();
        let parsed = Json::parse(&text).expect("trace JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"stage"));
        assert!(names.contains(&"oracle"));
    }

    #[test]
    fn phase_spans_lay_out_end_to_end_from_the_base_span() {
        let trace = Trace::new();
        let base = trace.begin("synthesize");
        trace.end(base);
        trace.add_phase(base, "a", Duration::from_micros(10));
        trace.add_phase(base, "b", Duration::from_micros(5));
        let json = trace.to_chrome_json();
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        let phase: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("phase"))
            .collect();
        assert_eq!(phase.len(), 2);
        let a_start = phase[0].get("ts").and_then(Json::as_i128).unwrap();
        let b_start = phase[1].get("ts").and_then(Json::as_i128).unwrap();
        assert_eq!(b_start, a_start + 10);
    }
}
