//! `tracecheck` — validates a Chrome trace-event JSON file.
//!
//! Usage: `tracecheck <trace.json> [required-span-name ...]`
//!
//! Checks that the file parses as JSON, has a `traceEvents` array of
//! well-formed complete (`ph: "X"`) events, that the pipeline-track spans
//! nest properly (no partial overlap), and that every required span name
//! appears.  Exits non-zero with a message on the first failure — CI runs
//! it against the `migrate --trace` output of the worked example.

use std::process::ExitCode;

use sqlbridge::Json;

fn fail(message: &str) -> ExitCode {
    eprintln!("tracecheck: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: tracecheck <trace.json> [required-span-name ...]");
    };
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => return fail(&format!("cannot read {path}: {error}")),
    };
    let parsed = match Json::parse(&text) {
        Ok(parsed) => parsed,
        Err(error) => return fail(&format!("{path} is not valid JSON: {error}")),
    };
    let Some(events) = parsed.get("traceEvents").and_then(Json::as_array) else {
        return fail("missing traceEvents array");
    };

    // Collect complete ("X") events; validate their shape.
    let mut spans: Vec<(String, i128, i128, i128)> = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let Some(name) = event.get("name").and_then(Json::as_str) else {
            return fail("X event without a name");
        };
        let (Some(ts), Some(dur)) = (
            event.get("ts").and_then(Json::as_i128),
            event.get("dur").and_then(Json::as_i128),
        ) else {
            return fail(&format!("span {name:?} lacks integer ts/dur"));
        };
        if ts < 0 || dur < 0 {
            return fail(&format!("span {name:?} has negative ts/dur"));
        }
        let tid = event.get("tid").and_then(Json::as_i128).unwrap_or(0);
        spans.push((name.to_string(), tid, ts, ts + dur));
    }
    if spans.is_empty() {
        return fail("trace contains no complete (ph=\"X\") spans");
    }

    // Per track: spans must either nest or be disjoint — a partial overlap
    // means broken begin/end bookkeeping.
    let mut tids: Vec<i128> = spans.iter().map(|s| s.1).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut track: Vec<&(String, i128, i128, i128)> =
            spans.iter().filter(|s| s.1 == tid).collect();
        track.sort_by_key(|s| (s.2, -s.3));
        let mut stack: Vec<&(String, i128, i128, i128)> = Vec::new();
        for span in track {
            while let Some(top) = stack.last() {
                if span.2 >= top.3 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if span.3 > top.3 {
                    return fail(&format!(
                        "span {:?} [{}..{}] partially overlaps {:?} [{}..{}] on tid {tid}",
                        span.0, span.2, span.3, top.0, top.2, top.3
                    ));
                }
            }
            stack.push(span);
        }
    }

    for name in &required {
        if !spans.iter().any(|s| &s.0 == name) {
            return fail(&format!("required span {name:?} not found"));
        }
    }

    println!(
        "tracecheck: {} span(s) ok{}",
        spans.len(),
        if required.is_empty() {
            String::new()
        } else {
            format!(", all {} required span(s) present", required.len())
        }
    );
    ExitCode::SUCCESS
}
