//! `tracecheck` — validates observability artefacts emitted by `migrate`.
//!
//! Usage:
//!
//! ```text
//! tracecheck <trace.json> [required-span-name ...]
//! tracecheck ndjson <events.ndjson>
//! ```
//!
//! The default (legacy) mode checks a Chrome trace-event JSON file: the file
//! parses as JSON, has a `traceEvents` array of well-formed complete
//! (`ph: "X"`) events, the pipeline-track spans nest properly (no partial
//! overlap), and every required span name appears.
//!
//! The `ndjson` mode checks a `migrate --events` export: every line is one
//! well-formed JSON object with a `"type"` tag, the `"seq"` numbers are
//! strictly increasing across both channels, and the stream ends with the
//! terminal `run_finished` event (and nothing after it).
//!
//! Both modes exit non-zero with a message on the first failure — CI runs
//! them against the `migrate --trace` / `migrate --events` output of the
//! worked examples.

use std::process::ExitCode;

use sqlbridge::Json;

fn fail(message: &str) -> ExitCode {
    eprintln!("tracecheck: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else {
        return fail(
            "usage: tracecheck <trace.json> [required-span-name ...] | tracecheck ndjson <events.ndjson>",
        );
    };
    if first == "ndjson" {
        let Some(path) = args.next() else {
            return fail("usage: tracecheck ndjson <events.ndjson>");
        };
        if args.next().is_some() {
            return fail("ndjson mode takes exactly one file");
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => return fail(&format!("cannot read {path}: {error}")),
        };
        return match check_ndjson(&text) {
            Ok(summary) => {
                println!("tracecheck: {summary}");
                ExitCode::SUCCESS
            }
            Err(message) => fail(&message),
        };
    }
    let path = first;
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => return fail(&format!("cannot read {path}: {error}")),
    };
    match check_trace(&text, &required) {
        Ok(summary) => {
            println!("tracecheck: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => fail(&message.replace("{path}", &path)),
    }
}

/// Validates a `migrate --events` NDJSON stream. Returns a one-line summary
/// on success, the first violation otherwise.
fn check_ndjson(text: &str) -> Result<String, String> {
    let mut last_seq: Option<i128> = None;
    let mut finished = false;
    let mut lines = 0usize;
    let mut speculation = 0usize;
    for (number, line) in text.lines().enumerate() {
        let number = number + 1;
        if line.trim().is_empty() {
            return Err(format!("line {number}: blank line in event stream"));
        }
        if finished {
            return Err(format!("line {number}: event after terminal run_finished"));
        }
        let event =
            Json::parse(line).map_err(|error| format!("line {number}: not valid JSON: {error}"))?;
        if !matches!(event, Json::Object(_)) {
            return Err(format!("line {number}: not a JSON object"));
        }
        let Some(kind) = event.get("type").and_then(Json::as_str) else {
            return Err(format!("line {number}: missing \"type\" tag"));
        };
        let Some(seq) = event.get("seq").and_then(Json::as_i128) else {
            return Err(format!("line {number}: missing integer \"seq\""));
        };
        if let Some(last) = last_seq {
            if seq <= last {
                return Err(format!(
                    "line {number}: seq {seq} not greater than previous {last}"
                ));
            }
        }
        last_seq = Some(seq);
        if event.get("channel").and_then(Json::as_str) == Some("speculation") {
            speculation += 1;
        }
        if kind == "run_finished" {
            if event.get("outcome").and_then(Json::as_str).is_none() {
                return Err(format!("line {number}: run_finished without an outcome"));
            }
            finished = true;
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("event stream is empty".to_string());
    }
    if !finished {
        return Err("event stream lacks the terminal run_finished event".to_string());
    }
    Ok(format!(
        "{lines} event(s) ok ({speculation} on the speculation channel), terminal run_finished present"
    ))
}

/// Validates a Chrome trace-event JSON document. Returns a one-line summary
/// on success, the first violation otherwise (with `{path}` as a placeholder
/// for the file name).
fn check_trace(text: &str, required: &[String]) -> Result<String, String> {
    let parsed =
        Json::parse(text).map_err(|error| format!("{{path}} is not valid JSON: {error}"))?;
    let Some(events) = parsed.get("traceEvents").and_then(Json::as_array) else {
        return Err("missing traceEvents array".to_string());
    };

    // Collect complete ("X") events; validate their shape.
    let mut spans: Vec<(String, i128, i128, i128)> = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let Some(name) = event.get("name").and_then(Json::as_str) else {
            return Err("X event without a name".to_string());
        };
        let (Some(ts), Some(dur)) = (
            event.get("ts").and_then(Json::as_i128),
            event.get("dur").and_then(Json::as_i128),
        ) else {
            return Err(format!("span {name:?} lacks integer ts/dur"));
        };
        if ts < 0 || dur < 0 {
            return Err(format!("span {name:?} has negative ts/dur"));
        }
        let tid = event.get("tid").and_then(Json::as_i128).unwrap_or(0);
        spans.push((name.to_string(), tid, ts, ts + dur));
    }
    if spans.is_empty() {
        return Err("trace contains no complete (ph=\"X\") spans".to_string());
    }

    // Per track: spans must either nest or be disjoint — a partial overlap
    // means broken begin/end bookkeeping.
    let mut tids: Vec<i128> = spans.iter().map(|s| s.1).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut track: Vec<&(String, i128, i128, i128)> =
            spans.iter().filter(|s| s.1 == tid).collect();
        track.sort_by_key(|s| (s.2, -s.3));
        let mut stack: Vec<&(String, i128, i128, i128)> = Vec::new();
        for span in track {
            while let Some(top) = stack.last() {
                if span.2 >= top.3 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if span.3 > top.3 {
                    return Err(format!(
                        "span {:?} [{}..{}] partially overlaps {:?} [{}..{}] on tid {tid}",
                        span.0, span.2, span.3, top.0, top.2, top.3
                    ));
                }
            }
            stack.push(span);
        }
    }

    for name in required {
        if !spans.iter().any(|s| &s.0 == name) {
            return Err(format!("required span {name:?} not found"));
        }
    }

    Ok(format!(
        "{} span(s) ok{}",
        spans.len(),
        if required.is_empty() {
            String::new()
        } else {
            format!(", all {} required span(s) present", required.len())
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_accepts_a_well_formed_stream() {
        let stream = concat!(
            "{\"type\":\"correspondence_enumerated\",\"index\":0,\"seq\":0}\n",
            "{\"type\":\"candidate_checked\",\"seq\":1,\"channel\":\"speculation\"}\n",
            "{\"type\":\"run_finished\",\"outcome\":\"solved\",\"seq\":2}\n",
        );
        let summary = check_ndjson(stream).expect("stream is valid");
        assert!(summary.contains("3 event(s)"), "{summary}");
        assert!(
            summary.contains("1 on the speculation channel"),
            "{summary}"
        );
    }

    #[test]
    fn ndjson_rejects_violations() {
        // Non-monotone seq.
        let err = check_ndjson(
            "{\"type\":\"a\",\"seq\":1}\n{\"type\":\"b\",\"seq\":1}\n{\"type\":\"run_finished\",\"outcome\":\"x\",\"seq\":2}\n",
        )
        .unwrap_err();
        assert!(err.contains("not greater than"), "{err}");
        // Missing terminal event.
        let err = check_ndjson("{\"type\":\"a\",\"seq\":0}\n").unwrap_err();
        assert!(err.contains("terminal"), "{err}");
        // Event after the terminal one.
        let err = check_ndjson(
            "{\"type\":\"run_finished\",\"outcome\":\"x\",\"seq\":0}\n{\"type\":\"a\",\"seq\":1}\n",
        )
        .unwrap_err();
        assert!(err.contains("after terminal"), "{err}");
        // Not an object.
        let err = check_ndjson("[1,2]\n").unwrap_err();
        assert!(err.contains("not a JSON object"), "{err}");
        // Missing type / seq.
        assert!(check_ndjson("{\"seq\":0}\n").unwrap_err().contains("type"));
        assert!(check_ndjson("{\"type\":\"a\"}\n")
            .unwrap_err()
            .contains("seq"));
        // Empty stream.
        assert!(check_ndjson("").unwrap_err().contains("empty"));
    }

    #[test]
    fn trace_mode_still_validates_spans() {
        let trace = r#"{"traceEvents":[
            {"ph":"X","name":"pipeline","ts":0,"dur":100,"tid":0},
            {"ph":"X","name":"synthesis","ts":10,"dur":50,"tid":0}
        ]}"#;
        let summary = check_trace(trace, &["pipeline".to_string()]).expect("trace is valid");
        assert!(summary.contains("2 span(s) ok"), "{summary}");
        let err = check_trace(trace, &["missing".to_string()]).unwrap_err();
        assert!(err.contains("required span"), "{err}");
        let overlap = r#"{"traceEvents":[
            {"ph":"X","name":"a","ts":0,"dur":50,"tid":0},
            {"ph":"X","name":"b","ts":25,"dur":50,"tid":0}
        ]}"#;
        assert!(check_trace(overlap, &[]).unwrap_err().contains("overlaps"));
    }
}
