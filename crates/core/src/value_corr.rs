//! Value correspondences and their lazy enumeration
//! (Section 4.2 of the paper).
//!
//! A *value correspondence* `Φ` maps each attribute of the source schema to
//! a (possibly empty) set of attributes of the target schema; `T'.b ∈ Φ(T.a)`
//! means the entries of column `T.a` are stored in column `T'.b` after the
//! refactoring.
//!
//! The paper encodes the enumeration problem as partial weighted MaxSAT:
//!
//! * **hard** — type compatibility, and the *necessary condition for
//!   equivalence*: every attribute queried by the source program must map to
//!   at least one target attribute;
//! * **soft** — a clause `x_{ij}` weighted by name similarity for every
//!   candidate pair, and clauses `x_{ij} → ¬x_{ik}` (weight `α`) that
//!   de-prioritize one-to-many mappings;
//! * **blocking** — once a correspondence has been tried and rejected, its
//!   assignment is excluded with a hard clause.
//!
//! Two enumerators are provided:
//!
//! * [`MaxSatVcEnumerator`] — the literal encoding above solved with the
//!   [`satsolver`] MaxSAT solver; the reference implementation, practical
//!   for small schemas.
//! * [`VcEnumerator`] — the enumerator used by the synthesizer. It exploits
//!   the fact that, apart from blocking clauses, the encoding decomposes per
//!   source attribute (all soft and hard clauses are local to one source
//!   attribute's candidate set), so the assignments in decreasing objective
//!   order can be enumerated with a best-first search over per-attribute
//!   option rankings — the same sequence the MaxSAT formulation defines,
//!   without building pseudo-Boolean bounds over thousands of soft clauses.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

use dbir::schema::{QualifiedAttr, Schema};
use dbir::Program;
use satsolver::{Lit, MaxSatResult, MaxSatSolver, Var};

use crate::similarity::similarity;

/// A value correspondence from source attributes to sets of target
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueCorrespondence {
    map: BTreeMap<QualifiedAttr, BTreeSet<QualifiedAttr>>,
}

impl ValueCorrespondence {
    /// Creates an empty correspondence (every attribute maps to ∅).
    pub fn new() -> ValueCorrespondence {
        ValueCorrespondence::default()
    }

    /// Records that `target ∈ Φ(source)`.
    pub fn add(&mut self, source: QualifiedAttr, target: QualifiedAttr) {
        self.map.entry(source).or_default().insert(target);
    }

    /// The image `Φ(source)` (empty if the attribute is unmapped).
    pub fn images(&self, source: &QualifiedAttr) -> BTreeSet<QualifiedAttr> {
        self.map.get(source).cloned().unwrap_or_default()
    }

    /// Returns `true` if `source` maps to at least one target attribute.
    pub fn is_mapped(&self, source: &QualifiedAttr) -> bool {
        self.map.get(source).is_some_and(|s| !s.is_empty())
    }

    /// Iterates over `(source, images)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&QualifiedAttr, &BTreeSet<QualifiedAttr>)> {
        self.map.iter()
    }

    /// The number of source attributes with a non-empty image.
    pub fn mapped_count(&self) -> usize {
        self.map.values().filter(|s| !s.is_empty()).count()
    }
}

impl fmt::Display for ValueCorrespondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (source, images) in &self.map {
            if images.is_empty() {
                continue;
            }
            write!(f, "{source} -> {{")?;
            for (i, image) in images.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{image}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// Configuration of the value-correspondence enumerators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcConfig {
    /// The `α` constant: maximum similarity weight and the weight of the
    /// one-to-one preference clauses.
    pub alpha: u64,
    /// Keep only the `k` most similar type-compatible target attributes as
    /// candidates for each source attribute (keeps the search tractable for
    /// wide schemas).
    pub max_candidates_per_attr: usize,
    /// Consider at most this many ranked local options (single images, the
    /// empty image, pairs of images) per source attribute.
    pub max_options_per_attr: usize,
    /// Objective bonus for leaving a source attribute *that the program
    /// never references* unmapped. With the default of zero the empty image
    /// scores below every similarity-weighted pair, so spurious cross-table
    /// mappings of vestigial columns (e.g. columns dropped by the
    /// refactoring) rank first and can poison delete-statement coverage.
    /// Setting the bonus above [`VcConfig::pair_penalty`] ranks "unmapped"
    /// first for unreferenced attributes while leaving the rest of the
    /// option space untouched (the widened-space preset,
    /// `SynthesisConfig::widened`, enables this).
    pub unmapped_unreferenced_bonus: u64,
}

impl Default for VcConfig {
    fn default() -> VcConfig {
        VcConfig {
            alpha: 16,
            max_candidates_per_attr: 8,
            max_options_per_attr: 24,
            unmapped_unreferenced_bonus: 0,
        }
    }
}

impl VcConfig {
    /// The weight of mapping `source` to `target`: dominated by attribute
    /// name similarity, with table-name similarity as a tie-breaker so that
    /// identically named attributes prefer the identically named table.
    pub fn pair_weight(&self, source: &QualifiedAttr, target: &QualifiedAttr) -> u64 {
        4 * similarity(source.attr.as_str(), target.attr.as_str(), self.alpha)
            + similarity(source.table.as_str(), target.table.as_str(), 4)
    }

    /// The penalty (soft-clause weight) for mapping one source attribute to
    /// more than one target attribute. Strictly larger than any single pair
    /// weight, so one-to-one mappings are always preferred.
    pub fn pair_penalty(&self) -> u64 {
        4 * self.alpha + 8
    }
}

// ---------------------------------------------------------------------------
// Shared candidate computation
// ---------------------------------------------------------------------------

/// The ranked target candidates for one source attribute.
#[derive(Debug, Clone)]
struct AttrCandidates {
    source: QualifiedAttr,
    /// Candidates sorted by decreasing similarity weight.
    targets: Vec<(QualifiedAttr, u64)>,
    /// Whether the source attribute is queried (and therefore must be
    /// mapped: the "necessary condition for equivalence").
    must_map: bool,
    /// Whether the source attribute is referenced anywhere in the program
    /// (queried, inserted, or used in a predicate). Unreferenced attributes
    /// are eligible for the `unmapped_unreferenced_bonus`.
    referenced: bool,
}

fn collect_candidates(
    program: &Program,
    source_schema: &Schema,
    target_schema: &Schema,
    config: &VcConfig,
) -> Vec<AttrCandidates> {
    let queried = program.queried_attrs();
    let referenced = program.referenced_attrs();
    let mut result = Vec::new();
    for source_attr in source_schema.all_attrs() {
        let source_ty = source_schema
            .attr_type(&source_attr)
            .expect("attribute enumerated from schema");
        let mut targets: Vec<(QualifiedAttr, u64)> = target_schema
            .all_attrs()
            .into_iter()
            .filter(|target_attr| {
                target_schema
                    .attr_type(target_attr)
                    .is_some_and(|t| source_ty.compatible_with(t))
            })
            .map(|target_attr| {
                let weight = config.pair_weight(&source_attr, &target_attr);
                (target_attr, weight)
            })
            .collect();
        targets.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let keep = if referenced.contains(&source_attr) {
            config.max_candidates_per_attr.max(1) * 2
        } else {
            config.max_candidates_per_attr.max(1)
        };
        targets.truncate(keep);
        result.push(AttrCandidates {
            must_map: queried.contains(&source_attr),
            referenced: referenced.contains(&source_attr),
            source: source_attr,
            targets,
        });
    }
    result
}

// ---------------------------------------------------------------------------
// Best-first (k-best) enumerator — the engine used by the synthesizer
// ---------------------------------------------------------------------------

/// One local option for a source attribute: a set of images and its local
/// objective contribution under the MaxSAT encoding (satisfied similarity
/// weights minus the one-to-one penalties it incurs).
#[derive(Debug, Clone)]
struct AttrOption {
    images: Vec<QualifiedAttr>,
    score: i64,
}

/// Lazily enumerates value correspondences in decreasing order of the
/// MaxSAT objective, exploiting the per-attribute decomposability of the
/// encoding. This is the enumerator the synthesizer uses
/// (the paper's `NextValueCorr`).
#[derive(Debug)]
pub struct VcEnumerator {
    /// Ranked options per source attribute.
    options: Vec<Vec<AttrOption>>,
    /// Source attribute of each option group (parallel to `options`).
    sources: Vec<QualifiedAttr>,
    /// Best-first frontier over option-index vectors.
    frontier: BinaryHeap<(i64, Reverse<Vec<usize>>)>,
    /// States already pushed (to avoid duplicates).
    seen: BTreeSet<Vec<usize>>,
    /// Number of correspondences returned so far.
    produced: usize,
    /// Set when the frontier is exhausted or the problem is infeasible.
    exhausted: bool,
    /// Set at construction when the problem is infeasible: some must-map
    /// attribute has no candidate target, so no correspondence exists.
    infeasible: bool,
}

impl VcEnumerator {
    /// Builds the enumerator for correspondences between `source_schema` and
    /// `target_schema`, using `program` to determine which attributes must
    /// be mapped.
    pub fn new(
        program: &Program,
        source_schema: &Schema,
        target_schema: &Schema,
        config: &VcConfig,
    ) -> VcEnumerator {
        let candidates = collect_candidates(program, source_schema, target_schema, config);
        let penalty = config.pair_penalty() as i64;
        let mut options: Vec<Vec<AttrOption>> = Vec::with_capacity(candidates.len());
        let mut sources = Vec::with_capacity(candidates.len());
        let mut infeasible = false;
        for group in &candidates {
            let mut local: Vec<AttrOption> = Vec::new();
            // Singleton images.
            for (target, weight) in &group.targets {
                local.push(AttrOption {
                    images: vec![target.clone()],
                    score: *weight as i64,
                });
            }
            // The empty image (allowed only when the attribute is not
            // queried by the program). Attributes the program never
            // references may earn a bonus for staying unmapped.
            if !group.must_map {
                let score = if group.referenced {
                    0
                } else {
                    config.unmapped_unreferenced_bonus as i64
                };
                local.push(AttrOption {
                    images: Vec::new(),
                    score,
                });
            } else if group.targets.is_empty() {
                infeasible = true;
            }
            // Pairs of images (one-to-many mappings), penalized by α.
            for i in 0..group.targets.len() {
                for j in (i + 1)..group.targets.len() {
                    let (ref ti, wi) = group.targets[i];
                    let (ref tj, wj) = group.targets[j];
                    local.push(AttrOption {
                        images: vec![ti.clone(), tj.clone()],
                        score: wi as i64 + wj as i64 - penalty,
                    });
                }
            }
            local.sort_by_key(|option| Reverse(option.score));
            local.truncate(config.max_options_per_attr.max(1));
            sources.push(group.source.clone());
            options.push(local);
        }

        let mut enumerator = VcEnumerator {
            options,
            sources,
            frontier: BinaryHeap::new(),
            seen: BTreeSet::new(),
            produced: 0,
            exhausted: infeasible,
            infeasible,
        };
        if !enumerator.exhausted {
            let initial = vec![0usize; enumerator.options.len()];
            if enumerator.options.iter().all(|o| !o.is_empty()) {
                let score = enumerator.score_of(&initial);
                enumerator.seen.insert(initial.clone());
                enumerator.frontier.push((score, Reverse(initial)));
            } else {
                enumerator.exhausted = true;
            }
        }
        enumerator
    }

    fn score_of(&self, state: &[usize]) -> i64 {
        state
            .iter()
            .zip(&self.options)
            .map(|(&choice, group)| group[choice].score)
            .sum()
    }

    /// The number of correspondences produced so far (the "Value Corr"
    /// column of Table 1).
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// `true` when the enumeration problem was unsatisfiable from the
    /// start: some attribute the program requires to be mapped has no
    /// candidate target, so the MaxSAT ranking has no model at all. The
    /// forensics ledger distinguishes this ("MaxSAT infeasible") from an
    /// honestly drained frontier.
    pub fn infeasible(&self) -> bool {
        self.infeasible
    }

    /// Returns the next most likely value correspondence, or `None` when the
    /// space has been exhausted.
    pub fn next_correspondence(&mut self) -> Option<ValueCorrespondence> {
        if self.exhausted {
            return None;
        }
        let (_, Reverse(state)) = self.frontier.pop()?;
        // Push the successors: bump one group to its next-ranked option.
        for (group_index, &choice) in state.iter().enumerate() {
            if choice + 1 < self.options[group_index].len() {
                let mut successor = state.clone();
                successor[group_index] = choice + 1;
                if self.seen.insert(successor.clone()) {
                    let score = self.score_of(&successor);
                    self.frontier.push((score, Reverse(successor)));
                }
            }
        }
        // Materialize the correspondence.
        let mut phi = ValueCorrespondence::new();
        for (group_index, &choice) in state.iter().enumerate() {
            for image in &self.options[group_index][choice].images {
                phi.add(self.sources[group_index].clone(), image.clone());
            }
        }
        self.produced += 1;
        if self.frontier.is_empty() {
            self.exhausted = true;
        }
        Some(phi)
    }
}

// ---------------------------------------------------------------------------
// MaxSAT-based enumerator — the paper's literal encoding
// ---------------------------------------------------------------------------

/// The paper's MaxSAT encoding of value-correspondence enumeration, solved
/// with the [`satsolver`] partial weighted MaxSAT solver.
///
/// This is the reference implementation; it is practical for small schemas
/// and is cross-checked against [`VcEnumerator`] in the test suite, but the
/// synthesizer uses [`VcEnumerator`] so that very wide schemas (hundreds of
/// attributes) do not require pseudo-Boolean bounds over thousands of soft
/// clauses.
#[derive(Debug)]
pub struct MaxSatVcEnumerator {
    maxsat: MaxSatSolver,
    pairs: Vec<(QualifiedAttr, QualifiedAttr, Var)>,
    produced: usize,
    exhausted: bool,
}

impl MaxSatVcEnumerator {
    /// Builds the MaxSAT encoding.
    pub fn new(
        program: &Program,
        source_schema: &Schema,
        target_schema: &Schema,
        config: &VcConfig,
    ) -> MaxSatVcEnumerator {
        let candidates = collect_candidates(program, source_schema, target_schema, config);
        let mut maxsat = MaxSatSolver::new();
        let mut pairs = Vec::new();
        for group in &candidates {
            let mut vars = Vec::new();
            for (target, weight) in &group.targets {
                let var = maxsat.new_var();
                maxsat.add_soft(&[Lit::pos(var)], *weight);
                pairs.push((group.source.clone(), target.clone(), var));
                vars.push(var);
            }
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    maxsat.add_soft(
                        &[Lit::neg(vars[i]), Lit::neg(vars[j])],
                        config.pair_penalty(),
                    );
                }
            }
            if group.must_map {
                let clause: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
                maxsat.add_hard(&clause);
            } else if !group.referenced
                && config.unmapped_unreferenced_bonus > 0
                && !vars.is_empty()
            {
                // Mirror of the best-first enumerator's bonus: an auxiliary
                // variable that may only be true when the attribute is
                // unmapped, rewarded with the bonus weight.
                let unmapped = maxsat.new_var();
                for &var in &vars {
                    maxsat.add_hard(&[Lit::neg(unmapped), Lit::neg(var)]);
                }
                maxsat.add_soft(&[Lit::pos(unmapped)], config.unmapped_unreferenced_bonus);
            }
        }
        MaxSatVcEnumerator {
            maxsat,
            pairs,
            produced: 0,
            exhausted: false,
        }
    }

    /// The number of correspondences produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Returns the next most likely value correspondence, or `None` when the
    /// hard constraints become unsatisfiable.
    pub fn next_correspondence(&mut self) -> Option<ValueCorrespondence> {
        if self.exhausted {
            return None;
        }
        match self.maxsat.solve() {
            MaxSatResult::Unsat => {
                self.exhausted = true;
                None
            }
            MaxSatResult::Optimal { model, .. } => {
                let mut phi = ValueCorrespondence::new();
                let mut blocking = Vec::with_capacity(self.pairs.len());
                for (source, target, var) in &self.pairs {
                    if model.value(*var) {
                        phi.add(source.clone(), target.clone());
                        blocking.push(Lit::neg(*var));
                    } else {
                        blocking.push(Lit::pos(*var));
                    }
                }
                self.maxsat.add_hard(&blocking);
                self.produced += 1;
                Some(phi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::parser::parse_program;

    fn motivating_schemas() -> (Schema, Schema) {
        let source = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        (source, target)
    }

    fn motivating_program(schema: &Schema) -> Program {
        parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            update deleteTA(id: int)
                DELETE TA FROM TA WHERE TaId = id;
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            schema,
        )
        .unwrap()
    }

    #[test]
    fn value_correspondence_container() {
        let mut vc = ValueCorrespondence::new();
        let a = QualifiedAttr::new("T", "a");
        let b1 = QualifiedAttr::new("U", "b1");
        let b2 = QualifiedAttr::new("U", "b2");
        assert!(!vc.is_mapped(&a));
        vc.add(a.clone(), b1.clone());
        vc.add(a.clone(), b2.clone());
        assert!(vc.is_mapped(&a));
        assert_eq!(vc.images(&a).len(), 2);
        assert_eq!(vc.mapped_count(), 1);
        let display = vc.to_string();
        assert!(display.contains("T.a"));
        assert!(display.contains("U.b1"));
    }

    #[test]
    fn first_correspondence_maps_pictures_correctly() {
        let (source_schema, target_schema) = motivating_schemas();
        let program = motivating_program(&source_schema);
        let mut enumerator = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = enumerator.next_correspondence().expect("at least one VC");
        // The paper's expected first correspondence: IPic -> Picture.Pic,
        // TPic -> Picture.Pic, everything else maps to the same-named attr.
        assert_eq!(
            phi.images(&QualifiedAttr::new("Instructor", "IPic")),
            [QualifiedAttr::new("Picture", "Pic")].into_iter().collect()
        );
        assert_eq!(
            phi.images(&QualifiedAttr::new("TA", "TPic")),
            [QualifiedAttr::new("Picture", "Pic")].into_iter().collect()
        );
        assert!(phi
            .images(&QualifiedAttr::new("Instructor", "IName"))
            .contains(&QualifiedAttr::new("Instructor", "IName")));
        assert!(phi
            .images(&QualifiedAttr::new("TA", "TaId"))
            .contains(&QualifiedAttr::new("TA", "TaId")));
        assert_eq!(enumerator.produced(), 1);
    }

    #[test]
    fn enumeration_yields_distinct_correspondences_in_decreasing_order() {
        let (source_schema, target_schema) = motivating_schemas();
        let program = motivating_program(&source_schema);
        let mut enumerator = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let mut seen = Vec::new();
        let mut previous_score = i64::MAX;
        for _ in 0..5 {
            let state_score = enumerator
                .frontier
                .peek()
                .map(|(score, _)| *score)
                .unwrap_or(i64::MIN);
            let phi = enumerator.next_correspondence().unwrap();
            assert!(
                state_score <= previous_score,
                "correspondences must be produced in decreasing objective order"
            );
            previous_score = state_score;
            assert!(!seen.contains(&phi), "correspondences must be distinct");
            seen.push(phi);
        }
        assert_eq!(enumerator.produced(), 5);
    }

    #[test]
    fn unsatisfiable_when_queried_attr_has_no_candidate() {
        // The query projects a binary column but the target schema has no
        // binary column at all, so the hard constraint is unsatisfiable.
        let source_schema = Schema::parse("T(id: int, blob: binary)").unwrap();
        let target_schema = Schema::parse("T(id: int, name: string)").unwrap();
        let program = parse_program(
            "query getBlob(id: int) SELECT blob FROM T WHERE id = id;",
            &source_schema,
        )
        .unwrap();
        let mut enumerator = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        assert!(enumerator.next_correspondence().is_none());
        assert!(enumerator.next_correspondence().is_none());
        let mut reference = MaxSatVcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        assert!(reference.next_correspondence().is_none());
    }

    #[test]
    fn rename_is_found_despite_low_similarity() {
        let source_schema = Schema::parse("T(key: int, zzz: string)").unwrap();
        let target_schema = Schema::parse("T(key: int, description: string)").unwrap();
        let program = parse_program(
            "query get(key: int) SELECT zzz FROM T WHERE key = key;",
            &source_schema,
        )
        .unwrap();
        let mut enumerator = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = enumerator.next_correspondence().unwrap();
        assert!(phi
            .images(&QualifiedAttr::new("T", "zzz"))
            .contains(&QualifiedAttr::new("T", "description")));
    }

    #[test]
    fn unmapped_bonus_leaves_unreferenced_attrs_unmapped() {
        // `T.legacy` is never referenced by the program, but its name is
        // close to `U.ledger`, so by default the first correspondence maps
        // it cross-table — which is exactly the pattern that poisons delete
        // coverage on the widened benchmarks.
        let source_schema = Schema::parse("T(id: int, legacy: string)").unwrap();
        let target_schema = Schema::parse("T(id: int)\nU(uid: int, ledger: string)").unwrap();
        let program = parse_program(
            "query get(id: int) SELECT id FROM T WHERE id = id;",
            &source_schema,
        )
        .unwrap();
        let legacy = QualifiedAttr::new("T", "legacy");

        let default_config = VcConfig::default();
        let mut plain =
            VcEnumerator::new(&program, &source_schema, &target_schema, &default_config);
        let phi = plain.next_correspondence().unwrap();
        assert!(phi.is_mapped(&legacy), "default ranking maps by similarity");

        let boosted = VcConfig {
            unmapped_unreferenced_bonus: default_config.pair_penalty() + 1,
            ..default_config
        };
        let mut fast = VcEnumerator::new(&program, &source_schema, &target_schema, &boosted);
        let fast_first = fast.next_correspondence().unwrap();
        assert!(!fast_first.is_mapped(&legacy));
        assert!(fast_first.is_mapped(&QualifiedAttr::new("T", "id")));
        // The MaxSAT reference implements the same bonus.
        let mut reference =
            MaxSatVcEnumerator::new(&program, &source_schema, &target_schema, &boosted);
        assert_eq!(reference.next_correspondence().unwrap(), fast_first);
    }

    #[test]
    fn maxsat_reference_agrees_with_best_first_enumerator_on_small_schema() {
        // A small rename + split scenario: both enumerators must agree on
        // the best correspondence.
        let source_schema = Schema::parse("Emp(eid: int, photo: binary, bio: string)").unwrap();
        let target_schema = Schema::parse(
            "Emp(eid: int, detailId: id)\n\
             EmpDetail(detailId: id, photo: binary, bio: string)",
        )
        .unwrap();
        let program = parse_program(
            r#"
            update addEmp(eid: int, photo: binary, bio: string)
                INSERT INTO Emp VALUES (eid: eid, photo: photo, bio: bio);
            query getEmp(eid: int)
                SELECT photo, bio FROM Emp WHERE eid = eid;
            "#,
            &source_schema,
        )
        .unwrap();
        let config = VcConfig::default();
        let mut fast = VcEnumerator::new(&program, &source_schema, &target_schema, &config);
        let mut reference =
            MaxSatVcEnumerator::new(&program, &source_schema, &target_schema, &config);
        let fast_first = fast.next_correspondence().unwrap();
        let reference_first = reference.next_correspondence().unwrap();
        assert_eq!(fast_first, reference_first);
        assert_eq!(reference.produced(), 1);
    }
}
