//! # migrator — synthesizing database programs for schema refactoring
//!
//! A reproduction of the PLDI 2019 paper *"Synthesizing Database Programs
//! for Schema Refactoring"* (Wang, Dong, Shah, Dillig). Given a database
//! program `P` over a source schema and a target schema the program should
//! be migrated to, the synthesizer produces a program `P'` over the target
//! schema that is behaviourally equivalent to `P`.
//!
//! The pipeline mirrors the paper (Figure 1):
//!
//! 1. [`value_corr`] — lazily enumerate candidate **value correspondences**
//!    between the schemas in decreasing order of likelihood, using a partial
//!    weighted MaxSAT encoding over attribute-similarity and one-to-one
//!    soft constraints.
//! 2. [`sketch_gen`] — from a candidate correspondence, derive **join
//!    correspondences** (Steiner trees over the target join graph,
//!    [`join_graph`]) and rewrite the source program into a **program
//!    sketch** ([`sketch`]) whose holes range over attributes, join chains
//!    and delete table lists.
//! 3. [`completion`] — encode the sketch's completions as a SAT formula (one
//!    exactly-one constraint per hole), enumerate models, and prune the
//!    search space with blocking clauses derived from **minimum failing
//!    inputs** found by bounded testing ([`verify`]).
//!
//! The top-level driver lives in [`synthesizer`]; alternative sketch solvers
//! used as evaluation baselines (symbolic enumeration without MFIs, and a
//! CEGIS-style enumerator standing in for the Sketch tool) live in
//! [`baselines`].
//!
//! Two cross-cutting capabilities thread through the driver:
//!
//! * [`observe`] — a [`SynthesisObserver`] receives typed progress events
//!   (correspondence enumerated, sketch generated, candidate checked, MFI
//!   found, bound exhausted) in deterministic enumeration order, even under
//!   parallel CEGIS;
//! * cancellation — a [`CancelToken`] (optionally deadline-carrying) is
//!   polled throughout the pipeline, and a run that stops early reports
//!   [`SynthesisOutcome::Timeout`] or [`SynthesisOutcome::Cancelled`],
//!   distinctly from [`SynthesisOutcome::NoSolution`].
//!
//! For the full pipeline — SQL DDL in, SQL + migration script + validation
//! out — use the `Refactoring` facade in the `pipeline` crate, which wraps
//! this one.
//!
//! ## Quick example — with an observer and a deadline
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use dbir::{parser::parse_program, Schema};
//! use migrator::{EventLog, SynthesisConfig, SynthesisOutcome, Synthesizer};
//!
//! let source_schema = Schema::parse("User(uid: int, uname: string)").unwrap();
//! let target_schema = Schema::parse("Person(uid: int, fullname: string)").unwrap();
//! let source = parse_program(
//!     r#"
//!     update addUser(uid: int, uname: string)
//!         INSERT INTO User VALUES (uid: uid, uname: uname);
//!     query getUser(uid: int)
//!         SELECT uname FROM User WHERE uid = uid;
//!     "#,
//!     &source_schema,
//! )
//! .unwrap();
//!
//! let log = Arc::new(EventLog::new()); // any SynthesisObserver works
//! let synthesizer = Synthesizer::new(SynthesisConfig::default())
//!     .with_observer(log.clone())
//!     // Each run gets a fresh 60s budget, measured from synthesize().
//!     // (For cancellation from another thread, install a CancelToken via
//!     // .with_cancel and keep a clone to .cancel() it.)
//!     .with_deadline(Duration::from_secs(60));
//! let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
//!
//! assert_eq!(result.outcome, SynthesisOutcome::Solved);
//! let migrated = result.program.expect("an equivalent program exists");
//! assert_eq!(migrated.functions.len(), 2);
//! assert!(!log.events().is_empty(), "the observer saw the search happen");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod completion;
pub mod config;
pub mod join_graph;
pub mod observe;
pub mod similarity;
pub mod sketch;
pub mod sketch_gen;
pub mod stats;
pub mod synthesizer;
pub mod value_corr;
pub mod verify;

pub use config::{SketchSolverKind, SynthesisConfig};
pub use observe::{EventLog, SynthesisEvent, SynthesisObserver};
pub use sketch::Sketch;
pub use stats::{PhaseBreakdown, SynthesisStats};
pub use synthesizer::{SynthesisOutcome, SynthesisResult, Synthesizer};
pub use value_corr::{ValueCorrespondence, VcEnumerator};

// Cancellation is part of the public synthesis API; re-export the token so
// library users do not need a direct `parpool` dependency.
pub use parpool::{CancelReason, CancelToken};
