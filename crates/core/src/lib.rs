//! # migrator — synthesizing database programs for schema refactoring
//!
//! A reproduction of the PLDI 2019 paper *"Synthesizing Database Programs
//! for Schema Refactoring"* (Wang, Dong, Shah, Dillig). Given a database
//! program `P` over a source schema and a target schema the program should
//! be migrated to, the synthesizer produces a program `P'` over the target
//! schema that is behaviourally equivalent to `P`.
//!
//! The pipeline mirrors the paper (Figure 1):
//!
//! 1. [`value_corr`] — lazily enumerate candidate **value correspondences**
//!    between the schemas in decreasing order of likelihood, using a partial
//!    weighted MaxSAT encoding over attribute-similarity and one-to-one
//!    soft constraints.
//! 2. [`sketch_gen`] — from a candidate correspondence, derive **join
//!    correspondences** (Steiner trees over the target join graph,
//!    [`join_graph`]) and rewrite the source program into a **program
//!    sketch** ([`sketch`]) whose holes range over attributes, join chains
//!    and delete table lists.
//! 3. [`completion`] — encode the sketch's completions as a SAT formula (one
//!    exactly-one constraint per hole), enumerate models, and prune the
//!    search space with blocking clauses derived from **minimum failing
//!    inputs** found by bounded testing ([`verify`]).
//!
//! The top-level driver lives in [`synthesizer`]; alternative sketch solvers
//! used as evaluation baselines (symbolic enumeration without MFIs, and a
//! CEGIS-style enumerator standing in for the Sketch tool) live in
//! [`baselines`].
//!
//! ## Quick example
//!
//! ```
//! use dbir::{parser::parse_program, Schema};
//! use migrator::{SynthesisConfig, Synthesizer};
//!
//! let source_schema = Schema::parse("User(uid: int, uname: string)").unwrap();
//! let target_schema = Schema::parse("Person(uid: int, fullname: string)").unwrap();
//! let source = parse_program(
//!     r#"
//!     update addUser(uid: int, uname: string)
//!         INSERT INTO User VALUES (uid: uid, uname: uname);
//!     query getUser(uid: int)
//!         SELECT uname FROM User WHERE uid = uid;
//!     "#,
//!     &source_schema,
//! )
//! .unwrap();
//!
//! let synthesizer = Synthesizer::new(SynthesisConfig::default());
//! let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
//! let migrated = result.program.expect("an equivalent program exists");
//! assert_eq!(migrated.functions.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod completion;
pub mod config;
pub mod join_graph;
pub mod similarity;
pub mod sketch;
pub mod sketch_gen;
pub mod stats;
pub mod synthesizer;
pub mod value_corr;
pub mod verify;

pub use config::{SketchSolverKind, SynthesisConfig};
pub use sketch::Sketch;
pub use stats::SynthesisStats;
pub use synthesizer::{SynthesisResult, Synthesizer};
pub use value_corr::{ValueCorrespondence, VcEnumerator};
