//! Baseline sketch solvers used in the paper's evaluation (Section 6.2).
//!
//! * [`solve_enumerative`] — the *symbolic enumerative search* baseline of
//!   Table 3: identical SAT encoding, but every failing candidate blocks
//!   only its own full model instead of an MFI-derived partial assignment.
//! * [`solve_cegis`] — a CEGIS-style enumerator standing in for the Sketch
//!   tool of Table 2 (see DESIGN.md for the substitution rationale): hole
//!   assignments are enumerated in an order oblivious to the sketch's
//!   likelihood ranking (a fixed pseudo-random permutation per hole domain,
//!   mirroring a SAT backend's ranking-agnostic model order), candidates are
//!   first screened against the accumulated counterexample set, and no
//!   structural learning is performed. On large sketches this baseline
//!   typically hits its candidate or time budget, which reproduces the
//!   timeout behaviour the paper reports for Sketch.

use std::time::{Duration, Instant};

use dbir::equiv::{SourceOracle, TestConfig};
use dbir::invocation::{observe, InvocationSequence, Outcome};
use dbir::{Program, Schema};

use crate::completion::{complete_sketch, BlockingStrategy, CompletionControls, CompletionOutcome};
use crate::sketch::Sketch;
use crate::verify::{check_candidate_with_oracle, CheckOutcome};

/// Solves a sketch with full-model blocking (the Table 3 baseline).
#[allow(clippy::too_many_arguments)]
pub fn solve_enumerative(
    sketch: &Sketch,
    source: &Program,
    source_schema: &Schema,
    target_schema: &Schema,
    testing: &TestConfig,
    verification: &TestConfig,
    max_iterations: usize,
) -> CompletionOutcome {
    let oracle = SourceOracle::new(source, source_schema);
    complete_sketch(
        sketch,
        &oracle,
        target_schema,
        testing,
        verification,
        BlockingStrategy::FullModel,
        max_iterations,
        CompletionControls::none(),
    )
}

/// Configuration of the CEGIS-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CegisConfig {
    /// Stop after examining this many candidate programs (0 = unlimited).
    pub max_candidates: usize,
    /// Stop after this much wall-clock time.
    pub time_limit: Duration,
    /// Bounded-testing configuration used for the full equivalence check.
    pub testing: TestConfig,
}

impl Default for CegisConfig {
    fn default() -> CegisConfig {
        CegisConfig {
            max_candidates: 200_000,
            time_limit: Duration::from_secs(30),
            testing: TestConfig::default(),
        }
    }
}

/// The outcome of running the CEGIS baseline on one sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct CegisOutcome {
    /// The synthesized program, if one was found within the budget.
    pub program: Option<Program>,
    /// Number of candidate programs examined.
    pub candidates: usize,
    /// Number of counterexample invocation sequences accumulated.
    pub counterexamples: usize,
    /// `true` if the search stopped because it exhausted its time or
    /// candidate budget rather than the search space.
    pub timed_out: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Solves a sketch with counterexample-guided *enumeration*: candidates are
/// produced by a lexicographic odometer over a fixed pseudo-random
/// permutation of each hole's domain, screened against the accumulated
/// counterexamples, and fully tested only if they survive screening.
///
/// The permutation matters: MIGRATOR's sketch generator orders every hole
/// domain by likelihood, so plain lexicographic enumeration would start at
/// the synthesizer's best guess and inherit exactly the heuristic the
/// baseline is meant to lack. Scrambling each domain deterministically keeps
/// runs reproducible while modelling a solver with no ranking information.
pub fn solve_cegis(
    sketch: &Sketch,
    source: &Program,
    source_schema: &Schema,
    target_schema: &Schema,
    config: &CegisConfig,
) -> CegisOutcome {
    let start = Instant::now();
    let mut counterexamples: Vec<(InvocationSequence, Outcome)> = Vec::new();
    let mut candidates = 0usize;
    let oracle = SourceOracle::new(source, source_schema);

    let domain_sizes: Vec<usize> = sketch.holes.iter().map(|h| h.domain.size()).collect();
    if domain_sizes.contains(&0) {
        return CegisOutcome {
            program: None,
            candidates: 0,
            counterexamples: 0,
            timed_out: false,
            elapsed: start.elapsed(),
        };
    }
    let mut assignment = vec![0usize; domain_sizes.len()];
    // One fixed Fisher-Yates permutation per hole (xorshift64, seeded by the
    // hole index) decouples enumeration order from the domain ranking.
    let permutations: Vec<Vec<usize>> = domain_sizes
        .iter()
        .enumerate()
        .map(|(hole, &size)| {
            let mut permutation: Vec<usize> = (0..size).collect();
            let mut state =
                0x9e37_79b9_7f4a_7c15u64 ^ (hole as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95);
            for j in (1..size).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                permutation.swap(j, (state % (j as u64 + 1)) as usize);
            }
            permutation
        })
        .collect();

    loop {
        if start.elapsed() > config.time_limit
            || (config.max_candidates > 0 && candidates >= config.max_candidates)
        {
            return CegisOutcome {
                program: None,
                candidates,
                counterexamples: counterexamples.len(),
                timed_out: true,
                elapsed: start.elapsed(),
            };
        }

        let scrambled: Vec<usize> = assignment
            .iter()
            .zip(&permutations)
            .map(|(&position, permutation)| permutation[position])
            .collect();
        if let Ok(candidate) = sketch.instantiate(&scrambled) {
            candidates += 1;
            let screened_out = counterexamples.iter().any(|(sequence, expected)| {
                &observe(&candidate, target_schema, sequence) != expected
            });
            if !screened_out && candidate.validate(target_schema).is_ok() {
                match check_candidate_with_oracle(
                    &oracle,
                    &candidate,
                    target_schema,
                    &config.testing,
                ) {
                    CheckOutcome::Equivalent { .. } => {
                        return CegisOutcome {
                            program: Some(candidate),
                            candidates,
                            counterexamples: counterexamples.len(),
                            timed_out: false,
                            elapsed: start.elapsed(),
                        };
                    }
                    CheckOutcome::NotEquivalent {
                        minimum_failing_input,
                        ..
                    } => {
                        let expected = oracle.observe(&minimum_failing_input);
                        counterexamples.push((minimum_failing_input, expected));
                    }
                    CheckOutcome::Cancelled { .. } => {
                        unreachable!("the baseline check runs without a cancel token")
                    }
                }
            }
        }

        // Advance the lexicographic odometer; stop when it wraps around.
        let mut position = assignment.len();
        loop {
            if position == 0 {
                return CegisOutcome {
                    program: None,
                    candidates,
                    counterexamples: counterexamples.len(),
                    timed_out: false,
                    elapsed: start.elapsed(),
                };
            }
            position -= 1;
            assignment[position] += 1;
            if assignment[position] < domain_sizes[position] {
                break;
            }
            assignment[position] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch_gen::{generate_sketch, SketchGenConfig};
    use crate::value_corr::{VcConfig, VcEnumerator};
    use dbir::parser::parse_program;

    fn rename_benchmark() -> (Schema, Schema, Program) {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, bb: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        (source_schema, target_schema, source)
    }

    fn sketch_for(source: &Program, source_schema: &Schema, target_schema: &Schema) -> Sketch {
        let mut vc = VcEnumerator::new(source, source_schema, target_schema, &VcConfig::default());
        let phi = vc.next_correspondence().unwrap();
        generate_sketch(source, &phi, target_schema, &SketchGenConfig::default()).unwrap()
    }

    #[test]
    fn enumerative_baseline_solves_small_sketches() {
        let (source_schema, target_schema, source) = rename_benchmark();
        let sketch = sketch_for(&source, &source_schema, &target_schema);
        let outcome = solve_enumerative(
            &sketch,
            &source,
            &source_schema,
            &target_schema,
            &TestConfig::default(),
            &TestConfig::default(),
            0,
        );
        assert!(outcome.program.is_some());
    }

    #[test]
    fn cegis_baseline_solves_small_sketches() {
        let (source_schema, target_schema, source) = rename_benchmark();
        let sketch = sketch_for(&source, &source_schema, &target_schema);
        let outcome = solve_cegis(
            &sketch,
            &source,
            &source_schema,
            &target_schema,
            &CegisConfig::default(),
        );
        assert!(outcome.program.is_some());
        assert!(!outcome.timed_out);
        assert!(outcome.candidates >= 1);
    }

    #[test]
    fn cegis_baseline_respects_budget() {
        let (source_schema, target_schema, source) = rename_benchmark();
        let sketch = sketch_for(&source, &source_schema, &target_schema);
        // An impossible budget of zero time forces an immediate timeout.
        let outcome = solve_cegis(
            &sketch,
            &source,
            &source_schema,
            &target_schema,
            &CegisConfig {
                max_candidates: 1,
                time_limit: Duration::from_secs(0),
                testing: TestConfig::default(),
            },
        );
        assert!(outcome.program.is_none());
        assert!(outcome.timed_out);
    }
}
