//! Statistics collected during synthesis, mirroring the columns of the
//! paper's evaluation tables.

use std::time::Duration;

/// Statistics for one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Number of value correspondences considered (Table 1, "Value Corr").
    pub value_correspondences: usize,
    /// Number of candidate programs explored across all sketches
    /// (Table 1 / Table 3, "Iters").
    pub iterations: usize,
    /// Number of candidate programs rejected because their hole assignment
    /// was structurally invalid (not counted as iterations by the paper, but
    /// useful for diagnostics).
    pub invalid_instantiations: usize,
    /// Number of sketches generated (one per value correspondence that
    /// produced a sketch).
    pub sketches_generated: usize,
    /// The completion count of the largest sketch explored (the size of the
    /// symbolic search space).
    pub largest_search_space: u128,
    /// Total number of invocation sequences executed while testing
    /// candidates.
    pub sequences_tested: usize,
    /// Number of equivalence checks that accepted a candidate *without*
    /// enumerating their whole bound (they stopped at
    /// `TestConfig::max_sequences`). Zero means every accepting verdict in
    /// the run genuinely exhausted its bound (`bound_exhausted` held for
    /// all of them); a non-zero value flags optimistic acceptances.
    pub truncated_checks: usize,
    /// Number of source-side invocation sequences served from the memoized
    /// source oracle instead of being re-interpreted.
    pub oracle_hits: usize,
    /// Time spent in synthesis proper: value-correspondence enumeration,
    /// sketch generation and sketch completion including MFI search
    /// (Table 1, "Synth Time").
    pub synthesis_time: Duration,
    /// Time spent in the final verification pass (included in Table 1's
    /// "Total Time" but not in "Synth Time").
    pub verification_time: Duration,
}

impl SynthesisStats {
    /// Total wall-clock time: synthesis plus verification
    /// (Table 1, "Total Time").
    pub fn total_time(&self) -> Duration {
        self.synthesis_time + self.verification_time
    }

    /// Merges statistics from solving one sketch into the running totals.
    pub fn absorb_sketch_run(&mut self, other: &SketchRunStats) {
        self.iterations += other.iterations;
        self.invalid_instantiations += other.invalid_instantiations;
        self.sequences_tested += other.sequences_tested;
        self.truncated_checks += other.truncated_checks;
        self.largest_search_space = self.largest_search_space.max(other.search_space);
    }
}

/// Statistics for solving a single sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SketchRunStats {
    /// Number of candidate programs whose equivalence was tested.
    pub iterations: usize,
    /// Number of structurally invalid hole assignments encountered.
    pub invalid_instantiations: usize,
    /// Number of invocation sequences executed.
    pub sequences_tested: usize,
    /// Number of equivalence checks that accepted a candidate without
    /// enumerating their whole bound (see
    /// [`SynthesisStats::truncated_checks`]).
    pub truncated_checks: usize,
    /// The sketch's completion count.
    pub search_space: u128,
    /// Number of blocking clauses added.
    pub blocking_clauses: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_adds_synthesis_and_verification() {
        let stats = SynthesisStats {
            synthesis_time: Duration::from_millis(300),
            verification_time: Duration::from_millis(200),
            ..SynthesisStats::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(500));
    }

    #[test]
    fn absorb_accumulates_and_maximizes() {
        let mut stats = SynthesisStats::default();
        stats.absorb_sketch_run(&SketchRunStats {
            iterations: 3,
            invalid_instantiations: 1,
            sequences_tested: 40,
            truncated_checks: 1,
            search_space: 100,
            blocking_clauses: 2,
        });
        stats.absorb_sketch_run(&SketchRunStats {
            iterations: 2,
            invalid_instantiations: 0,
            sequences_tested: 10,
            truncated_checks: 0,
            search_space: 50,
            blocking_clauses: 1,
        });
        assert_eq!(stats.iterations, 5);
        assert_eq!(stats.invalid_instantiations, 1);
        assert_eq!(stats.sequences_tested, 50);
        assert_eq!(stats.truncated_checks, 1);
        assert_eq!(stats.largest_search_space, 100);
    }
}
