//! Statistics collected during synthesis, mirroring the columns of the
//! paper's evaluation tables, plus a per-phase breakdown of where the time
//! and allocation went.

use std::time::Duration;

use dbir::equiv::CheckProfile;

/// Statistics for one synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Number of value correspondences considered (Table 1, "Value Corr").
    pub value_correspondences: usize,
    /// Number of candidate programs explored across all sketches
    /// (Table 1 / Table 3, "Iters").
    pub iterations: usize,
    /// Number of candidate programs rejected because their hole assignment
    /// was structurally invalid (not counted as iterations by the paper, but
    /// useful for diagnostics).
    pub invalid_instantiations: usize,
    /// Number of sketches generated (one per value correspondence that
    /// produced a sketch).
    pub sketches_generated: usize,
    /// The completion count of the largest sketch explored (the size of the
    /// symbolic search space).
    pub largest_search_space: u128,
    /// Total number of invocation sequences executed while testing
    /// candidates.
    pub sequences_tested: usize,
    /// Number of equivalence checks that accepted a candidate *without*
    /// enumerating their whole bound (they stopped at
    /// `TestConfig::max_sequences`). Zero means every accepting verdict in
    /// the run genuinely exhausted its bound (`bound_exhausted` held for
    /// all of them); a non-zero value flags optimistic acceptances.
    pub truncated_checks: usize,
    /// Number of source-side invocation sequences served from the memoized
    /// source oracle instead of being re-interpreted.
    pub oracle_hits: usize,
    /// Time spent in synthesis proper: value-correspondence enumeration,
    /// sketch generation and sketch completion including MFI search
    /// (Table 1, "Synth Time").
    pub synthesis_time: Duration,
    /// Time spent in the final verification pass (included in Table 1's
    /// "Total Time" but not in "Synth Time").
    pub verification_time: Duration,
    /// Where the time and allocation went, phase by phase.
    pub phases: PhaseBreakdown,
}

impl SynthesisStats {
    /// Total wall-clock time: synthesis plus verification
    /// (Table 1, "Total Time").
    pub fn total_time(&self) -> Duration {
        self.synthesis_time + self.verification_time
    }

    /// Merges statistics from solving one sketch into the running totals.
    pub fn absorb_sketch_run(&mut self, other: &SketchRunStats) {
        self.iterations += other.iterations;
        self.invalid_instantiations += other.invalid_instantiations;
        self.sequences_tested += other.sequences_tested;
        self.truncated_checks += other.truncated_checks;
        self.largest_search_space = self.largest_search_space.max(other.search_space);
        self.phases.sat_blocking_clauses += other.blocking_clauses;
        self.phases.solver_reuses += other.solver_reuses;
        self.phases.learned_clauses_kept += other.learned_clauses_kept;
    }
}

/// Per-phase breakdown of one synthesis run: where the wall-clock time and
/// the snapshot allocation went.
///
/// Two disciplines coexist here, and `experiments check` relies on the
/// distinction:
///
/// * **Deterministic counters** — `sat_blocking_clauses`, `plans_compiled`,
///   `solver_reuses`, `learned_clauses_kept`, `prefix_cache_hits`,
///   `undo_frames` and `undo_ops_rolled_back` are merged from the winning
///   trajectory in enumeration order, so they are byte-identical at any
///   thread count (the same contract as the synthesis event log). The
///   incremental-solver counters are deterministic because candidate
///   speculation *always* runs — [`parpool::join`] degrades to sequential
///   execution rather than skipping the probe — so the solver sees the same
///   call sequence at any thread budget; prefix-cache resolution happens at
///   sequential points of each check, so hit counts are a pure function of
///   the candidate sequence; the undo-log counters are deterministic
///   because every production check runs prefix-cached, whose per-root walk
///   work is merged in root order (see [`CheckProfile`]).
/// * **Scheduling-dependent diagnostics** — `snapshots_taken` and
///   `snapshot_bytes_copied` grow with the thread count (parallel stub
///   tasks replay their prefixes), and every `*_time` field is wall-clock.
///   None of these may be compared across runs.
///
/// The time fields are not disjoint: `plan_compile_time`, `snapshot_time`
/// and `oracle_time` all nest inside `bounded_testing_time`, which itself
/// sums candidate checks across workers — so the sum of phases can exceed
/// the run's wall time on a multi-threaded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Time spent enumerating value correspondences (MaxSAT queries).
    pub vc_enumeration_time: Duration,
    /// Time spent generating sketches from correspondences.
    pub sketch_generation_time: Duration,
    /// Time spent completing sketches: SAT solving, decoding, instantiation
    /// and MFI learning (includes the nested bounded testing).
    pub completion_time: Duration,
    /// Time spent inside bounded-testing equivalence checks (winning
    /// trajectory plus the final verification pass).
    pub bounded_testing_time: Duration,
    /// Time spent compiling update/query plans for those checks.
    pub plan_compile_time: Duration,
    /// Time spent cloning instance snapshots inside the DFS walks.
    pub snapshot_time: Duration,
    /// CPU time spent interpreting the source program on oracle misses —
    /// summed across *all* workers, including losing speculative attempts
    /// (the oracle is shared), so this is the one field that is not
    /// restricted to the winning trajectory.
    pub oracle_time: Duration,
    /// Blocking clauses added by the SAT completion loop (deterministic).
    pub sat_blocking_clauses: usize,
    /// Update/query plan compilations performed (deterministic).
    pub plans_compiled: u64,
    /// Solver calls answered by a *reused* persistent solver — every call
    /// after the first on each sketch's incremental solver (deterministic).
    pub solver_reuses: u64,
    /// Conflict clauses learned and retained across blocking clauses by the
    /// persistent solvers of the winning trajectory (deterministic).
    pub learned_clauses_kept: u64,
    /// Update-prefix executions served from the cross-candidate
    /// [`PrefixCache`](dbir::equiv::PrefixCache) instead of being re-run
    /// (deterministic).
    pub prefix_cache_hits: u64,
    /// Update calls executed in place with journaled inverses by the
    /// bounded-testing walks (deterministic).
    pub undo_frames: u64,
    /// Row-level inverse operations replayed while backtracking
    /// (deterministic).
    pub undo_ops_rolled_back: u64,
    /// Instance snapshots cloned — COW-cheap pointer copies
    /// (scheduling-dependent).
    pub snapshots_taken: u64,
    /// Heap bytes physically copied for snapshots: clone overhead plus
    /// copy-on-write table copies (scheduling-dependent).
    pub snapshot_bytes_copied: u64,
}

impl PhaseBreakdown {
    /// Merges one bounded-testing check's profile into the breakdown.
    pub fn absorb_check(&mut self, profile: &CheckProfile) {
        self.bounded_testing_time += profile.dfs_time + profile.plan_compile_time;
        self.plan_compile_time += profile.plan_compile_time;
        self.snapshot_time += profile.snapshot_time;
        self.plans_compiled += profile.plans_compiled;
        self.prefix_cache_hits += profile.prefix_cache_hits;
        self.undo_frames += profile.undo_frames;
        self.undo_ops_rolled_back += profile.undo_ops_rolled_back;
        self.snapshots_taken += profile.snapshots_taken;
        self.snapshot_bytes_copied += profile.snapshot_bytes_copied;
    }
}

/// Statistics for solving a single sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SketchRunStats {
    /// Number of candidate programs whose equivalence was tested.
    pub iterations: usize,
    /// Number of structurally invalid hole assignments encountered.
    pub invalid_instantiations: usize,
    /// Number of invocation sequences executed.
    pub sequences_tested: usize,
    /// Number of equivalence checks that accepted a candidate without
    /// enumerating their whole bound (see
    /// [`SynthesisStats::truncated_checks`]).
    pub truncated_checks: usize,
    /// The sketch's completion count.
    pub search_space: u128,
    /// Number of blocking clauses added.
    pub blocking_clauses: usize,
    /// Solver calls beyond the first answered by this sketch's persistent
    /// incremental solver (each one reused the solver's learnt clauses,
    /// activities and saved phases instead of rebuilding from the CNF).
    pub solver_reuses: u64,
    /// Conflict clauses the persistent solver learned and retained across
    /// blocking clauses.
    pub learned_clauses_kept: u64,
    /// Speculative models adopted as the next candidate without a fresh
    /// solver call (they already satisfied the learned blocking clause).
    pub speculation_adoptions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_adds_synthesis_and_verification() {
        let stats = SynthesisStats {
            synthesis_time: Duration::from_millis(300),
            verification_time: Duration::from_millis(200),
            ..SynthesisStats::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(500));
    }

    #[test]
    fn absorb_accumulates_and_maximizes() {
        let mut stats = SynthesisStats::default();
        stats.absorb_sketch_run(&SketchRunStats {
            iterations: 3,
            invalid_instantiations: 1,
            sequences_tested: 40,
            truncated_checks: 1,
            search_space: 100,
            blocking_clauses: 2,
            solver_reuses: 4,
            learned_clauses_kept: 7,
            speculation_adoptions: 1,
        });
        stats.absorb_sketch_run(&SketchRunStats {
            iterations: 2,
            invalid_instantiations: 0,
            sequences_tested: 10,
            truncated_checks: 0,
            search_space: 50,
            blocking_clauses: 1,
            solver_reuses: 2,
            learned_clauses_kept: 1,
            speculation_adoptions: 0,
        });
        assert_eq!(stats.iterations, 5);
        assert_eq!(stats.invalid_instantiations, 1);
        assert_eq!(stats.sequences_tested, 50);
        assert_eq!(stats.truncated_checks, 1);
        assert_eq!(stats.largest_search_space, 100);
        assert_eq!(stats.phases.sat_blocking_clauses, 3);
        assert_eq!(stats.phases.solver_reuses, 6);
        assert_eq!(stats.phases.learned_clauses_kept, 8);
    }

    #[test]
    fn check_profiles_fold_into_the_phase_breakdown() {
        let mut phases = PhaseBreakdown::default();
        phases.absorb_check(&CheckProfile {
            plan_compile_time: Duration::from_millis(2),
            plans_compiled: 8,
            dfs_time: Duration::from_millis(10),
            snapshot_time: Duration::from_millis(4),
            snapshots_taken: 100,
            snapshot_bytes_copied: 4096,
            prefix_cache_hits: 5,
            undo_frames: 60,
            undo_ops_rolled_back: 200,
        });
        phases.absorb_check(&CheckProfile {
            plans_compiled: 2,
            snapshots_taken: 1,
            prefix_cache_hits: 3,
            undo_frames: 4,
            undo_ops_rolled_back: 10,
            ..CheckProfile::default()
        });
        assert_eq!(phases.bounded_testing_time, Duration::from_millis(12));
        assert_eq!(phases.plan_compile_time, Duration::from_millis(2));
        assert_eq!(phases.snapshot_time, Duration::from_millis(4));
        assert_eq!(phases.plans_compiled, 10);
        assert_eq!(phases.prefix_cache_hits, 8);
        assert_eq!(phases.undo_frames, 64);
        assert_eq!(phases.undo_ops_rolled_back, 210);
        assert_eq!(phases.snapshots_taken, 101);
        assert_eq!(phases.snapshot_bytes_copied, 4096);
    }
}
