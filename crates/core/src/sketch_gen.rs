//! Sketch generation from a candidate value correspondence
//! (Section 4.3 of the paper, Figures 7–10).
//!
//! Every statement of the source program is rewritten into a statement
//! sketch over the target schema:
//!
//! * attribute references become [`AttrSlot`]s — fixed when the value
//!   correspondence maps the source attribute to a single target attribute,
//!   and attribute holes otherwise;
//! * the statement's join chain becomes a join-chain hole whose domain
//!   contains every target chain that covers the images of the attributes
//!   the statement needs (computed with the Steiner-tree enumeration in
//!   [`crate::join_graph`]);
//! * delete statements additionally receive a table-list hole ranging over
//!   the non-empty subsets of the candidate chains' tables;
//! * insert statements receive an *insert-target* hole whose candidates may
//!   consist of several chains when the required target tables are not
//!   connected in the join graph (the phase-II sequential composition of the
//!   paper, specialized to inserts).
//!
//! If some attribute the program needs is unmapped by the correspondence, or
//! no covering chain exists, sketch generation fails and the synthesizer
//! moves on to the next value correspondence.

use std::collections::BTreeSet;

use dbir::ast::{FunctionBody, Pred, Program, Query, Update};
use dbir::schema::{QualifiedAttr, Schema, TableName};

use crate::join_graph::JoinGraph;
use crate::sketch::{
    AttrSlot, BodySketch, FunctionSketch, HoleDomain, PredSketch, QuerySketch, Sketch, UpdateSketch,
};
use crate::value_corr::ValueCorrespondence;

/// Configuration of sketch generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchGenConfig {
    /// Maximum number of non-terminal (Steiner) tables a candidate join
    /// chain may use.
    pub max_steiner_extra: usize,
    /// Cap on the number of image combinations explored when a statement
    /// references attributes with multiple images.
    pub max_image_combinations: usize,
    /// When the union of candidate-chain tables exceeds this size, the
    /// delete table-list domain is restricted to small subsets plus each
    /// candidate chain's full table set (instead of the full power set).
    pub max_delete_powerset_tables: usize,
    /// Widened-space gate: when a delete statement's full needed-attribute
    /// set (predicate attributes plus every mapped column of the deleted
    /// tables) has no covering chain — typically because the value
    /// correspondence maps a vestigial column into a table unreachable from
    /// the delete's join neighbourhood — retry with the predicate attributes
    /// alone instead of failing the whole sketch. The resulting sketch is
    /// strictly wider (the table-list hole still ranges over the chain's
    /// tables, and bounded testing rejects deletes that miss images), so
    /// this only trades search-space size for coverage.
    pub relax_delete_coverage: bool,
}

impl Default for SketchGenConfig {
    fn default() -> SketchGenConfig {
        SketchGenConfig {
            max_steiner_extra: 2,
            max_image_combinations: 32,
            max_delete_powerset_tables: 4,
            relax_delete_coverage: false,
        }
    }
}

/// Generates the sketch for `program` under value correspondence `phi`, or
/// `None` if the correspondence cannot express the program (an attribute is
/// unmapped or a statement's attributes cannot be covered by any target join
/// chain).
pub fn generate_sketch(
    program: &Program,
    phi: &ValueCorrespondence,
    target_schema: &Schema,
    config: &SketchGenConfig,
) -> Option<Sketch> {
    let graph = JoinGraph::new(target_schema);
    let mut builder = SketchBuilder {
        phi,
        graph: &graph,
        config,
        sketch: Sketch::new(),
        current_function: String::new(),
    };
    for function in &program.functions {
        builder.current_function = function.name.clone();
        let body = match &function.body {
            FunctionBody::Query(query) => BodySketch::Query(builder.rewrite_query(query)?),
            FunctionBody::Update(update) => BodySketch::Update(builder.rewrite_update(update)?),
        };
        builder.sketch.functions.push(FunctionSketch {
            name: function.name.clone(),
            params: function.params.clone(),
            body,
        });
    }
    if builder.sketch.has_empty_hole() {
        return None;
    }
    Some(builder.sketch)
}

struct SketchBuilder<'a> {
    phi: &'a ValueCorrespondence,
    graph: &'a JoinGraph<'a>,
    config: &'a SketchGenConfig,
    sketch: Sketch,
    current_function: String,
}

impl SketchBuilder<'_> {
    /// Rewrites a source attribute into a slot (the Attr rule of Figure 8).
    fn attr_slot(&mut self, attr: &QualifiedAttr) -> Option<AttrSlot> {
        let images = self.phi.images(attr);
        match images.len() {
            0 => None,
            1 => Some(AttrSlot::Fixed(
                images.into_iter().next().expect("length checked"),
            )),
            _ => {
                let hole = self
                    .sketch
                    .add_hole(HoleDomain::Attr(images.into_iter().collect()));
                self.sketch
                    .attach_hole(&self.current_function.clone(), hole);
                Some(AttrSlot::Hole(hole))
            }
        }
    }

    /// The candidate target chains covering the images of `needed` source
    /// attributes (the join-correspondence computation of Section 5).
    fn candidate_chains(
        &self,
        needed: &BTreeSet<QualifiedAttr>,
    ) -> Option<Vec<dbir::ast::JoinChain>> {
        let terminal_sets = self.terminal_sets(needed)?;
        let mut chains = Vec::new();
        for terminals in terminal_sets {
            for chain in self
                .graph
                .covering_chains(&terminals, self.config.max_steiner_extra)
            {
                if !chains.contains(&chain) {
                    chains.push(chain);
                }
            }
        }
        chains.sort_by_key(dbir::ast::JoinChain::len);
        if chains.is_empty() {
            None
        } else {
            Some(chains)
        }
    }

    /// The candidate insert targets (possibly multi-chain) covering the
    /// images of `needed` source attributes.
    fn candidate_insert_targets(
        &self,
        needed: &BTreeSet<QualifiedAttr>,
    ) -> Option<Vec<Vec<dbir::ast::JoinChain>>> {
        let terminal_sets = self.terminal_sets(needed)?;
        let mut targets: Vec<Vec<dbir::ast::JoinChain>> = Vec::new();
        for terminals in terminal_sets {
            for target in self
                .graph
                .covering_chain_sets(&terminals, self.config.max_steiner_extra)
            {
                if !targets.contains(&target) {
                    targets.push(target);
                }
            }
        }
        targets.sort_by_key(|chains| chains.iter().map(dbir::ast::JoinChain::len).sum::<usize>());
        if targets.is_empty() {
            None
        } else {
            Some(targets)
        }
    }

    /// Enumerates terminal-table sets: one per combination of choosing an
    /// image for each needed source attribute (capped).
    fn terminal_sets(&self, needed: &BTreeSet<QualifiedAttr>) -> Option<Vec<BTreeSet<TableName>>> {
        let mut image_groups: Vec<Vec<QualifiedAttr>> = Vec::new();
        for attr in needed {
            let images: Vec<QualifiedAttr> = self.phi.images(attr).into_iter().collect();
            if images.is_empty() {
                return None;
            }
            image_groups.push(images);
        }
        if image_groups.is_empty() {
            return Some(Vec::new());
        }
        let mut combos: Vec<BTreeSet<TableName>> = vec![BTreeSet::new()];
        for group in &image_groups {
            let mut next = Vec::new();
            for combo in &combos {
                for image in group {
                    let mut extended = combo.clone();
                    extended.insert(image.table);
                    next.push(extended);
                }
                if next.len() > self.config.max_image_combinations {
                    break;
                }
            }
            next.sort();
            next.dedup();
            next.truncate(self.config.max_image_combinations);
            combos = next;
        }
        Some(combos)
    }

    /// The source attributes a query needs mapped: projections plus
    /// predicate attributes (join conditions of the *source* chain are not
    /// included — the target chain supplies its own).
    fn query_needed_attrs(query: &Query, out: &mut BTreeSet<QualifiedAttr>) {
        match query {
            Query::Project { attrs, input } => {
                out.extend(attrs.iter().cloned());
                Self::query_needed_attrs(input, out);
            }
            Query::Filter { pred, input } => {
                Self::pred_needed_attrs(pred, out);
                Self::query_needed_attrs(input, out);
            }
            Query::Join(_) => {}
        }
    }

    fn pred_needed_attrs(pred: &Pred, out: &mut BTreeSet<QualifiedAttr>) {
        match pred {
            Pred::True | Pred::False => {}
            Pred::CmpAttr { lhs, rhs, .. } => {
                out.insert(lhs.clone());
                out.insert(rhs.clone());
            }
            Pred::CmpValue { lhs, .. } => {
                out.insert(lhs.clone());
            }
            Pred::In { attr, query } => {
                out.insert(attr.clone());
                Self::query_needed_attrs(query, out);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                Self::pred_needed_attrs(a, out);
                Self::pred_needed_attrs(b, out);
            }
            Pred::Not(p) => Self::pred_needed_attrs(p, out),
        }
    }

    fn rewrite_pred(&mut self, pred: &Pred) -> Option<PredSketch> {
        Some(match pred {
            Pred::True => PredSketch::True,
            Pred::False => PredSketch::False,
            Pred::CmpAttr { lhs, op, rhs } => PredSketch::CmpAttr {
                lhs: self.attr_slot(lhs)?,
                op: *op,
                rhs: self.attr_slot(rhs)?,
            },
            Pred::CmpValue { lhs, op, rhs } => PredSketch::CmpValue {
                lhs: self.attr_slot(lhs)?,
                op: *op,
                rhs: rhs.clone(),
            },
            Pred::In { attr, query } => PredSketch::In {
                attr: self.attr_slot(attr)?,
                query: Box::new(self.rewrite_query(query)?),
            },
            Pred::And(a, b) => PredSketch::And(
                Box::new(self.rewrite_pred(a)?),
                Box::new(self.rewrite_pred(b)?),
            ),
            Pred::Or(a, b) => PredSketch::Or(
                Box::new(self.rewrite_pred(a)?),
                Box::new(self.rewrite_pred(b)?),
            ),
            Pred::Not(p) => PredSketch::Not(Box::new(self.rewrite_pred(p)?)),
        })
    }

    /// Rewrites a query into a query sketch (the Proj/Filter/Join rules).
    fn rewrite_query(&mut self, query: &Query) -> Option<QuerySketch> {
        let mut needed = BTreeSet::new();
        Self::query_needed_attrs(query, &mut needed);
        let chains = self.candidate_chains(&needed)?;
        let join_hole = self.sketch.add_hole(HoleDomain::Join(chains));
        self.sketch
            .attach_hole(&self.current_function.clone(), join_hole);
        self.rewrite_query_structure(query, join_hole)
    }

    fn rewrite_query_structure(
        &mut self,
        query: &Query,
        join_hole: crate::sketch::HoleId,
    ) -> Option<QuerySketch> {
        Some(match query {
            Query::Join(_) => QuerySketch::Join(join_hole),
            Query::Filter { pred, input } => QuerySketch::Filter {
                pred: self.rewrite_pred(pred)?,
                input: Box::new(self.rewrite_query_structure(input, join_hole)?),
            },
            Query::Project { attrs, input } => {
                let attrs: Option<Vec<AttrSlot>> =
                    attrs.iter().map(|a| self.attr_slot(a)).collect();
                QuerySketch::Project {
                    attrs: attrs?,
                    input: Box::new(self.rewrite_query_structure(input, join_hole)?),
                }
            }
        })
    }

    /// Rewrites an update statement (or sequence) into an update sketch
    /// (the Insert/Delete/Update rules of Figure 8).
    fn rewrite_update(&mut self, update: &Update) -> Option<UpdateSketch> {
        match update {
            Update::Seq(list) => {
                let rewritten: Option<Vec<UpdateSketch>> =
                    list.iter().map(|u| self.rewrite_update(u)).collect();
                Some(UpdateSketch::Seq(rewritten?))
            }
            Update::Insert { values, .. } => {
                let needed: BTreeSet<QualifiedAttr> =
                    values.iter().map(|(a, _)| a.clone()).collect();
                let targets = self.candidate_insert_targets(&needed)?;
                let target_hole = self.sketch.add_hole(HoleDomain::InsertTarget(targets));
                self.sketch
                    .attach_hole(&self.current_function.clone(), target_hole);
                let slots: Option<Vec<(AttrSlot, dbir::ast::Operand)>> = values
                    .iter()
                    .map(|(attr, operand)| Some((self.attr_slot(attr)?, operand.clone())))
                    .collect();
                Some(UpdateSketch::Insert {
                    target: target_hole,
                    values: slots?,
                })
            }
            Update::Delete { tables, pred, .. } => {
                // The chain must reach the images of the deleted tables'
                // (mapped) columns plus the predicate's attributes.
                let mut needed = BTreeSet::new();
                Self::pred_needed_attrs(pred, &mut needed);
                let pred_only = needed.clone();
                for attr in self.source_table_columns(tables) {
                    if self.phi.is_mapped(&attr) {
                        needed.insert(attr);
                    }
                }
                let chains = match self.candidate_chains(&needed) {
                    Some(chains) => chains,
                    None if self.config.relax_delete_coverage && pred_only != needed => {
                        // Widened space: cover the predicate alone and let
                        // the table-list hole and bounded testing decide
                        // which images actually need deleting.
                        self.candidate_chains(&pred_only)?
                    }
                    None => return None,
                };
                let table_lists = self.delete_table_lists(&chains);
                let join_hole = self.sketch.add_hole(HoleDomain::Join(chains));
                let tables_hole = self.sketch.add_hole(HoleDomain::TableList(table_lists));
                let function = self.current_function.clone();
                self.sketch.attach_hole(&function, join_hole);
                self.sketch.attach_hole(&function, tables_hole);
                Some(UpdateSketch::Delete {
                    tables: tables_hole,
                    join: join_hole,
                    pred: self.rewrite_pred(pred)?,
                })
            }
            Update::UpdateAttr {
                pred, attr, value, ..
            } => {
                let mut needed = BTreeSet::new();
                Self::pred_needed_attrs(pred, &mut needed);
                needed.insert(attr.clone());
                let chains = self.candidate_chains(&needed)?;
                let join_hole = self.sketch.add_hole(HoleDomain::Join(chains));
                self.sketch
                    .attach_hole(&self.current_function.clone(), join_hole);
                Some(UpdateSketch::UpdateAttr {
                    join: join_hole,
                    pred: self.rewrite_pred(pred)?,
                    attr: self.attr_slot(attr)?,
                    value: value.clone(),
                })
            }
        }
    }

    /// All source columns of the listed source tables. The value
    /// correspondence is keyed by source attributes, so the columns are
    /// recovered from the correspondence itself (the source schema is not
    /// threaded through sketch generation).
    fn source_table_columns(&self, tables: &[TableName]) -> Vec<QualifiedAttr> {
        self.phi
            .iter()
            .filter(|(attr, _)| tables.contains(&attr.table))
            .map(|(attr, _)| attr.clone())
            .collect()
    }

    /// The domain of a delete statement's table-list hole: non-empty subsets
    /// of the candidate chains' tables (the `TabLists` function of Figure 8,
    /// applied to the union of candidate chains as in the paper's example).
    fn delete_table_lists(&self, chains: &[dbir::ast::JoinChain]) -> Vec<Vec<TableName>> {
        let mut union: BTreeSet<TableName> = BTreeSet::new();
        for chain in chains {
            union.extend(chain.tables());
        }
        let union: Vec<TableName> = union.into_iter().collect();
        let mut lists: Vec<Vec<TableName>> = Vec::new();
        if union.len() <= self.config.max_delete_powerset_tables {
            // Full power set (minus the empty set).
            for mask in 1u32..(1u32 << union.len()) {
                let subset: Vec<TableName> = union
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| *t)
                    .collect();
                lists.push(subset);
            }
        } else {
            // Singletons, pairs, and each candidate chain's full table set.
            for (i, a) in union.iter().enumerate() {
                lists.push(vec![*a]);
                for b in union.iter().skip(i + 1) {
                    lists.push(vec![*a, *b]);
                }
            }
            for chain in chains {
                let mut tables = chain.tables();
                tables.sort();
                tables.dedup();
                if !lists.contains(&tables) {
                    lists.push(tables);
                }
            }
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value_corr::{VcConfig, VcEnumerator};
    use dbir::parser::parse_program;
    use dbir::Schema;

    fn motivating() -> (Schema, Schema, Program) {
        let source_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            update deleteTA(id: int)
                DELETE TA FROM TA WHERE TaId = id;
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &source_schema,
        )
        .unwrap();
        (source_schema, target_schema, program)
    }

    #[test]
    fn motivating_example_sketch_has_expected_shape() {
        let (source_schema, target_schema, program) = motivating();
        let mut vc = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = vc.next_correspondence().unwrap();
        let sketch = generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default())
            .expect("sketch exists for the first correspondence");
        // One hole per insert (2), two per delete (2x2), one per query (2).
        assert_eq!(sketch.functions.len(), 6);
        assert_eq!(sketch.holes.len(), 8);
        // The search space is large (the paper reports 164,025 completions;
        // our chain enumeration finds slightly more chains, so the count is
        // at least that).
        assert!(sketch.completion_count() >= 164_025);
        // Every function has at least one hole.
        for function in &program.functions {
            assert!(
                !sketch.holes_in_function(&function.name).is_empty(),
                "function {} should contain holes",
                function.name
            );
        }
    }

    #[test]
    fn unmapped_projection_attr_fails_generation() {
        let (source_schema, target_schema, program) = motivating();
        let _ = source_schema;
        // An empty correspondence cannot express the program.
        let phi = ValueCorrespondence::new();
        assert!(
            generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).is_none()
        );
    }

    #[test]
    fn identity_correspondence_yields_identity_capable_sketch() {
        let schema = Schema::parse("User(uid: int, name: string)").unwrap();
        let program = parse_program(
            r#"
            update addUser(uid: int, name: string)
                INSERT INTO User VALUES (uid: uid, name: name);
            query getUser(uid: int)
                SELECT name FROM User WHERE uid = uid;
            "#,
            &schema,
        )
        .unwrap();
        let mut phi = ValueCorrespondence::new();
        for attr in schema.all_attrs() {
            phi.add(attr.clone(), attr);
        }
        let sketch = generate_sketch(&program, &phi, &schema, &SketchGenConfig::default()).unwrap();
        // Identity schema: single-table chains only, so exactly one
        // completion, which must be the original program.
        assert_eq!(sketch.completion_count(), 1);
        let assignment = vec![0; sketch.holes.len()];
        let instantiated = sketch.instantiate(&assignment).unwrap();
        assert_eq!(instantiated.functions.len(), 2);
        assert!(instantiated.validate(&schema).is_ok());
    }

    #[test]
    fn relaxed_delete_coverage_recovers_from_unreachable_images() {
        // `T.note` is mapped into the disconnected table `Audit`, so the
        // delete's full needed set {T.id, T.note} has no covering chain and
        // generation fails. The widened-space gate retries with the
        // predicate attribute alone.
        let source_schema = Schema::parse("T(id: int, note: string)").unwrap();
        let target_schema = Schema::parse("T(id: int)\nAudit(aid: int, note: string)").unwrap();
        let program = parse_program(
            "update del(id: int) DELETE T FROM T WHERE id = id;",
            &source_schema,
        )
        .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(QualifiedAttr::new("T", "id"), QualifiedAttr::new("T", "id"));
        phi.add(
            QualifiedAttr::new("T", "note"),
            QualifiedAttr::new("Audit", "note"),
        );
        assert!(
            generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).is_none()
        );
        let relaxed = SketchGenConfig {
            relax_delete_coverage: true,
            ..SketchGenConfig::default()
        };
        let sketch = generate_sketch(&program, &phi, &target_schema, &relaxed)
            .expect("predicate-only coverage succeeds");
        assert!(sketch.completion_count() >= 1);
    }

    #[test]
    fn delete_table_lists_cover_power_set_for_small_unions() {
        let (source_schema, target_schema, program) = motivating();
        let mut vc = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = vc.next_correspondence().unwrap();
        let sketch =
            generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
        // The deleteInstructor table-list hole ranges over the non-empty
        // subsets of the union of candidate-chain tables (4 tables -> 15).
        let table_list_sizes: Vec<usize> = sketch
            .holes
            .iter()
            .filter_map(|h| match &h.domain {
                HoleDomain::TableList(lists) => Some(lists.len()),
                _ => None,
            })
            .collect();
        assert_eq!(table_list_sizes, vec![15, 15]);
    }
}
