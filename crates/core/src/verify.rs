//! Equivalence checking and minimum-failing-input generation.
//!
//! The paper uses bounded testing to find minimum failing inputs and the
//! Mediator verifier for the final equivalence proof. Mediator is a
//! full-blown POPL'18 system for inferring bisimulation invariants; this
//! reproduction substitutes a deeper bounded-testing pass (see DESIGN.md),
//! which preserves the role verification plays in the synthesis loop: it is
//! the last, most expensive check, and its cost is reported separately from
//! synthesis time.

use dbir::equiv::{compare_programs, EquivalenceReport, TestConfig};
use dbir::{InvocationSequence, Program, Schema};

/// The result of checking a candidate program against the source program.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// No failing input was found within the bound.
    Equivalent {
        /// Number of invocation sequences executed.
        sequences_tested: usize,
    },
    /// A minimum failing input was found.
    NotEquivalent {
        /// The shortest distinguishing invocation sequence found.
        minimum_failing_input: InvocationSequence,
        /// Number of invocation sequences executed before finding it.
        sequences_tested: usize,
    },
}

impl CheckOutcome {
    /// Returns `true` if the candidate passed the check.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CheckOutcome::Equivalent { .. })
    }

    /// The number of invocation sequences executed.
    pub fn sequences_tested(&self) -> usize {
        match self {
            CheckOutcome::Equivalent { sequences_tested }
            | CheckOutcome::NotEquivalent {
                sequences_tested, ..
            } => *sequences_tested,
        }
    }
}

/// Checks a candidate target program against the source program using
/// bounded testing with the given configuration, returning a minimum
/// failing input when the programs disagree.
pub fn check_candidate(
    source: &Program,
    source_schema: &Schema,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> CheckOutcome {
    let EquivalenceReport {
        equivalent,
        counterexample,
        sequences_tested,
    } = compare_programs(source, source_schema, candidate, target_schema, config);
    if equivalent {
        CheckOutcome::Equivalent { sequences_tested }
    } else {
        CheckOutcome::NotEquivalent {
            minimum_failing_input: counterexample
                .expect("non-equivalent report carries a counterexample"),
            sequences_tested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::parser::parse_program;

    #[test]
    fn identical_programs_are_equivalent() {
        let schema = Schema::parse("T(a: int, b: string)").unwrap();
        let program = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        let outcome = check_candidate(&program, &schema, &program, &schema, &TestConfig::default());
        assert!(outcome.is_equivalent());
        assert!(outcome.sequences_tested() > 0);
    }

    #[test]
    fn differing_programs_produce_minimum_failing_input() {
        let schema = Schema::parse("T(a: int, b: string, c: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string, c: string)
                INSERT INTO T VALUES (a: a, b: b, c: c);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        let candidate = parse_program(
            r#"
            update add(a: int, b: string, c: string)
                INSERT INTO T VALUES (a: a, b: b, c: c);
            query get(a: int)
                SELECT c FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        match check_candidate(
            &source,
            &schema,
            &candidate,
            &schema,
            &TestConfig::default(),
        ) {
            CheckOutcome::NotEquivalent {
                minimum_failing_input,
                ..
            } => {
                assert_eq!(minimum_failing_input.updates.len(), 1);
                assert_eq!(minimum_failing_input.query.function, "get");
            }
            CheckOutcome::Equivalent { .. } => panic!("programs differ"),
        }
    }
}
