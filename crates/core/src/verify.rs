//! Equivalence checking and minimum-failing-input generation.
//!
//! The paper uses bounded testing to find minimum failing inputs and the
//! Mediator verifier for the final equivalence proof. Mediator is a
//! full-blown POPL'18 system for inferring bisimulation invariants; this
//! reproduction substitutes a deeper bounded-testing pass (see DESIGN.md),
//! which preserves the role verification plays in the synthesis loop: it is
//! the last, most expensive check, and its cost is reported separately from
//! synthesis time.

use dbir::equiv::{
    compare_with_oracle_profiled, CheckProfile, EquivalenceReport, PrefixCache, SourceOracle,
    TestConfig,
};
use dbir::{InvocationSequence, Program, Schema};
use parpool::CancelToken;

/// The result of checking a candidate program against the source program.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// No failing input was found within the bound.
    Equivalent {
        /// Number of invocation sequences executed.
        sequences_tested: usize,
        /// `true` if every sequence within the depth bound was enumerated.
        /// `false` means the check stopped at
        /// [`TestConfig::max_sequences`](dbir::equiv::TestConfig) and the
        /// verdict is optimistic, not evidence of bounded equivalence.
        bound_exhausted: bool,
    },
    /// A minimum failing input was found.
    NotEquivalent {
        /// The shortest distinguishing invocation sequence found.
        minimum_failing_input: InvocationSequence,
        /// Number of invocation sequences executed before finding it.
        sequences_tested: usize,
    },
    /// The check was interrupted by the caller's [`CancelToken`] before
    /// reaching a verdict. Carries no evidence either way.
    Cancelled {
        /// Number of invocation sequences executed before the interruption.
        sequences_tested: usize,
    },
}

impl CheckOutcome {
    /// Returns `true` if the candidate passed the check.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CheckOutcome::Equivalent { .. })
    }

    /// The number of invocation sequences executed.
    pub fn sequences_tested(&self) -> usize {
        match self {
            CheckOutcome::Equivalent {
                sequences_tested, ..
            }
            | CheckOutcome::NotEquivalent {
                sequences_tested, ..
            }
            | CheckOutcome::Cancelled { sequences_tested } => *sequences_tested,
        }
    }

    /// Returns `true` if the check accepted the candidate *without*
    /// enumerating the whole bound (its verdict is optimistic).
    pub fn is_truncated(&self) -> bool {
        matches!(
            self,
            CheckOutcome::Equivalent {
                bound_exhausted: false,
                ..
            }
        )
    }
}

/// Checks a candidate target program against the source program using
/// bounded testing with the given configuration, returning a minimum
/// failing input when the programs disagree.
///
/// Builds a throwaway [`SourceOracle`] internally; callers checking many
/// candidates against one source should use
/// [`check_candidate_with_oracle`] so the source side is interpreted once
/// per sequence across the whole run.
pub fn check_candidate(
    source: &Program,
    source_schema: &Schema,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> CheckOutcome {
    let oracle = SourceOracle::new(source, source_schema);
    check_candidate_with_oracle(&oracle, candidate, target_schema, config)
}

/// Like [`check_candidate`], but reuses (and fills) a memoized source
/// oracle shared across the candidates — and worker threads — of a
/// synthesis run.
pub fn check_candidate_with_oracle(
    oracle: &SourceOracle<'_>,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> CheckOutcome {
    check_candidate_cancel(oracle, candidate, target_schema, config, None)
}

/// Like [`check_candidate_with_oracle`], but polls `cancel` inside the
/// bounded-testing walk and returns [`CheckOutcome::Cancelled`] when the
/// token fires mid-check. With `cancel` absent the behaviour is identical.
pub fn check_candidate_cancel(
    oracle: &SourceOracle<'_>,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
    cancel: Option<&CancelToken>,
) -> CheckOutcome {
    check_candidate_profiled(oracle, candidate, target_schema, config, cancel, None)
}

/// Like [`check_candidate_cancel`], but additionally fills `profile` with
/// the check's per-phase accounting (plan compilation, DFS walk, snapshot
/// copying) when one is supplied. With `profile` absent the behaviour and
/// cost are identical.
pub fn check_candidate_profiled(
    oracle: &SourceOracle<'_>,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
    cancel: Option<&CancelToken>,
    profile: Option<&mut CheckProfile>,
) -> CheckOutcome {
    check_candidate_cached(
        oracle,
        candidate,
        target_schema,
        config,
        cancel,
        profile,
        None,
    )
}

/// Like [`check_candidate_profiled`], but additionally shares executed
/// update-prefix states across candidates through `cache` when one is
/// supplied. The verdict and every reported count are identical with or
/// without the cache — only which update executions are skipped changes —
/// so passing the same cache to the bounded-testing and verification
/// checks of one sketch is sound and lets verification reuse the prefixes
/// testing already executed.
#[allow(clippy::too_many_arguments)]
pub fn check_candidate_cached(
    oracle: &SourceOracle<'_>,
    candidate: &Program,
    target_schema: &Schema,
    config: &TestConfig,
    cancel: Option<&CancelToken>,
    profile: Option<&mut CheckProfile>,
    cache: Option<&mut PrefixCache>,
) -> CheckOutcome {
    let EquivalenceReport {
        equivalent,
        counterexample,
        sequences_tested,
        bound_exhausted,
        cancelled,
    } = compare_with_oracle_profiled(
        oracle,
        candidate,
        target_schema,
        config,
        cancel,
        profile,
        cache,
    );
    if cancelled {
        CheckOutcome::Cancelled { sequences_tested }
    } else if equivalent {
        CheckOutcome::Equivalent {
            sequences_tested,
            bound_exhausted,
        }
    } else {
        CheckOutcome::NotEquivalent {
            minimum_failing_input: counterexample
                .expect("non-equivalent report carries a counterexample"),
            sequences_tested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::parser::parse_program;

    #[test]
    fn identical_programs_are_equivalent() {
        let schema = Schema::parse("T(a: int, b: string)").unwrap();
        let program = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        let outcome = check_candidate(&program, &schema, &program, &schema, &TestConfig::default());
        assert!(outcome.is_equivalent());
        assert!(outcome.sequences_tested() > 0);
        assert!(!outcome.is_truncated());
    }

    #[test]
    fn capped_checks_report_truncation() {
        let schema = Schema::parse("T(a: int, b: string)").unwrap();
        let program = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        let capped = TestConfig {
            max_sequences: Some(1),
            ..TestConfig::default()
        };
        let outcome = check_candidate(&program, &schema, &program, &schema, &capped);
        assert!(outcome.is_equivalent());
        assert!(
            outcome.is_truncated(),
            "a capped pass must be flagged as optimistic"
        );
        match outcome {
            CheckOutcome::Equivalent {
                bound_exhausted, ..
            } => assert!(!bound_exhausted),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn differing_programs_produce_minimum_failing_input() {
        let schema = Schema::parse("T(a: int, b: string, c: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string, c: string)
                INSERT INTO T VALUES (a: a, b: b, c: c);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        let candidate = parse_program(
            r#"
            update add(a: int, b: string, c: string)
                INSERT INTO T VALUES (a: a, b: b, c: c);
            query get(a: int)
                SELECT c FROM T WHERE a = a;
            "#,
            &schema,
        )
        .unwrap();
        match check_candidate(
            &source,
            &schema,
            &candidate,
            &schema,
            &TestConfig::default(),
        ) {
            CheckOutcome::NotEquivalent {
                minimum_failing_input,
                ..
            } => {
                assert_eq!(minimum_failing_input.updates.len(), 1);
                assert_eq!(minimum_failing_input.query.function, "get");
            }
            other => panic!("programs differ, got {other:?}"),
        }
    }
}
