//! Observability for synthesis runs: typed progress events and the
//! [`SynthesisObserver`] trait.
//!
//! A [`crate::Synthesizer`] (and the `Refactoring` pipeline facade built on
//! top of it) can be given an observer that receives a [`SynthesisEvent`]
//! for every step of the paper's pipeline — correspondence enumerated,
//! sketch generated, candidate checked, minimum failing input found, search
//! space exhausted — where previously only aggregate statistics came out.
//!
//! ## Determinism contract
//!
//! The main stream ([`SynthesisObserver::event`]) is delivered **in
//! enumeration order**, even under parallel CEGIS: worker threads record
//! their completion's events into private buffers, and the synthesizer's
//! index-ordered merge replays the buffers of exactly the correspondences
//! the sequential search would have explored, in exactly that order.
//! Buffers of losing speculations are discarded with their statistics. The
//! event sequence for a fixed input is therefore byte-identical at any
//! thread count — a property the test-suite asserts by comparing rendered
//! streams at one and four threads.
//!
//! Scheduling-dependent facts — which correspondences were speculatively
//! dispatched ahead of their turn, and which of those were cancelled when a
//! lower-index correspondence won — are *real* and worth watching (they are
//! the parallel speedup), but they cannot be deterministic. They arrive on
//! the separate [`SynthesisObserver::speculation`] side channel, which
//! defaults to a no-op.

use std::fmt;
use std::sync::Mutex;

use parpool::CancelReason;

/// One step of a synthesis run.
///
/// Events carry `index`, the position of the owning value correspondence in
/// enumeration order (0-based) — the same order [`crate::VcEnumerator`]
/// produces and the same order statistics are absorbed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisEvent {
    /// The enumerator produced the `index`-th candidate value
    /// correspondence and the search committed to exploring it.
    CorrespondenceEnumerated {
        /// Enumeration position (0-based).
        index: usize,
        /// Number of source attributes the correspondence maps.
        mapped_attrs: usize,
    },
    /// The `index`-th correspondence was *submitted* to the speculative
    /// fan-out ahead of its enumeration turn. Side channel only — batch
    /// composition depends on the thread budget, and whether a worker
    /// actually started the work before the batch resolved is
    /// scheduling-dependent (under a thread budget of one the submission
    /// may never run at all).
    CorrespondenceSpeculated {
        /// Enumeration position (0-based).
        index: usize,
    },
    /// A speculative submission was discarded because a lower-index
    /// correspondence produced the winning program — its results (whether
    /// computed, in flight, or never started) can no longer be selected.
    /// Side channel only — which submissions lose is scheduling-dependent.
    CorrespondenceCancelled {
        /// Enumeration position (0-based).
        index: usize,
    },
    /// A program sketch was generated from the `index`-th correspondence.
    SketchGenerated {
        /// Enumeration position of the owning correspondence.
        index: usize,
        /// Number of holes in the sketch.
        holes: usize,
        /// Size of the completion space (product of hole domains).
        completions: u128,
    },
    /// One candidate instantiation of the sketch was checked against the
    /// source program by bounded testing.
    CandidateChecked {
        /// Enumeration position of the owning correspondence.
        index: usize,
        /// 1-based candidate number within this sketch.
        iteration: usize,
        /// Whether the candidate passed the testing pass.
        accepted: bool,
        /// Invocation sequences executed by the testing pass.
        sequences_tested: usize,
    },
    /// While the `iteration`-th candidate was in bounded testing, the next
    /// model was speculatively solved under a guard assumption that blocks
    /// the candidate. After the candidate failed and its minimum-failing-
    /// input clause was learned, the speculative model was either *adopted*
    /// as the next candidate (it already satisfies the learned clause — no
    /// fresh solver call needed) or discarded. Main stream, not side
    /// channel: speculation always runs (the fork-join primitive degrades
    /// to sequential execution when the thread budget is exhausted), so
    /// both the probe and the adoption decision are byte-identical at any
    /// thread count.
    CandidateSpeculated {
        /// Enumeration position of the owning correspondence.
        index: usize,
        /// 1-based candidate number whose test the probe overlapped.
        iteration: usize,
        /// Whether the speculative model became the next candidate.
        adopted: bool,
    },
    /// Sketch generation produced no sketch for the `index`-th
    /// correspondence; the search moves on to the next one.
    SketchGenerationFailed {
        /// Enumeration position of the owning correspondence.
        index: usize,
    },
    /// A failing candidate produced a minimum failing input, from which a
    /// blocking clause was learned.
    MfiFound {
        /// Enumeration position of the owning correspondence.
        index: usize,
        /// 1-based candidate number the input distinguishes.
        iteration: usize,
        /// Number of update calls preceding the distinguishing query (the
        /// candidate cohort's "death depth").
        updates: usize,
        /// Name of the distinguishing query function.
        query: String,
        /// Number of holes blocked by the learned clause.
        blocked_holes: usize,
        /// Completions sharing the blocked hole assignment — the size of
        /// the candidate cohort the learned clause removes from the space
        /// (product of the domain sizes of the *unblocked* holes,
        /// saturating).
        pruned: u128,
        /// Blocked-hole counts per hole-domain kind
        /// ([`HoleDomain::kind`](crate::sketch::HoleDomain::kind) labels), in a
        /// fixed order with zero-count kinds omitted.
        domains: Vec<(&'static str, usize)>,
    },
    /// The sketch's completion space was exhausted (or its iteration budget
    /// ran out) without finding an equivalent program; the search moves on
    /// to the next correspondence.
    BoundExhausted {
        /// Enumeration position of the owning correspondence.
        index: usize,
        /// Candidates examined before giving up.
        iterations: usize,
        /// `true` when the SAT completion space was drained (every
        /// completion blocked by a learned clause); `false` when the
        /// per-sketch iteration budget ran out with models still
        /// available.
        space_exhausted: bool,
    },
    /// The winning candidate of the `index`-th correspondence passed the
    /// completion's checks; the run will finish after final verification.
    Solved {
        /// Enumeration position of the winning correspondence.
        index: usize,
        /// Candidates examined in the winning sketch.
        iterations: usize,
    },
    /// The correspondence enumerator ran dry: every correspondence the
    /// MaxSAT ranking can produce has been explored (or, with
    /// `infeasible`, the encoding was unsatisfiable from the start and no
    /// correspondence exists at all).
    FrontierDrained {
        /// Correspondences produced before the enumerator ran dry.
        produced: usize,
        /// `true` when the MaxSAT encoding was unsatisfiable at
        /// construction: some must-map attribute has no candidate target.
        infeasible: bool,
    },
    /// The `max_value_correspondences` budget stopped the search with
    /// lower-ranked correspondences still unexplored ("ranked out").
    FrontierBudgetReached {
        /// Correspondences explored before the budget ran out.
        explored: usize,
    },
    /// The run stopped early because its [`parpool::CancelToken`] fired.
    /// This is the only main-stream event whose position is *not*
    /// deterministic: a wall-clock deadline interrupts wherever the search
    /// happens to be.
    RunInterrupted {
        /// Whether the token fired by deadline or by explicit cancellation.
        reason: CancelReason,
    },
}

impl fmt::Display for SynthesisEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisEvent::CorrespondenceEnumerated {
                index,
                mapped_attrs,
            } => {
                write!(
                    f,
                    "correspondence[{index}] enumerated ({mapped_attrs} attrs mapped)"
                )
            }
            SynthesisEvent::CorrespondenceSpeculated { index } => {
                write!(f, "correspondence[{index}] speculated")
            }
            SynthesisEvent::CorrespondenceCancelled { index } => {
                write!(f, "correspondence[{index}] cancelled")
            }
            SynthesisEvent::SketchGenerated {
                index,
                holes,
                completions,
            } => {
                write!(
                    f,
                    "correspondence[{index}] sketch: {holes} holes, {completions} completions"
                )
            }
            SynthesisEvent::CandidateChecked {
                index,
                iteration,
                accepted,
                sequences_tested,
            } => write!(
                f,
                "correspondence[{index}] candidate {iteration}: {} ({sequences_tested} sequences)",
                if *accepted { "accepted" } else { "rejected" }
            ),
            SynthesisEvent::CandidateSpeculated {
                index,
                iteration,
                adopted,
            } => write!(
                f,
                "correspondence[{index}] candidate {iteration}: speculative model {}",
                if *adopted { "adopted" } else { "discarded" }
            ),
            SynthesisEvent::SketchGenerationFailed { index } => {
                write!(f, "correspondence[{index}] sketch generation failed")
            }
            SynthesisEvent::MfiFound {
                index,
                iteration,
                updates,
                query,
                blocked_holes,
                pruned,
                domains: _,
            } => write!(
                f,
                "correspondence[{index}] candidate {iteration}: MFI {updates} updates + {query}, \
                 blocking {blocked_holes} holes ({pruned} completions)"
            ),
            SynthesisEvent::BoundExhausted {
                index,
                iterations,
                space_exhausted,
            } => {
                write!(
                    f,
                    "correspondence[{index}] exhausted after {iterations} candidates ({})",
                    if *space_exhausted {
                        "completion space drained"
                    } else {
                        "iteration budget"
                    }
                )
            }
            SynthesisEvent::Solved { index, iterations } => {
                write!(
                    f,
                    "correspondence[{index}] solved after {iterations} candidates"
                )
            }
            SynthesisEvent::FrontierDrained {
                produced,
                infeasible,
            } => {
                if *infeasible {
                    write!(
                        f,
                        "correspondence frontier infeasible (MaxSAT unsat: no correspondence \
                         maps every required attribute)"
                    )
                } else {
                    write!(
                        f,
                        "correspondence frontier drained after {produced} correspondences"
                    )
                }
            }
            SynthesisEvent::FrontierBudgetReached { explored } => {
                write!(
                    f,
                    "correspondence budget reached after {explored} correspondences \
                     (lower-ranked tail unexplored)"
                )
            }
            SynthesisEvent::RunInterrupted { reason } => write!(
                f,
                "run interrupted ({})",
                match reason {
                    CancelReason::Cancelled => "cancelled",
                    CancelReason::DeadlineExceeded => "deadline exceeded",
                }
            ),
        }
    }
}

/// Receives [`SynthesisEvent`]s from a running synthesis.
///
/// Implementations must be cheap and non-blocking: events fire from the
/// synthesizer's merge loop, so a slow observer slows the search down.
/// `Send + Sync` is required so one observer can be shared across runs (and
/// so the facade can hold it in an `Arc`); the synthesizer itself only
/// calls it from the thread that owns the run.
pub trait SynthesisObserver: Send + Sync {
    /// The deterministic main stream: called in enumeration order (see the
    /// module documentation for the exact contract).
    fn event(&self, event: &SynthesisEvent);

    /// The scheduling-dependent side channel:
    /// [`SynthesisEvent::CorrespondenceSpeculated`] and
    /// [`SynthesisEvent::CorrespondenceCancelled`] notices from the
    /// parallel fan-out. Defaults to a no-op; override to watch the
    /// speculation machinery at work.
    fn speculation(&self, event: &SynthesisEvent) {
        let _ = event;
    }
}

/// A ready-made observer that records the main event stream in memory.
///
/// Useful for tests (the determinism suite compares rendered logs across
/// thread counts) and for tools that want the full trace after the fact.
///
/// The log is poison-safe: if a thread panics while holding the buffer
/// lock, later readers recover the events recorded so far instead of
/// panicking in turn — the diagnostic record that explains a crash must
/// survive the crash.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<SynthesisEvent>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Locks the buffer, recovering it from a panicked thread if needed.
    fn buffer(&self) -> std::sync::MutexGuard<'_, Vec<SynthesisEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The events recorded so far, in delivery order.
    pub fn events(&self) -> Vec<SynthesisEvent> {
        self.buffer().clone()
    }

    /// Renders the recorded stream as one line per event — a stable textual
    /// form for byte-for-byte comparisons.
    pub fn render(&self) -> String {
        let events = self.buffer();
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

impl SynthesisObserver for EventLog {
    fn event(&self, event: &SynthesisEvent) {
        self.buffer().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_one_line_each() {
        let log = EventLog::new();
        log.event(&SynthesisEvent::CorrespondenceEnumerated {
            index: 0,
            mapped_attrs: 3,
        });
        log.event(&SynthesisEvent::Solved {
            index: 0,
            iterations: 2,
        });
        let rendered = log.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("correspondence[0] enumerated (3 attrs mapped)"));
        assert!(rendered.contains("solved after 2 candidates"));
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn a_poisoned_log_still_yields_its_events() {
        let log = std::sync::Arc::new(EventLog::new());
        log.event(&SynthesisEvent::Solved {
            index: 0,
            iterations: 2,
        });
        // Poison the buffer lock: a consumer panics while holding it.
        let poisoner = std::sync::Arc::clone(&log);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.events.lock().unwrap();
            panic!("consumer panicked while holding the log lock");
        })
        .join();
        assert!(result.is_err(), "the consumer thread must have panicked");
        // The record survives, and the log keeps accepting events.
        assert_eq!(log.events().len(), 1);
        assert!(log.render().contains("solved after 2 candidates"));
        log.event(&SynthesisEvent::BoundExhausted {
            index: 0,
            iterations: 3,
            space_exhausted: true,
        });
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn speculation_side_channel_defaults_to_noop() {
        struct CountOnly(std::sync::atomic::AtomicUsize);
        impl SynthesisObserver for CountOnly {
            fn event(&self, _event: &SynthesisEvent) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let observer = CountOnly(std::sync::atomic::AtomicUsize::new(0));
        observer.speculation(&SynthesisEvent::CorrespondenceSpeculated { index: 1 });
        assert_eq!(observer.0.load(std::sync::atomic::Ordering::Relaxed), 0);
    }
}
