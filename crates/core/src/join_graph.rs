//! Join correspondences via Steiner-tree enumeration over the target
//! schema's join graph (Section 5 of the paper, "Sketch generation").
//!
//! Nodes of the join graph are the tables of the target schema; an edge
//! connects two tables that can be equi-joined (shared column name or
//! declared foreign key). Given the set of target attributes a statement
//! must reach, the sketch generator needs every join chain that *covers*
//! the tables containing those attributes; such chains correspond to
//! Steiner trees spanning the terminal tables.
//!
//! Enumeration is bounded: trees may use at most `max_extra` non-terminal
//! (Steiner) tables. For each admissible table subset one canonical
//! spanning chain is produced (tables are connected greedily on the first
//! available join attribute pair), which is sufficient for the benchmark
//! schemas where any two tables share at most one join column.

use std::collections::BTreeSet;

use dbir::ast::JoinChain;
use dbir::schema::{QualifiedAttr, Schema, TableName};

/// The join graph of a target schema.
#[derive(Debug)]
pub struct JoinGraph<'a> {
    schema: &'a Schema,
    tables: Vec<TableName>,
}

impl<'a> JoinGraph<'a> {
    /// Builds the join graph of `schema`.
    pub fn new(schema: &'a Schema) -> JoinGraph<'a> {
        JoinGraph {
            schema,
            tables: schema.tables().iter().map(|t| t.name).collect(),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// Returns `true` if the two tables are adjacent in the join graph.
    pub fn adjacent(&self, a: &TableName, b: &TableName) -> bool {
        self.schema.joinable(a, b)
    }

    /// Returns `true` if `tables` induces a connected subgraph.
    pub fn is_connected(&self, tables: &BTreeSet<TableName>) -> bool {
        let Some(start) = tables.iter().next() else {
            return true;
        };
        let mut visited: BTreeSet<&TableName> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(table) = stack.pop() {
            if !visited.insert(table) {
                continue;
            }
            for other in tables {
                if !visited.contains(other) && self.adjacent(table, other) {
                    stack.push(other);
                }
            }
        }
        visited.len() == tables.len()
    }

    /// Partitions a set of tables into the connected components they belong
    /// to when considering the *full* join graph (i.e. two required tables
    /// are in the same component if some chain through other tables links
    /// them).
    pub fn components(&self, tables: &BTreeSet<TableName>) -> Vec<BTreeSet<TableName>> {
        let mut remaining: BTreeSet<TableName> = tables.clone();
        let mut components = Vec::new();
        while let Some(seed) = remaining.iter().next().cloned() {
            // Flood fill over the whole graph starting from `seed`.
            let mut reachable: BTreeSet<TableName> = BTreeSet::new();
            let mut stack = vec![seed];
            while let Some(table) = stack.pop() {
                if !reachable.insert(table) {
                    continue;
                }
                for other in &self.tables {
                    if !reachable.contains(other) && self.adjacent(&table, other) {
                        stack.push(*other);
                    }
                }
            }
            let component: BTreeSet<TableName> = remaining
                .iter()
                .filter(|t| reachable.contains(*t))
                .cloned()
                .collect();
            for table in &component {
                remaining.remove(table);
            }
            components.push(component);
        }
        components
    }

    /// Enumerates join chains that span (at least) the given terminal
    /// tables, using at most `max_extra` additional Steiner tables.
    ///
    /// Chains are returned in increasing size; each admissible table subset
    /// contributes one canonical chain. Returns an empty vector if the
    /// terminals cannot be connected within the bound.
    pub fn covering_chains(
        &self,
        terminals: &BTreeSet<TableName>,
        max_extra: usize,
    ) -> Vec<JoinChain> {
        if terminals.is_empty() {
            return Vec::new();
        }
        let mut chains = Vec::new();
        let mut seen_subsets: BTreeSet<Vec<TableName>> = BTreeSet::new();
        let extras: Vec<TableName> = self
            .tables
            .iter()
            .filter(|t| !terminals.contains(*t))
            .cloned()
            .collect();

        // Enumerate subsets of extra tables of size 0..=max_extra.
        let mut extra_choices: Vec<Vec<TableName>> = vec![Vec::new()];
        for size in 1..=max_extra.min(extras.len()) {
            extra_choices.extend(combinations(&extras, size));
        }
        extra_choices.sort_by_key(Vec::len);

        for extra in extra_choices {
            let mut subset: BTreeSet<TableName> = terminals.clone();
            subset.extend(extra.iter().cloned());
            let key: Vec<TableName> = subset.iter().cloned().collect();
            if seen_subsets.contains(&key) {
                continue;
            }
            seen_subsets.insert(key);
            if !self.is_connected(&subset) {
                continue;
            }
            if let Some(chain) = self.spanning_chain(&subset) {
                chains.push(chain);
            }
        }
        chains
    }

    /// Enumerates *sets* of join chains that together cover the terminal
    /// tables — one chain per connected component. Used for insert
    /// statements, where writing two unconnected target tables is expressed
    /// as a sequence of inserts.
    ///
    /// Each alternative is a vector of chains; when all terminals are
    /// connected this degenerates to single-chain alternatives.
    pub fn covering_chain_sets(
        &self,
        terminals: &BTreeSet<TableName>,
        max_extra: usize,
    ) -> Vec<Vec<JoinChain>> {
        let components = self.components(terminals);
        if components.is_empty() {
            return Vec::new();
        }
        if components.len() == 1 {
            return self
                .covering_chains(terminals, max_extra)
                .into_iter()
                .map(|c| vec![c])
                .collect();
        }
        // Cartesian product of per-component chains.
        let per_component: Vec<Vec<JoinChain>> = components
            .iter()
            .map(|component| self.covering_chains(component, max_extra))
            .collect();
        if per_component.iter().any(Vec::is_empty) {
            return Vec::new();
        }
        let mut alternatives: Vec<Vec<JoinChain>> = vec![Vec::new()];
        for chains in per_component {
            let mut next = Vec::new();
            for alternative in &alternatives {
                for chain in &chains {
                    let mut extended = alternative.clone();
                    extended.push(chain.clone());
                    next.push(extended);
                }
            }
            alternatives = next;
        }
        alternatives
    }

    /// Builds one canonical spanning join chain over a connected table set.
    fn spanning_chain(&self, tables: &BTreeSet<TableName>) -> Option<JoinChain> {
        let mut ordered: Vec<TableName> = tables.iter().cloned().collect();
        // Deterministic order: keep BTreeSet order but start from the table
        // with the most connections inside the subset so the greedy chain
        // construction succeeds whenever the subset is connected.
        ordered.sort_by_key(|t| {
            std::cmp::Reverse(
                tables
                    .iter()
                    .filter(|other| self.adjacent(t, other))
                    .count(),
            )
        });
        let mut chain = JoinChain::Table(ordered[0]);
        let mut in_chain: BTreeSet<TableName> = [ordered[0]].into_iter().collect();
        let mut remaining: Vec<TableName> = ordered.iter().skip(1).cloned().collect();
        while !remaining.is_empty() {
            // Find the next table adjacent to something already in the chain.
            let position = remaining
                .iter()
                .position(|candidate| in_chain.iter().any(|t| self.adjacent(t, candidate)))?;
            let table = remaining.remove(position);
            let (left_attr, right_attr) = in_chain
                .iter()
                .find_map(|t| self.schema.join_attrs(t, &table).into_iter().next())
                .expect("adjacency implies a join attribute pair");
            chain = chain.join(JoinChain::Table(table), left_attr, right_attr);
            in_chain.insert(table);
        }
        Some(chain)
    }

    /// The terminal tables for a set of target attributes.
    pub fn tables_of(attrs: &BTreeSet<QualifiedAttr>) -> BTreeSet<TableName> {
        attrs.iter().map(|a| a.table).collect()
    }
}

/// All `size`-element combinations of `items` (order preserved).
fn combinations<T: Clone>(items: &[T], size: usize) -> Vec<Vec<T>> {
    if size == 0 {
        return vec![Vec::new()];
    }
    if items.len() < size {
        return Vec::new();
    }
    let mut result = Vec::new();
    for (i, item) in items.iter().enumerate() {
        for mut rest in combinations(&items[i + 1..], size - 1) {
            let mut combo = vec![item.clone()];
            combo.append(&mut rest);
            result.push(combo);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_schema() -> Schema {
        Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap()
    }

    fn names(set: &[&str]) -> BTreeSet<TableName> {
        set.iter().map(|s| TableName::new(*s)).collect()
    }

    #[test]
    fn adjacency_follows_shared_columns() {
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        assert!(graph.adjacent(&"Picture".into(), &"Instructor".into()));
        assert!(graph.adjacent(&"Picture".into(), &"TA".into()));
        assert!(graph.adjacent(&"Class".into(), &"Instructor".into()));
        assert!(!graph.adjacent(&"Picture".into(), &"Class".into()));
    }

    #[test]
    fn connectivity_checks() {
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        assert!(graph.is_connected(&names(&["Picture", "Instructor"])));
        assert!(graph.is_connected(&names(&["Picture", "Instructor", "Class"])));
        assert!(!graph.is_connected(&names(&["Picture", "Class"])));
        assert!(graph.is_connected(&BTreeSet::new()));
    }

    #[test]
    fn covering_chains_match_motivating_example() {
        // The sketch in Figure 3 offers chains covering Picture and
        // Instructor: the direct join plus chains routed through TA and/or
        // Class (the paper lists three; our enumerator additionally finds
        // the Picture ⋈ Instructor ⋈ Class variant).
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        let terminals = names(&["Picture", "Instructor"]);
        let chains = graph.covering_chains(&terminals, 2);
        assert_eq!(chains.len(), 4);
        let sizes: Vec<usize> = chains.iter().map(JoinChain::len).collect();
        assert_eq!(sizes, vec![2, 3, 3, 4]);
        for chain in &chains {
            assert!(chain.contains_table(&"Picture".into()));
            assert!(chain.contains_table(&"Instructor".into()));
        }
    }

    #[test]
    fn covering_chains_respect_steiner_bound() {
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        let terminals = names(&["Picture", "Instructor"]);
        assert_eq!(graph.covering_chains(&terminals, 0).len(), 1);
        assert_eq!(graph.covering_chains(&terminals, 1).len(), 3);
    }

    #[test]
    fn unreachable_terminals_produce_no_chains() {
        let schema = Schema::parse("A(x: int)\nB(y: int)").unwrap();
        let graph = JoinGraph::new(&schema);
        let chains = graph.covering_chains(&names(&["A", "B"]), 2);
        assert!(chains.is_empty());
    }

    #[test]
    fn chain_sets_split_disconnected_terminals() {
        let schema = Schema::parse("A(x: int)\nB(y: int)").unwrap();
        let graph = JoinGraph::new(&schema);
        let sets = graph.covering_chain_sets(&names(&["A", "B"]), 2);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn chain_sets_degenerate_to_single_chains_when_connected() {
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        let sets = graph.covering_chain_sets(&names(&["Picture", "TA"]), 2);
        assert!(!sets.is_empty());
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn components_of_scattered_tables() {
        let schema = Schema::parse("A(x: int)\nB(x: int)\nC(y: int)\nD(z: int)").unwrap();
        let graph = JoinGraph::new(&schema);
        let comps = graph.components(&names(&["A", "B", "C"]));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn combinations_enumeration() {
        let items = vec![1, 2, 3, 4];
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 1).len(), 4);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
    }

    #[test]
    fn single_terminal_yields_single_table_chain() {
        let schema = target_schema();
        let graph = JoinGraph::new(&schema);
        let chains = graph.covering_chains(&names(&["Picture"]), 0);
        assert_eq!(chains, vec![JoinChain::table("Picture")]);
    }
}
