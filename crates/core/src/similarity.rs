//! Name-similarity heuristics used to rank value correspondences.
//!
//! The paper weights the soft clause for mapping attribute `a` to `a'` with
//! `sim(a, a') = α − Levenshtein(a, a')` (footnote 3, Section 4.2). We use
//! the same metric, computed case-insensitively and clamped to a minimum of
//! one so every mapping keeps a positive weight.

/// Computes the Levenshtein edit distance between two strings
/// (case-insensitive).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// The similarity weight `sim(a, a') = max(1, α − Levenshtein(a, a'))`.
///
/// Identical names (up to case) receive the full weight `α`; entirely
/// unrelated names still receive weight one so that mapping them remains
/// possible, just maximally de-prioritized.
pub fn similarity(a: &str, b: &str, alpha: u64) -> u64 {
    let distance = levenshtein(a, b) as u64;
    alpha.saturating_sub(distance).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("IPic", "ipic"), 0);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("IPic", "Pic"), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("InstId", "InstructorId"), ("TName", "Name"), ("x", "yz")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let words = ["InstId", "TaId", "PicId", "ClassId", "Name"];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }

    #[test]
    fn similarity_prefers_closer_names() {
        let alpha = 16;
        assert!(similarity("IPic", "Pic", alpha) > similarity("IPic", "TName", alpha));
        assert_eq!(similarity("IPic", "IPic", alpha), alpha);
        // Even hopeless matches keep a positive weight.
        assert_eq!(similarity("a", "completely-unrelated-name", 4), 1);
    }
}
