//! The top-level synthesis driver (Algorithm 1 of the paper).
//!
//! [`Synthesizer::synthesize`] lazily enumerates value correspondences,
//! generates a sketch for each and attempts to complete it; the first
//! completion that passes verification is returned. If the correspondence
//! space is exhausted (or the configured budget runs out) the result carries
//! no program, mirroring the paper's `⊥`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dbir::{Program, Schema};

use dbir::equiv::{CheckProfile, PrefixCache, SourceOracle};
use parpool::{CancelReason, CancelToken};

use crate::completion::{complete_sketch, BlockingStrategy, CompletionControls};
use crate::config::{SketchSolverKind, SynthesisConfig};
use crate::observe::{SynthesisEvent, SynthesisObserver};
use crate::sketch_gen::generate_sketch;
use crate::stats::SynthesisStats;
use crate::value_corr::{ValueCorrespondence, VcEnumerator};
use crate::verify::{check_candidate_cached, CheckOutcome};

/// Per-attempt phase accounting, buffered next to the attempt's events and
/// absorbed into [`SynthesisStats::phases`] only when the attempt is merged
/// on the winning trajectory — losing speculative attempts never
/// contaminate the breakdown.
#[derive(Debug, Default)]
struct AttemptProfile {
    sketch_generation: Duration,
    completion: Duration,
    check: CheckProfile,
}

/// How a synthesis run ended.
///
/// Distinguishing [`SynthesisOutcome::Timeout`] and
/// [`SynthesisOutcome::Cancelled`] from [`SynthesisOutcome::NoSolution`]
/// matters: a budget overrun says nothing about whether an equivalent
/// program exists, while `NoSolution` means the configured correspondence
/// space was genuinely exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisOutcome {
    /// An equivalent program was found and verified.
    Solved,
    /// The configured search space was exhausted without finding an
    /// equivalent program.
    NoSolution,
    /// The run's wall-clock deadline passed before the search finished.
    Timeout,
    /// The run's [`CancelToken`] was cancelled explicitly.
    Cancelled,
}

impl SynthesisOutcome {
    /// A stable lowercase name (`solved`, `no_solution`, `timeout`,
    /// `cancelled`) for machine-readable output.
    pub fn as_str(&self) -> &'static str {
        match self {
            SynthesisOutcome::Solved => "solved",
            SynthesisOutcome::NoSolution => "no_solution",
            SynthesisOutcome::Timeout => "timeout",
            SynthesisOutcome::Cancelled => "cancelled",
        }
    }
}

/// The result of a synthesis run: the migrated program (if one was found)
/// plus statistics matching the paper's evaluation columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The synthesized program over the target schema, or `None` if no
    /// equivalent program was found within the configured budget.
    pub program: Option<Program>,
    /// The value correspondence the synthesized program was derived from
    /// (`None` when synthesis failed). Downstream tooling uses it to derive
    /// a data-migration script alongside the migrated program.
    pub correspondence: Option<ValueCorrespondence>,
    /// How the run ended. [`SynthesisOutcome::Timeout`] and
    /// [`SynthesisOutcome::Cancelled`] results carry the partial statistics
    /// accumulated before the interruption.
    pub outcome: SynthesisOutcome,
    /// Statistics about the run.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// Returns `true` if a program was synthesized.
    pub fn succeeded(&self) -> bool {
        self.program.is_some()
    }
}

/// Synthesizes database programs for schema refactoring.
///
/// Beyond the configuration, a synthesizer can carry two optional
/// cross-cutting hooks, installed builder-style:
///
/// * [`Synthesizer::with_observer`] — a [`SynthesisObserver`] receiving
///   typed progress events in deterministic enumeration order;
/// * [`Synthesizer::with_cancel`] / [`Synthesizer::with_deadline`] — a
///   [`CancelToken`] polled throughout the pipeline (correspondence
///   fan-out, completion loop, bounded-testing walk), turning the blocking
///   [`Synthesizer::synthesize`] call into one that can be interrupted from
///   another thread or bounded by wall-clock time.
#[derive(Clone, Default)]
pub struct Synthesizer {
    config: SynthesisConfig,
    observer: Option<Arc<dyn SynthesisObserver>>,
    cancel: CancelToken,
    budget: Option<Duration>,
}

impl std::fmt::Debug for Synthesizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synthesizer")
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel)
            .field("budget", &self.budget)
            .finish()
    }
}

impl Synthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: SynthesisConfig) -> Synthesizer {
        Synthesizer {
            config,
            observer: None,
            cancel: CancelToken::new(),
            budget: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Installs an observer receiving [`SynthesisEvent`]s (see
    /// [`crate::observe`] for the determinism contract).
    pub fn with_observer(mut self, observer: Arc<dyn SynthesisObserver>) -> Synthesizer {
        self.observer = Some(observer);
        self
    }

    /// Installs a cancellation token. Clone the token before passing it in
    /// to keep a handle for cancelling the run from another thread.
    pub fn with_cancel(mut self, token: CancelToken) -> Synthesizer {
        self.cancel = token;
        self
    }

    /// Bounds each run by wall-clock time: a run exceeding `budget` stops
    /// at the next cancellation point and reports
    /// [`SynthesisOutcome::Timeout`].
    ///
    /// The clock starts when [`Synthesizer::synthesize`] is called — not
    /// when the builder is configured — and every run gets a fresh budget,
    /// so a synthesizer (or a clone of one) can be reused after a timeout.
    /// A budget composes with [`Synthesizer::with_cancel`]: each run polls
    /// a per-run deadline token *linked* to the installed one, so explicit
    /// cancellation still fires. To share one *absolute* deadline across
    /// runs, install [`CancelToken::with_deadline`] explicitly instead.
    pub fn with_deadline(mut self, budget: Duration) -> Synthesizer {
        self.budget = Some(budget);
        self
    }

    /// The installed cancellation token: cancel it (from any thread) to
    /// stop an in-flight [`Synthesizer::synthesize`] at its next polling
    /// point — with or without a [`Synthesizer::with_deadline`] budget.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Synthesizes a program over `target_schema` equivalent to `source`
    /// (over `source_schema`), following the paper's three-stage pipeline.
    ///
    /// Value correspondences are explored **speculatively in parallel**:
    /// they are pulled from the enumerator in batches (ramping up from one —
    /// so a run whose very first correspondence succeeds, the common case,
    /// leaves the whole thread budget to that completion's bounded checks —
    /// towards twice the thread budget once early correspondences keep
    /// failing), each batch's sketches are generated and completed on worker
    /// threads, and the results are merged **in enumeration order** with the
    /// lowest-index success winning. Correspondences after the winner are
    /// cancelled and their partial statistics discarded, so
    /// `value_correspondences`, `iterations` and `sequences_tested` are
    /// byte-identical to the sequential one-at-a-time trajectory at any
    /// thread count.
    pub fn synthesize(
        &self,
        source: &Program,
        source_schema: &Schema,
        target_schema: &Schema,
    ) -> SynthesisResult {
        let synthesis_start = Instant::now();
        let mut stats = SynthesisStats::default();
        let strategy = match self.config.solver {
            SketchSolverKind::MfiGuided => BlockingStrategy::MinimumFailingInput,
            SketchSolverKind::Enumerative => BlockingStrategy::FullModel,
        };
        // A wall-clock budget mints a fresh deadline token per run (the
        // clock starts now), *linked* to the installed token so explicit
        // cross-thread cancellation still fires under a budget.
        let run_token = match self.budget {
            Some(budget) => self.cancel.linked_with_timeout(budget),
            None => self.cancel.clone(),
        };
        let token = &run_token;
        // Deterministic main stream (enumeration order, merge loop only).
        let emit = |event: &SynthesisEvent| {
            if let Some(observer) = &self.observer {
                observer.event(event);
            }
        };
        // Scheduling-dependent side channel (speculation notices).
        let speculate = |event: &SynthesisEvent| {
            if let Some(observer) = &self.observer {
                observer.speculation(event);
            }
        };

        let mut enumerator =
            VcEnumerator::new(source, source_schema, target_schema, &self.config.vc);

        // One memoized source oracle for the whole run: the source program's
        // outcome per invocation sequence is identical across every candidate
        // of every sketch — and every worker thread — so it is interpreted at
        // most once per sequence across the entire run.
        let oracle = SourceOracle::new(source, source_schema);

        // Generates the sketch for one correspondence and completes it,
        // buffering the completion's events. Self-contained per
        // correspondence (own SAT solver, own blocking clauses, own event
        // buffer), so running it on a worker thread yields the same outcome,
        // statistics and events as running it inline.
        let attempt = |index: usize,
                       phi: &ValueCorrespondence,
                       cancel: Option<&(dyn Fn() -> bool + Sync)>|
         -> (
            Option<crate::completion::CompletionOutcome>,
            Vec<SynthesisEvent>,
            AttemptProfile,
        ) {
            let mut events = Vec::new();
            let mut profile = AttemptProfile::default();
            let generation_start = Instant::now();
            let sketch = generate_sketch(source, phi, target_schema, &self.config.sketch);
            profile.sketch_generation = generation_start.elapsed();
            let Some(sketch) = sketch else {
                return (None, events, profile);
            };
            events.push(SynthesisEvent::SketchGenerated {
                index,
                holes: sketch.holes.len(),
                completions: sketch.completion_count(),
            });
            let completion_start = Instant::now();
            let outcome = complete_sketch(
                &sketch,
                &oracle,
                target_schema,
                &self.config.testing,
                &self.config.verification,
                strategy,
                self.config.max_iterations_per_sketch,
                CompletionControls {
                    cancel,
                    token: Some(token),
                    index,
                    events: Some(&mut events),
                    profile: Some(&mut profile.check),
                },
            );
            profile.completion = completion_start.elapsed();
            (Some(outcome), events, profile)
        };

        let speculation_cap = parpool::thread_limit().max(1).saturating_mul(2);
        let mut batch_size = 1usize;
        // Absolute enumeration position of the next correspondence pulled.
        let mut next_index = 0usize;
        let mut interrupted = false;
        'batches: loop {
            if token.is_cancelled() {
                interrupted = true;
                break;
            }
            let remaining = if self.config.max_value_correspondences > 0 {
                self.config
                    .max_value_correspondences
                    .saturating_sub(stats.value_correspondences)
            } else {
                usize::MAX
            };
            if remaining == 0 {
                emit(&SynthesisEvent::FrontierBudgetReached {
                    explored: stats.value_correspondences,
                });
                break;
            }
            let mut phis = Vec::new();
            let enumeration_start = Instant::now();
            while phis.len() < batch_size.min(remaining) {
                match enumerator.next_correspondence() {
                    Some(phi) => phis.push(phi),
                    None => break,
                }
            }
            stats.phases.vc_enumeration_time += enumeration_start.elapsed();
            if phis.is_empty() {
                // Both frontier events fire from the loop head after the
                // previous batch is fully merged, so their position in the
                // main stream is enumeration-ordered and thread-count
                // independent like every other deterministic event.
                emit(&SynthesisEvent::FrontierDrained {
                    produced: enumerator.produced(),
                    infeasible: enumerator.infeasible(),
                });
                break;
            }
            let base = next_index;
            next_index += phis.len();
            // Everything past the first batch item runs ahead of its
            // enumeration turn — a speculation notice per item, on the
            // scheduling-dependent side channel.
            for i in 1..phis.len() {
                speculate(&SynthesisEvent::CorrespondenceSpeculated { index: base + i });
            }

            let results = parpool::par_map_stop(
                &phis,
                |i, phi, ctx| {
                    let cancel = || ctx.cancelled(i);
                    attempt(base + i, phi, Some(&cancel))
                },
                // A success stops the fan-out; so does a token interruption
                // (everything after it is moot).
                |(outcome, _, _)| {
                    outcome
                        .as_ref()
                        .is_some_and(|o| o.program.is_some() || o.interrupted)
                },
            );

            // Index-ordered merge: absorb each correspondence exactly as the
            // sequential loop would have, stopping at the first success.
            let mut results = results.into_iter();
            let mut defensive_replay = false;
            for (i, phi) in phis.iter().enumerate() {
                let index = base + i;
                let (outcome, events, profile) = if defensive_replay {
                    // A verified-then-rejected winner (see below) invalidated
                    // the speculative results; recompute this correspondence
                    // inline. Deterministic, so the trajectory is preserved.
                    attempt(index, phi, None)
                } else {
                    match results.next() {
                        Some(Some(triple)) => triple,
                        Some(None) | None => break, // skipped: after the winner
                    }
                };
                debug_assert!(
                    !outcome.as_ref().is_some_and(|o| o.cancelled),
                    "merge reached a cancelled speculative completion"
                );
                stats.value_correspondences += 1;
                emit(&SynthesisEvent::CorrespondenceEnumerated {
                    index,
                    mapped_attrs: phi.mapped_count(),
                });
                for event in &events {
                    emit(event);
                }
                // Phase accounting follows the same enumeration-order merge
                // as the events: only merged (winning-trajectory) attempts
                // reach the breakdown.
                stats.phases.sketch_generation_time += profile.sketch_generation;
                stats.phases.completion_time += profile.completion;
                stats.phases.absorb_check(&profile.check);
                let Some(outcome) = outcome else {
                    // No sketch for this correspondence; tell the stream so
                    // the forensics taxonomy can count the rejection.
                    emit(&SynthesisEvent::SketchGenerationFailed { index });
                    continue;
                };
                stats.sketches_generated += 1;
                stats.absorb_sketch_run(&outcome.stats);
                if outcome.interrupted {
                    // Deadline or user cancellation mid-completion: the
                    // partial statistics above are kept (they describe real
                    // work), the rest of the batch is discarded.
                    interrupted = true;
                    break 'batches;
                }

                if let Some(program) = outcome.program {
                    // This correspondence won; later batch items lost their
                    // speculation.
                    for j in (i + 1)..phis.len() {
                        speculate(&SynthesisEvent::CorrespondenceCancelled { index: base + j });
                    }
                    stats.synthesis_time = synthesis_start.elapsed();
                    // Final verification pass, timed separately (the stand-in
                    // for the Mediator equivalence proof; see DESIGN.md).
                    let verification_start = Instant::now();
                    let mut final_profile = CheckProfile::default();
                    // A fresh per-pass prefix cache: the deeper verification
                    // bound shares levels 1–2 within its own walk, and — the
                    // determinism contract — a cached check's undo-log
                    // counters are byte-identical at any thread count, which
                    // the uncached stub-partitioned path is not.
                    let mut verification_cache = PrefixCache::new();
                    let verified = check_candidate_cached(
                        &oracle,
                        &program,
                        target_schema,
                        &self.config.verification,
                        Some(token),
                        Some(&mut final_profile),
                        Some(&mut verification_cache),
                    );
                    stats.verification_time = verification_start.elapsed();
                    stats.phases.absorb_check(&final_profile);
                    match verified {
                        CheckOutcome::Equivalent {
                            sequences_tested,
                            bound_exhausted,
                        } => {
                            stats.sequences_tested += sequences_tested;
                            stats.truncated_checks += usize::from(!bound_exhausted);
                            stats.oracle_hits = oracle.hits();
                            stats.phases.oracle_time = oracle.compute_time();
                            return SynthesisResult {
                                program: Some(program),
                                correspondence: Some(phi.clone()),
                                outcome: SynthesisOutcome::Solved,
                                stats,
                            };
                        }
                        CheckOutcome::Cancelled { sequences_tested } => {
                            // The token fired during this *redundant* final
                            // pass. The completion already verified the
                            // exact same candidate against the same oracle
                            // and configuration, so the program is kept: a
                            // verified program in hand beats reporting
                            // `Timeout` with nothing.
                            stats.sequences_tested += sequences_tested;
                            stats.oracle_hits = oracle.hits();
                            stats.phases.oracle_time = oracle.compute_time();
                            return SynthesisResult {
                                program: Some(program),
                                correspondence: Some(phi.clone()),
                                outcome: SynthesisOutcome::Solved,
                                stats,
                            };
                        }
                        CheckOutcome::NotEquivalent { .. } => {
                            // The completion already checked this exact
                            // configuration, so this cannot happen; continue
                            // defensively, replaying the rest of the batch
                            // inline because the speculative results beyond
                            // this index were cancelled when it "won".
                            defensive_replay = true;
                            continue;
                        }
                    }
                }
            }

            // Keep speculation proportional to observed failure: every fully
            // failed batch doubles the next one, up to the cap.
            batch_size = batch_size.saturating_mul(2).min(speculation_cap);
        }

        stats.synthesis_time = synthesis_start.elapsed();
        stats.oracle_hits = oracle.hits();
        stats.phases.oracle_time = oracle.compute_time();
        let outcome = if interrupted {
            let reason = token.reason().unwrap_or(CancelReason::Cancelled);
            emit(&SynthesisEvent::RunInterrupted { reason });
            match reason {
                CancelReason::DeadlineExceeded => SynthesisOutcome::Timeout,
                CancelReason::Cancelled => SynthesisOutcome::Cancelled,
            }
        } else {
            SynthesisOutcome::NoSolution
        };
        SynthesisResult {
            program: None,
            correspondence: None,
            outcome,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::equiv::{compare_programs, TestConfig};
    use dbir::parser::parse_program;

    #[test]
    fn synthesizes_simple_rename() {
        let source_schema = Schema::parse("Person(pid: int, pname: string)").unwrap();
        let target_schema = Schema::parse("Person(pid: int, fullname: string)").unwrap();
        let source = parse_program(
            r#"
            update addPerson(pid: int, pname: string)
                INSERT INTO Person VALUES (pid: pid, pname: pname);
            update removePerson(pid: int)
                DELETE Person FROM Person WHERE pid = pid;
            query getPerson(pid: int)
                SELECT pname FROM Person WHERE pid = pid;
            "#,
            &source_schema,
        )
        .unwrap();

        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        let program = result.program.expect("rename should synthesize");
        assert!(program.validate(&target_schema).is_ok());
        let phi = result
            .correspondence
            .expect("successful synthesis reports its correspondence");
        assert!(phi.is_mapped(&dbir::schema::QualifiedAttr::new("Person", "pname")));
        assert!(result.stats.value_correspondences >= 1);
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.total_time() >= result.stats.synthesis_time);

        // Independently confirm equivalence with a deeper bound.
        let report = compare_programs(
            &source,
            &source_schema,
            &program,
            &target_schema,
            &TestConfig::thorough(),
        );
        assert!(report.equivalent);
    }

    #[test]
    fn synthesizes_the_motivating_example() {
        let source_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let source = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            update deleteTA(id: int)
                DELETE TA FROM TA WHERE TaId = id;
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &source_schema,
        )
        .unwrap();

        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        let program = result.program.expect("the motivating example synthesizes");
        // The synthesized program must route pictures through the new table.
        assert!(program
            .function("addInstructor")
            .unwrap()
            .tables()
            .contains(&"Picture".into()));
        assert!(program
            .function("getTAInfo")
            .unwrap()
            .tables()
            .contains(&"Picture".into()));
        // Stats should reflect a non-trivial search.
        assert!(result.stats.largest_search_space >= 164_025);
    }

    /// The speculative correspondence fan-out must leave the deterministic
    /// statistics byte-identical at any thread budget. This scenario fails
    /// synthesis, so every correspondence in the budget is explored — the
    /// worst case for speculation to get ordering wrong.
    #[test]
    fn thread_budget_does_not_change_the_trajectory() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let run = |threads: usize| {
            parpool::set_thread_limit(threads);
            let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
            parpool::set_thread_limit(0);
            result
        };
        let single = run(1);
        let multi = run(4);
        assert!(!single.succeeded());
        assert_eq!(
            single.stats.value_correspondences,
            multi.stats.value_correspondences
        );
        assert_eq!(single.stats.iterations, multi.stats.iterations);
        assert_eq!(single.stats.sequences_tested, multi.stats.sequences_tested);
        assert_eq!(
            single.stats.sketches_generated,
            multi.stats.sketches_generated
        );
        assert_eq!(
            single.stats.invalid_instantiations,
            multi.stats.invalid_instantiations
        );
        // The deterministic subset of the phase breakdown obeys the same
        // contract. (Snapshot counters and all times are scheduling- or
        // wall-clock-dependent and deliberately not compared.)
        assert_eq!(
            single.stats.phases.sat_blocking_clauses,
            multi.stats.phases.sat_blocking_clauses
        );
        assert_eq!(
            single.stats.phases.plans_compiled,
            multi.stats.phases.plans_compiled
        );
        assert_eq!(
            single.stats.phases.solver_reuses,
            multi.stats.phases.solver_reuses
        );
        assert_eq!(
            single.stats.phases.learned_clauses_kept,
            multi.stats.phases.learned_clauses_kept
        );
        assert_eq!(
            single.stats.phases.prefix_cache_hits,
            multi.stats.phases.prefix_cache_hits
        );
    }

    #[test]
    fn reports_failure_when_no_equivalent_program_exists() {
        // The target schema drops the queried column entirely, so no
        // equivalent program exists.
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        assert!(!result.succeeded());
        assert!(result.correspondence.is_none());
    }

    #[test]
    fn enumerative_configuration_also_synthesizes() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, c: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::enumerative_baseline());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        assert!(result.succeeded());
    }
}
