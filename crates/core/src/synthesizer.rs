//! The top-level synthesis driver (Algorithm 1 of the paper).
//!
//! [`Synthesizer::synthesize`] lazily enumerates value correspondences,
//! generates a sketch for each and attempts to complete it; the first
//! completion that passes verification is returned. If the correspondence
//! space is exhausted (or the configured budget runs out) the result carries
//! no program, mirroring the paper's `⊥`.

use std::time::Instant;

use dbir::{Program, Schema};

use dbir::equiv::SourceOracle;

use crate::completion::{complete_sketch, BlockingStrategy};
use crate::config::{SketchSolverKind, SynthesisConfig};
use crate::sketch_gen::generate_sketch;
use crate::stats::SynthesisStats;
use crate::value_corr::{ValueCorrespondence, VcEnumerator};
use crate::verify::{check_candidate_with_oracle, CheckOutcome};

/// The result of a synthesis run: the migrated program (if one was found)
/// plus statistics matching the paper's evaluation columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The synthesized program over the target schema, or `None` if no
    /// equivalent program was found within the configured budget.
    pub program: Option<Program>,
    /// The value correspondence the synthesized program was derived from
    /// (`None` when synthesis failed). Downstream tooling uses it to derive
    /// a data-migration script alongside the migrated program.
    pub correspondence: Option<ValueCorrespondence>,
    /// Statistics about the run.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// Returns `true` if a program was synthesized.
    pub fn succeeded(&self) -> bool {
        self.program.is_some()
    }
}

/// Synthesizes database programs for schema refactoring.
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    config: SynthesisConfig,
}

impl Synthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: SynthesisConfig) -> Synthesizer {
        Synthesizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Synthesizes a program over `target_schema` equivalent to `source`
    /// (over `source_schema`), following the paper's three-stage pipeline.
    ///
    /// Value correspondences are explored **speculatively in parallel**:
    /// they are pulled from the enumerator in batches (ramping up from one —
    /// so a run whose very first correspondence succeeds, the common case,
    /// leaves the whole thread budget to that completion's bounded checks —
    /// towards twice the thread budget once early correspondences keep
    /// failing), each batch's sketches are generated and completed on worker
    /// threads, and the results are merged **in enumeration order** with the
    /// lowest-index success winning. Correspondences after the winner are
    /// cancelled and their partial statistics discarded, so
    /// `value_correspondences`, `iterations` and `sequences_tested` are
    /// byte-identical to the sequential one-at-a-time trajectory at any
    /// thread count.
    pub fn synthesize(
        &self,
        source: &Program,
        source_schema: &Schema,
        target_schema: &Schema,
    ) -> SynthesisResult {
        let synthesis_start = Instant::now();
        let mut stats = SynthesisStats::default();
        let strategy = match self.config.solver {
            SketchSolverKind::MfiGuided => BlockingStrategy::MinimumFailingInput,
            SketchSolverKind::Enumerative => BlockingStrategy::FullModel,
        };

        let mut enumerator =
            VcEnumerator::new(source, source_schema, target_schema, &self.config.vc);

        // One memoized source oracle for the whole run: the source program's
        // outcome per invocation sequence is identical across every candidate
        // of every sketch — and every worker thread — so it is interpreted at
        // most once per sequence across the entire run.
        let oracle = SourceOracle::new(source, source_schema);

        // Generates the sketch for one correspondence and completes it.
        // Self-contained per correspondence (own SAT solver, own blocking
        // clauses), so running it on a worker thread yields the same outcome
        // and statistics as running it inline.
        let attempt = |phi: &ValueCorrespondence,
                       cancel: Option<&(dyn Fn() -> bool + Sync)>|
         -> Option<crate::completion::CompletionOutcome> {
            let sketch = generate_sketch(source, phi, target_schema, &self.config.sketch)?;
            Some(complete_sketch(
                &sketch,
                &oracle,
                target_schema,
                &self.config.testing,
                &self.config.verification,
                strategy,
                self.config.max_iterations_per_sketch,
                cancel,
            ))
        };

        let speculation_cap = parpool::thread_limit().max(1).saturating_mul(2);
        let mut batch_size = 1usize;
        loop {
            let remaining = if self.config.max_value_correspondences > 0 {
                self.config
                    .max_value_correspondences
                    .saturating_sub(stats.value_correspondences)
            } else {
                usize::MAX
            };
            if remaining == 0 {
                break;
            }
            let mut phis = Vec::new();
            while phis.len() < batch_size.min(remaining) {
                match enumerator.next_correspondence() {
                    Some(phi) => phis.push(phi),
                    None => break,
                }
            }
            if phis.is_empty() {
                break;
            }

            let results = parpool::par_map_stop(
                &phis,
                |index, phi, ctx| {
                    let cancel = || ctx.cancelled(index);
                    attempt(phi, Some(&cancel))
                },
                |outcome| outcome.as_ref().is_some_and(|o| o.program.is_some()),
            );

            // Index-ordered merge: absorb each correspondence exactly as the
            // sequential loop would have, stopping at the first success.
            let mut results = results.into_iter();
            let mut defensive_replay = false;
            for phi in &phis {
                let outcome = if defensive_replay {
                    // A verified-then-rejected winner (see below) invalidated
                    // the speculative results; recompute this correspondence
                    // inline. Deterministic, so the trajectory is preserved.
                    attempt(phi, None)
                } else {
                    match results.next() {
                        Some(Some(outcome)) => outcome,
                        Some(None) | None => break, // skipped: after the winner
                    }
                };
                debug_assert!(
                    !outcome.as_ref().is_some_and(|o| o.cancelled),
                    "merge reached a cancelled speculative completion"
                );
                stats.value_correspondences += 1;
                let Some(outcome) = outcome else {
                    continue; // no sketch for this correspondence
                };
                stats.sketches_generated += 1;
                stats.absorb_sketch_run(&outcome.stats);

                if let Some(program) = outcome.program {
                    stats.synthesis_time = synthesis_start.elapsed();
                    // Final verification pass, timed separately (the stand-in
                    // for the Mediator equivalence proof; see DESIGN.md).
                    let verification_start = Instant::now();
                    let verified = check_candidate_with_oracle(
                        &oracle,
                        &program,
                        target_schema,
                        &self.config.verification,
                    );
                    stats.verification_time = verification_start.elapsed();
                    match verified {
                        CheckOutcome::Equivalent {
                            sequences_tested,
                            bound_exhausted,
                        } => {
                            stats.sequences_tested += sequences_tested;
                            stats.truncated_checks += usize::from(!bound_exhausted);
                            stats.oracle_hits = oracle.hits();
                            return SynthesisResult {
                                program: Some(program),
                                correspondence: Some(phi.clone()),
                                stats,
                            };
                        }
                        CheckOutcome::NotEquivalent { .. } => {
                            // The completion already checked this exact
                            // configuration, so this cannot happen; continue
                            // defensively, replaying the rest of the batch
                            // inline because the speculative results beyond
                            // this index were cancelled when it "won".
                            defensive_replay = true;
                            continue;
                        }
                    }
                }
            }

            // Keep speculation proportional to observed failure: every fully
            // failed batch doubles the next one, up to the cap.
            batch_size = batch_size.saturating_mul(2).min(speculation_cap);
        }

        stats.synthesis_time = synthesis_start.elapsed();
        stats.oracle_hits = oracle.hits();
        SynthesisResult {
            program: None,
            correspondence: None,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::equiv::{compare_programs, TestConfig};
    use dbir::parser::parse_program;

    #[test]
    fn synthesizes_simple_rename() {
        let source_schema = Schema::parse("Person(pid: int, pname: string)").unwrap();
        let target_schema = Schema::parse("Person(pid: int, fullname: string)").unwrap();
        let source = parse_program(
            r#"
            update addPerson(pid: int, pname: string)
                INSERT INTO Person VALUES (pid: pid, pname: pname);
            update removePerson(pid: int)
                DELETE Person FROM Person WHERE pid = pid;
            query getPerson(pid: int)
                SELECT pname FROM Person WHERE pid = pid;
            "#,
            &source_schema,
        )
        .unwrap();

        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        let program = result.program.expect("rename should synthesize");
        assert!(program.validate(&target_schema).is_ok());
        let phi = result
            .correspondence
            .expect("successful synthesis reports its correspondence");
        assert!(phi.is_mapped(&dbir::schema::QualifiedAttr::new("Person", "pname")));
        assert!(result.stats.value_correspondences >= 1);
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.total_time() >= result.stats.synthesis_time);

        // Independently confirm equivalence with a deeper bound.
        let report = compare_programs(
            &source,
            &source_schema,
            &program,
            &target_schema,
            &TestConfig::thorough(),
        );
        assert!(report.equivalent);
    }

    #[test]
    fn synthesizes_the_motivating_example() {
        let source_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let source = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            update deleteTA(id: int)
                DELETE TA FROM TA WHERE TaId = id;
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &source_schema,
        )
        .unwrap();

        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        let program = result.program.expect("the motivating example synthesizes");
        // The synthesized program must route pictures through the new table.
        assert!(program
            .function("addInstructor")
            .unwrap()
            .tables()
            .contains(&"Picture".into()));
        assert!(program
            .function("getTAInfo")
            .unwrap()
            .tables()
            .contains(&"Picture".into()));
        // Stats should reflect a non-trivial search.
        assert!(result.stats.largest_search_space >= 164_025);
    }

    /// The speculative correspondence fan-out must leave the deterministic
    /// statistics byte-identical at any thread budget. This scenario fails
    /// synthesis, so every correspondence in the budget is explored — the
    /// worst case for speculation to get ordering wrong.
    #[test]
    fn thread_budget_does_not_change_the_trajectory() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let run = |threads: usize| {
            parpool::set_thread_limit(threads);
            let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
            parpool::set_thread_limit(0);
            result
        };
        let single = run(1);
        let multi = run(4);
        assert!(!single.succeeded());
        assert_eq!(
            single.stats.value_correspondences,
            multi.stats.value_correspondences
        );
        assert_eq!(single.stats.iterations, multi.stats.iterations);
        assert_eq!(single.stats.sequences_tested, multi.stats.sequences_tested);
        assert_eq!(
            single.stats.sketches_generated,
            multi.stats.sketches_generated
        );
        assert_eq!(
            single.stats.invalid_instantiations,
            multi.stats.invalid_instantiations
        );
    }

    #[test]
    fn reports_failure_when_no_equivalent_program_exists() {
        // The target schema drops the queried column entirely, so no
        // equivalent program exists.
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::standard());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        assert!(!result.succeeded());
        assert!(result.correspondence.is_none());
    }

    #[test]
    fn enumerative_configuration_also_synthesizes() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, c: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let synthesizer = Synthesizer::new(SynthesisConfig::enumerative_baseline());
        let result = synthesizer.synthesize(&source, &source_schema, &target_schema);
        assert!(result.succeeded());
    }
}
