//! Sketch completion: symbolic search with conflict-driven learning from
//! minimum failing inputs (Algorithm 2 of the paper).
//!
//! The space of completions is encoded as a SAT formula with one boolean
//! variable per (hole, domain element) pair and one exactly-one constraint
//! per hole. Models are enumerated lazily; each candidate program is checked
//! against the source program by bounded testing. When a candidate fails,
//! the minimum failing input tells us which *functions* witnessed the
//! disequivalence — blocking only the assignment to the holes of those
//! functions prunes every completion that would fail for the same reason
//! (18,225 programs at once in the paper's running example).
//!
//! ## Incremental engine
//!
//! Three mechanisms make the loop incremental end-to-end:
//!
//! * **Persistent solver** — one [`Solver`] lives for the whole sketch;
//!   blocking clauses are added to it and the conflict clauses, variable
//!   activities and saved phases it accumulates carry over to every later
//!   model (counted by [`SketchRunStats::solver_reuses`] and
//!   [`SketchRunStats::learned_clauses_kept`]).
//! * **Speculative candidate checking** — while candidate *k* is in
//!   bounded testing, the solver probes for candidate *k+1* on a
//!   [`parpool`] worker under a guard assumption `g` whose clause
//!   `¬g ∨ block(k)` pre-blocks *k*'s full model. If *k* fails, the guard
//!   is committed as a unit clause (sound: the learned MFI clause blocks a
//!   superset of `block(k)`) and the probed model is *adopted* as the next
//!   candidate when it already satisfies the MFI clause; if *k* is
//!   accepted the probe is discarded. The probe always runs —
//!   [`parpool::join`] degrades to sequential execution instead of
//!   skipping — so the solver-state trajectory, and with it every model
//!   and counter, is byte-identical at any thread count.
//! * **Prefix sharing** — every bounded check of the sketch (testing and
//!   verification) shares one [`PrefixCache`], so update prefixes executed
//!   for candidate *k* are reused by candidate *k+1* when the prefix's
//!   update bodies did not change.

use dbir::equiv::{CheckProfile, PrefixCache, SourceOracle, TestConfig};
use dbir::{Program, Schema};
use parpool::CancelToken;
use satsolver::encoder::exactly_one;
use satsolver::{Lit, Model, SolveResult, Solver, Var};

use crate::observe::SynthesisEvent;
use crate::sketch::{HoleAssignment, HoleId, Sketch};
use crate::stats::SketchRunStats;
use crate::verify::{check_candidate_cached, CheckOutcome};

/// The SAT encoding of a sketch: one variable per (hole, domain element).
#[derive(Debug)]
pub struct SketchEncoding {
    /// `vars[h][j]` is true iff hole `h` takes its `j`-th domain element.
    vars: Vec<Vec<Var>>,
}

impl SketchEncoding {
    /// Encodes `sketch` into `solver`: allocates the selector variables and
    /// adds one exactly-one constraint per hole (the paper's `⊕` formula).
    pub fn encode(sketch: &Sketch, solver: &mut Solver) -> SketchEncoding {
        let mut vars = Vec::with_capacity(sketch.holes.len());
        for hole in &sketch.holes {
            let hole_vars = solver.new_vars(hole.domain.size());
            let lits: Vec<Lit> = hole_vars.iter().map(|&v| Lit::pos(v)).collect();
            exactly_one(solver, &lits);
            vars.push(hole_vars);
        }
        SketchEncoding { vars }
    }

    /// Decodes a SAT model into a hole assignment.
    ///
    /// # Panics
    ///
    /// Panics if the model does not select exactly one element for some hole
    /// (impossible for models of the encoding).
    pub fn decode(&self, model: &Model) -> HoleAssignment {
        self.vars
            .iter()
            .map(|hole_vars| {
                hole_vars
                    .iter()
                    .position(|&v| model.value(v))
                    .expect("exactly-one constraint guarantees a selection")
            })
            .collect()
    }

    /// The literal asserting that `hole` takes domain element `choice`.
    pub fn selector(&self, hole: HoleId, choice: usize) -> Lit {
        Lit::pos(self.vars[hole.0][choice])
    }

    /// Builds the blocking clause `¬(b₁ ∧ … ∧ bₙ)` for the given holes'
    /// current assignment: at least one of them must change.
    pub fn blocking_clause(&self, assignment: &HoleAssignment, holes: &[HoleId]) -> Vec<Lit> {
        holes
            .iter()
            .map(|&hole| !self.selector(hole, assignment[hole.0]))
            .collect()
    }
}

/// How blocking clauses are derived from failing candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// Block only the holes of the functions appearing in the minimum
    /// failing input (the paper's approach).
    MinimumFailingInput,
    /// Block the full model (the symbolic enumerative baseline of Table 3).
    FullModel,
}

/// The outcome of completing one sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionOutcome {
    /// The synthesized program, if one was found.
    pub program: Option<Program>,
    /// Statistics about the search.
    pub stats: SketchRunStats,
    /// `true` if the search was abandoned because the caller's cancellation
    /// signal fired (a speculative completion whose result can no longer be
    /// selected). A cancelled outcome carries partial statistics and must
    /// not be absorbed into a deterministic trajectory.
    pub cancelled: bool,
    /// `true` if the search was abandoned because the run's
    /// [`CancelToken`] fired (wall-clock deadline or user cancellation).
    /// Unlike [`CompletionOutcome::cancelled`], an interrupted outcome's
    /// partial statistics *are* reported — they describe work the run
    /// genuinely performed before timing out.
    pub interrupted: bool,
}

/// Cross-cutting controls threaded into one sketch completion: the two
/// cancellation signals and the event buffer. [`CompletionControls::none`]
/// is the plain blocking run with no observability.
#[derive(Default)]
pub struct CompletionControls<'a> {
    /// Speculation-cancellation poll from the parallel correspondence
    /// fan-out (lowest-index-wins; see [`parpool::StopCtx`]). A completion
    /// stopped by this signal is discarded wholesale.
    pub cancel: Option<&'a (dyn Fn() -> bool + Sync)>,
    /// The run's deadline / user-cancellation token, polled between
    /// candidates and inside each bounded check.
    pub token: Option<&'a CancelToken>,
    /// Enumeration index of the correspondence this sketch was generated
    /// from; used to label events.
    pub index: usize,
    /// Buffer receiving this completion's [`SynthesisEvent`]s in order.
    /// Buffered (rather than delivered directly) so parallel completions
    /// stay deterministic: the synthesizer replays winning buffers in
    /// enumeration order and discards losing ones.
    pub events: Option<&'a mut Vec<SynthesisEvent>>,
    /// Accumulator receiving the per-phase accounting of every bounded
    /// check this completion runs. Like the event buffer it is per-attempt:
    /// the synthesizer absorbs winning buffers in enumeration order, so
    /// losing speculative completions never contaminate the breakdown.
    pub profile: Option<&'a mut CheckProfile>,
}

impl std::fmt::Debug for CompletionControls<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionControls")
            .field("cancel", &self.cancel.is_some())
            .field("token", &self.token.is_some())
            .field("index", &self.index)
            .field("events", &self.events.is_some())
            .field("profile", &self.profile.is_some())
            .finish()
    }
}

impl<'a> CompletionControls<'a> {
    /// No cancellation, no deadline, no events: the plain blocking run.
    pub fn none() -> CompletionControls<'a> {
        CompletionControls::default()
    }

    /// Records an event into the buffer, if one is attached.
    fn record(&mut self, event: SynthesisEvent) {
        if let Some(events) = self.events.as_deref_mut() {
            events.push(event);
        }
    }
}

/// Completes `sketch` against the source program: finds an instantiation
/// that is equivalent to `source` (within the bounded-testing
/// configuration), or reports failure when the space is exhausted.
///
/// The source program and schema travel inside `oracle`, which memoizes the
/// source's outcome per invocation sequence — every candidate is checked
/// against the same source, so across the completion loop each sequence is
/// interpreted on the source at most once.
///
/// `testing` is used to search for minimum failing inputs; `verification`
/// is the deeper final check a candidate must pass before being returned.
/// `max_iterations` bounds the number of candidates examined (0 = unlimited).
///
/// `controls` bundles the cross-cutting concerns: the speculation
/// cancellation poll (checked between candidates; a stop is flagged
/// [`CompletionOutcome::cancelled`]), the run's [`CancelToken`] (checked
/// between candidates *and* inside each bounded check; a stop is flagged
/// [`CompletionOutcome::interrupted`]) and the [`SynthesisEvent`] buffer.
#[allow(clippy::too_many_arguments)]
pub fn complete_sketch(
    sketch: &Sketch,
    oracle: &SourceOracle<'_>,
    target_schema: &Schema,
    testing: &TestConfig,
    verification: &TestConfig,
    strategy: BlockingStrategy,
    max_iterations: usize,
    mut controls: CompletionControls<'_>,
) -> CompletionOutcome {
    let mut stats = SketchRunStats {
        search_space: sketch.completion_count(),
        ..SketchRunStats::default()
    };
    let mut solver = Solver::new();
    let encoding = SketchEncoding::encode(sketch, &mut solver);
    let all_holes: Vec<HoleId> = sketch.holes.iter().map(|h| h.id).collect();
    let index = controls.index;
    // Executed update-prefix states shared across every bounded check of
    // this sketch — candidates mostly differ in one hole, so most prefixes
    // carry over unchanged from check to check.
    let mut cache = PrefixCache::new();
    // A speculative model adopted from the previous iteration's probe,
    // consumed instead of a fresh solver call.
    let mut pending_model: Option<Model> = None;
    let done = |program: Option<Program>,
                mut stats: SketchRunStats,
                cancelled: bool,
                interrupted: bool,
                solver: &Solver| {
        stats.solver_reuses = solver.solves().saturating_sub(1);
        stats.learned_clauses_kept = solver.learnt_clauses_kept();
        CompletionOutcome {
            program,
            stats,
            cancelled,
            interrupted,
        }
    };

    loop {
        if controls.token.is_some_and(CancelToken::is_cancelled) {
            return done(None, stats, false, true, &solver);
        }
        if controls.cancel.is_some_and(|cancelled| cancelled()) {
            return done(None, stats, true, false, &solver);
        }
        if max_iterations > 0 && stats.iterations >= max_iterations {
            controls.record(SynthesisEvent::BoundExhausted {
                index,
                iterations: stats.iterations,
                space_exhausted: false,
            });
            return done(None, stats, false, false, &solver);
        }
        let model = match pending_model.take() {
            Some(model) => model,
            None => match solver.solve() {
                SolveResult::Sat(model) => model,
                SolveResult::Unsat => {
                    controls.record(SynthesisEvent::BoundExhausted {
                        index,
                        iterations: stats.iterations,
                        space_exhausted: true,
                    });
                    return done(None, stats, false, false, &solver);
                }
            },
        };
        let assignment = encoding.decode(&model);

        // Instantiate; structurally invalid assignments are blocked on just
        // the conflicting holes and are not counted as iterations.
        let candidate = match sketch.instantiate(&assignment) {
            Ok(program) => program,
            Err(conflicts) => {
                stats.invalid_instantiations += 1;
                for conflict in conflicts {
                    let clause = encoding.blocking_clause(&assignment, &conflict.holes);
                    solver.add_clause(&clause);
                    stats.blocking_clauses += 1;
                }
                continue;
            }
        };
        stats.iterations += 1;

        // Reject candidates that are not even well-formed over the target
        // schema (should not happen, but blocking the whole model is sound).
        if candidate.validate(target_schema).is_err() {
            let clause = encoding.blocking_clause(&assignment, &all_holes);
            solver.add_clause(&clause);
            stats.blocking_clauses += 1;
            continue;
        }

        // Blocks the failing candidate's holes, records the MFI event and
        // returns the blocked holes (the adoption test needs them).
        let learn = |failing_input: &dbir::InvocationSequence,
                     solver: &mut Solver,
                     stats: &mut SketchRunStats,
                     controls: &mut CompletionControls<'_>|
         -> Vec<HoleId> {
            let holes = holes_for_blocking(sketch, failing_input, strategy, &all_holes);
            let (pruned, domains) = cohort_of_blocked(sketch, &all_holes, &holes);
            controls.record(SynthesisEvent::MfiFound {
                index,
                iteration: stats.iterations,
                updates: failing_input.depth(),
                query: failing_input.query.function.clone(),
                blocked_holes: holes.len(),
                pruned,
                domains,
            });
            let clause = encoding.blocking_clause(&assignment, &holes);
            solver.add_clause(&clause);
            stats.blocking_clauses += 1;
            holes
        };

        // Speculation: pre-block this candidate's full model behind a fresh
        // guard literal, then probe for the next model under the guard
        // assumption *while* the candidate is in bounded testing. The guard
        // clause is inert until the guard is committed (failing candidate)
        // and stays inert forever if the candidate is accepted.
        let guard = solver.new_var();
        let mut guard_clause = encoding.blocking_clause(&assignment, &all_holes);
        guard_clause.push(Lit::new(guard, false));
        solver.add_clause(&guard_clause);

        let token = controls.token;
        let profile = controls.profile.as_deref_mut();
        let testing_cache = &mut cache;
        let (test_outcome, speculation) = parpool::join(
            || {
                check_candidate_cached(
                    oracle,
                    &candidate,
                    target_schema,
                    testing,
                    token,
                    profile,
                    Some(testing_cache),
                )
            },
            || solver.solve_with_assumptions(&[Lit::pos(guard)]),
        );

        // Commits the speculative blocking after a failure and decides
        // whether the probed model can seed the next iteration: it must
        // satisfy the just-learned MFI clause (differ from the failing
        // assignment on at least one blocked hole); the committed guard it
        // satisfies by construction.
        let resolve_speculation = |speculation: SolveResult,
                                   mfi_holes: &[HoleId],
                                   solver: &mut Solver,
                                   stats: &mut SketchRunStats,
                                   controls: &mut CompletionControls<'_>|
         -> Option<Option<Model>> {
            solver.add_clause(&[Lit::pos(guard)]);
            match speculation {
                SolveResult::Unsat => {
                    // The failing candidate was the last model of the
                    // space: with its MFI clause learned the formula is
                    // unsatisfiable, so the next solve could only confirm
                    // exhaustion.
                    controls.record(SynthesisEvent::BoundExhausted {
                        index,
                        iterations: stats.iterations,
                        space_exhausted: true,
                    });
                    None
                }
                SolveResult::Sat(spec_model) => {
                    let spec_assignment = encoding.decode(&spec_model);
                    let adopted = mfi_holes
                        .iter()
                        .any(|&hole| spec_assignment[hole.0] != assignment[hole.0]);
                    controls.record(SynthesisEvent::CandidateSpeculated {
                        index,
                        iteration: stats.iterations,
                        adopted,
                    });
                    if adopted {
                        stats.speculation_adoptions += 1;
                        Some(Some(spec_model))
                    } else {
                        Some(None)
                    }
                }
            }
        };

        match test_outcome {
            CheckOutcome::Cancelled { sequences_tested } => {
                stats.sequences_tested += sequences_tested;
                return done(None, stats, false, true, &solver);
            }
            CheckOutcome::Equivalent {
                sequences_tested,
                bound_exhausted,
            } => {
                stats.sequences_tested += sequences_tested;
                stats.truncated_checks += usize::from(!bound_exhausted);
                controls.record(SynthesisEvent::CandidateChecked {
                    index,
                    iteration: stats.iterations,
                    accepted: true,
                    sequences_tested,
                });
                // Deeper verification pass before accepting; it shares the
                // prefix cache, so the prefixes the testing pass executed
                // are reused here.
                match check_candidate_cached(
                    oracle,
                    &candidate,
                    target_schema,
                    verification,
                    controls.token,
                    controls.profile.as_deref_mut(),
                    Some(&mut cache),
                ) {
                    CheckOutcome::Cancelled { sequences_tested } => {
                        stats.sequences_tested += sequences_tested;
                        return done(None, stats, false, true, &solver);
                    }
                    CheckOutcome::Equivalent {
                        sequences_tested,
                        bound_exhausted,
                    } => {
                        stats.sequences_tested += sequences_tested;
                        stats.truncated_checks += usize::from(!bound_exhausted);
                        controls.record(SynthesisEvent::Solved {
                            index,
                            iterations: stats.iterations,
                        });
                        // The speculation is simply discarded: its guard
                        // was never committed, so the guard clause stays
                        // vacuously satisfiable.
                        return done(Some(candidate), stats, false, false, &solver);
                    }
                    CheckOutcome::NotEquivalent {
                        minimum_failing_input,
                        sequences_tested,
                    } => {
                        stats.sequences_tested += sequences_tested;
                        let holes = learn(
                            &minimum_failing_input,
                            &mut solver,
                            &mut stats,
                            &mut controls,
                        );
                        match resolve_speculation(
                            speculation,
                            &holes,
                            &mut solver,
                            &mut stats,
                            &mut controls,
                        ) {
                            None => return done(None, stats, false, false, &solver),
                            Some(next) => pending_model = next,
                        }
                    }
                }
            }
            CheckOutcome::NotEquivalent {
                minimum_failing_input,
                sequences_tested,
            } => {
                stats.sequences_tested += sequences_tested;
                controls.record(SynthesisEvent::CandidateChecked {
                    index,
                    iteration: stats.iterations,
                    accepted: false,
                    sequences_tested,
                });
                let holes = learn(
                    &minimum_failing_input,
                    &mut solver,
                    &mut stats,
                    &mut controls,
                );
                match resolve_speculation(
                    speculation,
                    &holes,
                    &mut solver,
                    &mut stats,
                    &mut controls,
                ) {
                    None => return done(None, stats, false, false, &solver),
                    Some(next) => pending_model = next,
                }
            }
        }
    }
}

/// Forensic measure of one learned blocking clause: the size of the
/// candidate cohort it kills — every completion agreeing with the failing
/// assignment on the blocked holes, i.e. the product of the domain sizes
/// of the *unblocked* holes (saturating) — and the blocked-hole counts per
/// [`HoleDomain::kind`](crate::HoleDomain::kind), in the domain kinds'
/// fixed declaration order with zero-count kinds omitted.
///
/// `blocked` must be sorted (callers get it from [`holes_for_blocking`],
/// which sorts), so membership is a binary search and the whole
/// computation is O(holes · log holes) per MFI.
fn cohort_of_blocked(
    sketch: &Sketch,
    all_holes: &[HoleId],
    blocked: &[HoleId],
) -> (u128, Vec<(&'static str, usize)>) {
    let mut pruned: u128 = 1;
    for &hole in all_holes {
        if blocked.binary_search(&hole).is_err() {
            pruned = pruned.saturating_mul(sketch.hole(hole).domain.size() as u128);
        }
    }
    const KINDS: [&str; 4] = ["attr", "insert-target", "join", "table-list"];
    let mut counts = [0usize; 4];
    for &hole in blocked {
        let kind = sketch.hole(hole).domain.kind();
        if let Some(slot) = KINDS.iter().position(|&k| k == kind) {
            counts[slot] += 1;
        }
    }
    let domains = KINDS
        .iter()
        .zip(counts)
        .filter(|&(_, count)| count > 0)
        .map(|(&kind, count)| (kind, count))
        .collect();
    (pruned, domains)
}

/// The holes whose assignment should be blocked for a failing candidate:
/// under [`BlockingStrategy::MinimumFailingInput`], the holes of the
/// functions appearing in the failing input; under
/// [`BlockingStrategy::FullModel`], every hole.
fn holes_for_blocking(
    sketch: &Sketch,
    failing_input: &dbir::InvocationSequence,
    strategy: BlockingStrategy,
    all_holes: &[HoleId],
) -> Vec<HoleId> {
    match strategy {
        BlockingStrategy::FullModel => all_holes.to_vec(),
        BlockingStrategy::MinimumFailingInput => {
            let mut function_names: Vec<&str> = failing_input
                .updates
                .iter()
                .map(|c| c.function.as_str())
                .collect();
            function_names.push(failing_input.query.function.as_str());
            let mut holes: Vec<HoleId> = function_names
                .iter()
                .flat_map(|name| sketch.holes_in_function(name).to_vec())
                .collect();
            holes.sort();
            holes.dedup();
            if holes.is_empty() {
                // Defensive fallback: if the failing functions contain no
                // holes the candidate cannot be fixed by changing holes in
                // them, so block the full model to guarantee progress.
                all_holes.to_vec()
            } else {
                holes
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch_gen::{generate_sketch, SketchGenConfig};
    use crate::value_corr::{VcConfig, VcEnumerator};
    use dbir::parser::parse_program;

    fn motivating() -> (Schema, Schema, Program) {
        let source_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target_schema = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &source_schema,
        )
        .unwrap();
        (source_schema, target_schema, program)
    }

    #[test]
    fn completes_the_motivating_example_sketch() {
        let (source_schema, target_schema, program) = motivating();
        let mut vc = VcEnumerator::new(
            &program,
            &source_schema,
            &target_schema,
            &VcConfig::default(),
        );
        let phi = vc.next_correspondence().unwrap();
        let sketch =
            generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
        let oracle = SourceOracle::new(&program, &source_schema);
        let outcome = complete_sketch(
            &sketch,
            &oracle,
            &target_schema,
            &TestConfig::default(),
            &TestConfig::default(),
            BlockingStrategy::MinimumFailingInput,
            0,
            CompletionControls::none(),
        );
        let synthesized = outcome.program.expect("an equivalent completion exists");
        assert!(synthesized.validate(&target_schema).is_ok());
        // Spot-check the synthesized program resembles Figure 4: the insert
        // functions must write the Picture table.
        for name in ["addInstructor", "addTA"] {
            let function = synthesized.function(name).unwrap();
            assert!(
                function.tables().contains(&"Picture".into()),
                "{name} should insert into Picture"
            );
        }
        assert!(outcome.stats.iterations >= 1);
        assert!(outcome.stats.search_space > 1);
    }

    #[test]
    fn mfi_blocking_needs_no_more_iterations_than_full_model_blocking() {
        let (source_schema, target_schema, program) = motivating();
        let mut results = Vec::new();
        for strategy in [
            BlockingStrategy::MinimumFailingInput,
            BlockingStrategy::FullModel,
        ] {
            let mut vc = VcEnumerator::new(
                &program,
                &source_schema,
                &target_schema,
                &VcConfig::default(),
            );
            let phi = vc.next_correspondence().unwrap();
            let sketch =
                generate_sketch(&program, &phi, &target_schema, &SketchGenConfig::default())
                    .unwrap();
            let oracle = SourceOracle::new(&program, &source_schema);
            let outcome = complete_sketch(
                &sketch,
                &oracle,
                &target_schema,
                &TestConfig::default(),
                &TestConfig::default(),
                strategy,
                0,
                CompletionControls::none(),
            );
            assert!(outcome.program.is_some());
            results.push(outcome.stats.iterations);
        }
        assert!(
            results[0] <= results[1],
            "MFI-guided search ({}) should not need more iterations than \
             enumerative search ({})",
            results[0],
            results[1]
        );
    }

    /// Differential oracle over a *benchmark* encoding (the motivating
    /// example's first sketch restricted to a small schema): the persistent
    /// incremental solver and a from-scratch solver rebuilt after every
    /// blocking clause enumerate exactly the same set of hole assignments.
    /// Variable allocation in [`SketchEncoding::encode`] is deterministic,
    /// so blocking clauses recorded from one encoding are valid verbatim in
    /// a rebuilt one.
    #[test]
    fn incremental_encoding_enumeration_matches_from_scratch() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, c: string, d: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let mut phi = crate::value_corr::ValueCorrespondence::new();
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "a"),
            dbir::schema::QualifiedAttr::new("T", "a"),
        );
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "b"),
            dbir::schema::QualifiedAttr::new("T", "c"),
        );
        let sketch =
            generate_sketch(&source, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
        assert!(
            sketch.completion_count() < 5_000,
            "the sketch must stay small enough for full enumeration ({})",
            sketch.completion_count()
        );
        let all_holes: Vec<HoleId> = sketch.holes.iter().map(|h| h.id).collect();

        let enumerate_incremental = || {
            let mut solver = Solver::new();
            let encoding = SketchEncoding::encode(&sketch, &mut solver);
            let mut assignments = std::collections::BTreeSet::new();
            while let SolveResult::Sat(model) = solver.solve() {
                let assignment = encoding.decode(&model);
                let clause = encoding.blocking_clause(&assignment, &all_holes);
                solver.add_clause(&clause);
                assert!(
                    assignments.insert(assignment),
                    "incremental solver repeated an assignment"
                );
            }
            (assignments, solver.solves(), solver.learnt_clauses_kept())
        };

        let enumerate_from_scratch = || {
            let mut blocking: Vec<Vec<Lit>> = Vec::new();
            let mut assignments = std::collections::BTreeSet::new();
            loop {
                let mut solver = Solver::new();
                let encoding = SketchEncoding::encode(&sketch, &mut solver);
                for clause in &blocking {
                    solver.add_clause(clause);
                }
                match solver.solve() {
                    SolveResult::Sat(model) => {
                        let assignment = encoding.decode(&model);
                        blocking.push(encoding.blocking_clause(&assignment, &all_holes));
                        assert!(
                            assignments.insert(assignment),
                            "from-scratch solver repeated an assignment"
                        );
                    }
                    SolveResult::Unsat => return assignments,
                }
            }
        };

        let (incremental, solves, _learnt) = enumerate_incremental();
        let from_scratch = enumerate_from_scratch();
        assert_eq!(
            incremental, from_scratch,
            "incremental and from-scratch enumeration disagree on the assignment set"
        );
        assert_eq!(
            solves as usize,
            incremental.len() + 1,
            "one persistent-solver call per model plus the final Unsat"
        );
    }

    /// A failing sketch exercises the whole speculation protocol (guard
    /// clauses, unit commits, adoption) on every iteration; its trajectory
    /// — iterations, blocking clauses, solver reuses, adoptions and the
    /// recorded event stream — must be identical whether the probe runs on
    /// a worker thread or inline on an exhausted thread budget.
    #[test]
    fn speculation_trajectory_is_thread_budget_independent() {
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, c: string, d: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        let mut phi = crate::value_corr::ValueCorrespondence::new();
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "a"),
            dbir::schema::QualifiedAttr::new("T", "a"),
        );
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "b"),
            dbir::schema::QualifiedAttr::new("T", "c"),
        );
        // Break the query side so completion exhausts the space (see
        // `unsatisfiable_sketch_reports_failure`).
        let mut sketch =
            generate_sketch(&source, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
        for function in &mut sketch.functions {
            if let crate::sketch::BodySketch::Query(crate::sketch::QuerySketch::Project {
                attrs,
                ..
            }) = &mut function.body
            {
                attrs[0] =
                    crate::sketch::AttrSlot::Fixed(dbir::schema::QualifiedAttr::new("T", "d"));
            }
        }
        let oracle = SourceOracle::new(&source, &source_schema);
        let run = |threads: usize| {
            parpool::set_thread_limit(threads);
            let mut events = Vec::new();
            let outcome = complete_sketch(
                &sketch,
                &oracle,
                &target_schema,
                &TestConfig::default(),
                &TestConfig::default(),
                BlockingStrategy::MinimumFailingInput,
                0,
                CompletionControls {
                    events: Some(&mut events),
                    ..CompletionControls::none()
                },
            );
            parpool::set_thread_limit(0);
            (outcome, events)
        };
        let (single, single_events) = run(1);
        let (multi, multi_events) = run(4);
        assert!(single.program.is_none());
        assert_eq!(single.stats, multi.stats);
        assert_eq!(single_events, multi_events);
        assert!(
            single.stats.solver_reuses + single.stats.speculation_adoptions
                >= single.stats.iterations as u64,
            "every candidate after the first came from a reused solver or an adoption"
        );
    }

    #[test]
    fn unsatisfiable_sketch_reports_failure() {
        // A sketch whose only completions are wrong: source projects `b`,
        // but the correspondence maps `b` to an unrelated column.
        let source_schema = Schema::parse("T(a: int, b: string)").unwrap();
        let target_schema = Schema::parse("T(a: int, c: string, d: string)").unwrap();
        let source = parse_program(
            r#"
            update add(a: int, b: string)
                INSERT INTO T VALUES (a: a, b: b);
            query get(a: int)
                SELECT b FROM T WHERE a = a;
            "#,
            &source_schema,
        )
        .unwrap();
        // Deliberately wrong correspondence: insert writes c but query reads d.
        let mut phi = crate::value_corr::ValueCorrespondence::new();
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "a"),
            dbir::schema::QualifiedAttr::new("T", "a"),
        );
        phi.add(
            dbir::schema::QualifiedAttr::new("T", "b"),
            dbir::schema::QualifiedAttr::new("T", "c"),
        );
        let sketch =
            generate_sketch(&source, &phi, &target_schema, &SketchGenConfig::default()).unwrap();
        // The sketch admits only the correct completion (insert c / read c),
        // so completion should succeed; to exercise the failure path we
        // instead demand an impossible iteration budget of candidates by
        // giving an empty-domain... simpler: max_iterations = 0 is unlimited,
        // so use a correspondence that breaks the query instead.
        let oracle = SourceOracle::new(&source, &source_schema);
        let outcome = complete_sketch(
            &sketch,
            &oracle,
            &target_schema,
            &TestConfig::default(),
            &TestConfig::default(),
            BlockingStrategy::MinimumFailingInput,
            0,
            CompletionControls::none(),
        );
        // With this correspondence the completion is actually equivalent
        // (both insert and query agree on column c), so it must succeed —
        // which also demonstrates that renamings are handled end to end.
        assert!(outcome.program.is_some());

        // Now a correspondence that cannot work: query reads d but insert
        // writes c.
        let mut broken = crate::value_corr::ValueCorrespondence::new();
        broken.add(
            dbir::schema::QualifiedAttr::new("T", "a"),
            dbir::schema::QualifiedAttr::new("T", "a"),
        );
        broken.add(
            dbir::schema::QualifiedAttr::new("T", "b"),
            dbir::schema::QualifiedAttr::new("T", "c"),
        );
        // Manually build a sketch where the query projects d instead of c.
        let mut sketch = generate_sketch(
            &source,
            &broken,
            &target_schema,
            &SketchGenConfig::default(),
        )
        .unwrap();
        for function in &mut sketch.functions {
            if let crate::sketch::BodySketch::Query(crate::sketch::QuerySketch::Project {
                attrs,
                ..
            }) = &mut function.body
            {
                attrs[0] =
                    crate::sketch::AttrSlot::Fixed(dbir::schema::QualifiedAttr::new("T", "d"));
            }
        }
        let oracle = SourceOracle::new(&source, &source_schema);
        let outcome = complete_sketch(
            &sketch,
            &oracle,
            &target_schema,
            &TestConfig::default(),
            &TestConfig::default(),
            BlockingStrategy::MinimumFailingInput,
            0,
            CompletionControls::none(),
        );
        assert!(outcome.program.is_none());
        assert!(outcome.stats.iterations >= 1);
    }
}
