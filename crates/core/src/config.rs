//! Configuration of the synthesizer.

use dbir::equiv::TestConfig;

use crate::sketch_gen::SketchGenConfig;
use crate::value_corr::VcConfig;

/// Which sketch-completion algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchSolverKind {
    /// The paper's algorithm: SAT-based enumeration with blocking clauses
    /// derived from minimum failing inputs (Algorithm 2).
    #[default]
    MfiGuided,
    /// The Table 3 baseline: the same SAT encoding, but each failing
    /// candidate blocks only its own full model.
    Enumerative,
}

/// Configuration of a [`crate::Synthesizer`].
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Value-correspondence enumeration parameters.
    pub vc: VcConfig,
    /// Sketch-generation parameters.
    pub sketch: SketchGenConfig,
    /// Bounded-testing parameters used to find minimum failing inputs during
    /// sketch completion.
    pub testing: TestConfig,
    /// Bounded-testing parameters used for the final verification pass
    /// (the stand-in for the Mediator verifier; see DESIGN.md).
    pub verification: TestConfig,
    /// Which sketch solver to use.
    pub solver: SketchSolverKind,
    /// Give up after this many value correspondences (0 means unlimited).
    pub max_value_correspondences: usize,
    /// Give up on a single sketch after this many candidate programs
    /// (0 means unlimited).
    pub max_iterations_per_sketch: usize,
}

impl Default for SynthesisConfig {
    fn default() -> SynthesisConfig {
        SynthesisConfig::standard()
    }
}

impl SynthesisConfig {
    /// The default configuration used throughout the evaluation: MFI-guided
    /// completion, testing depth 2, verification depth 3.
    pub fn standard() -> SynthesisConfig {
        SynthesisConfig {
            vc: VcConfig::default(),
            sketch: SketchGenConfig::default(),
            testing: TestConfig::default(),
            verification: TestConfig::thorough(),
            solver: SketchSolverKind::MfiGuided,
            max_value_correspondences: 64,
            max_iterations_per_sketch: 500_000,
        }
    }

    /// The Table 3 baseline configuration: identical to [`standard`], but
    /// blocking one full model per failing candidate.
    ///
    /// [`standard`]: SynthesisConfig::standard
    pub fn enumerative_baseline() -> SynthesisConfig {
        SynthesisConfig {
            solver: SketchSolverKind::Enumerative,
            ..SynthesisConfig::standard()
        }
    }

    /// The widened-space configuration used to attack the benchmarks that
    /// [`standard`] cannot crack: more value-correspondence candidates and
    /// local options per attribute, an unmapped bonus for attributes the
    /// program never references (so vestigial columns — e.g. ones the
    /// refactoring drops — stop poisoning delete coverage), deeper join
    /// chains, more image combinations, relaxed delete coverage, and a
    /// larger correspondence budget.
    ///
    /// [`standard`]: SynthesisConfig::standard
    pub fn widened() -> SynthesisConfig {
        let mut config = SynthesisConfig::standard();
        config.vc.max_candidates_per_attr = 12;
        config.vc.max_options_per_attr = 48;
        // Above `pair_penalty`, hence above every singleton and pair score:
        // unreferenced attributes rank "unmapped" first.
        config.vc.unmapped_unreferenced_bonus = config.vc.pair_penalty() + 1;
        config.sketch.max_steiner_extra = 3;
        config.sketch.max_image_combinations = 64;
        config.sketch.relax_delete_coverage = true;
        config.max_value_correspondences = 256;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_standard_solver_choice() {
        let config = SynthesisConfig::standard();
        assert_eq!(config.solver, SketchSolverKind::MfiGuided);
        assert_eq!(SketchSolverKind::default(), SketchSolverKind::MfiGuided);
        assert!(config.verification.max_updates >= config.testing.max_updates);
    }

    #[test]
    fn widened_preset_strictly_widens_the_search_space() {
        let standard = SynthesisConfig::standard();
        let widened = SynthesisConfig::widened();
        assert!(widened.vc.max_candidates_per_attr > standard.vc.max_candidates_per_attr);
        assert!(widened.vc.max_options_per_attr > standard.vc.max_options_per_attr);
        assert!(widened.vc.unmapped_unreferenced_bonus > widened.vc.pair_penalty());
        assert!(widened.sketch.max_steiner_extra > standard.sketch.max_steiner_extra);
        assert!(widened.sketch.max_image_combinations > standard.sketch.max_image_combinations);
        assert!(widened.sketch.relax_delete_coverage);
        assert!(widened.max_value_correspondences > standard.max_value_correspondences);
        assert_eq!(widened.solver, SketchSolverKind::MfiGuided);
    }

    #[test]
    fn enumerative_baseline_differs_only_in_solver() {
        let standard = SynthesisConfig::standard();
        let baseline = SynthesisConfig::enumerative_baseline();
        assert_eq!(baseline.solver, SketchSolverKind::Enumerative);
        assert_eq!(
            baseline.max_value_correspondences,
            standard.max_value_correspondences
        );
    }
}
