//! Configuration of the synthesizer.

use dbir::equiv::TestConfig;

use crate::sketch_gen::SketchGenConfig;
use crate::value_corr::VcConfig;

/// Which sketch-completion algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchSolverKind {
    /// The paper's algorithm: SAT-based enumeration with blocking clauses
    /// derived from minimum failing inputs (Algorithm 2).
    #[default]
    MfiGuided,
    /// The Table 3 baseline: the same SAT encoding, but each failing
    /// candidate blocks only its own full model.
    Enumerative,
}

/// Configuration of a [`crate::Synthesizer`].
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Value-correspondence enumeration parameters.
    pub vc: VcConfig,
    /// Sketch-generation parameters.
    pub sketch: SketchGenConfig,
    /// Bounded-testing parameters used to find minimum failing inputs during
    /// sketch completion.
    pub testing: TestConfig,
    /// Bounded-testing parameters used for the final verification pass
    /// (the stand-in for the Mediator verifier; see DESIGN.md).
    pub verification: TestConfig,
    /// Which sketch solver to use.
    pub solver: SketchSolverKind,
    /// Give up after this many value correspondences (0 means unlimited).
    pub max_value_correspondences: usize,
    /// Give up on a single sketch after this many candidate programs
    /// (0 means unlimited).
    pub max_iterations_per_sketch: usize,
}

impl Default for SynthesisConfig {
    fn default() -> SynthesisConfig {
        SynthesisConfig::standard()
    }
}

impl SynthesisConfig {
    /// The default configuration used throughout the evaluation: MFI-guided
    /// completion, testing depth 2, verification depth 3.
    pub fn standard() -> SynthesisConfig {
        SynthesisConfig {
            vc: VcConfig::default(),
            sketch: SketchGenConfig::default(),
            testing: TestConfig::default(),
            verification: TestConfig::thorough(),
            solver: SketchSolverKind::MfiGuided,
            max_value_correspondences: 64,
            max_iterations_per_sketch: 500_000,
        }
    }

    /// The Table 3 baseline configuration: identical to [`standard`], but
    /// blocking one full model per failing candidate.
    ///
    /// [`standard`]: SynthesisConfig::standard
    pub fn enumerative_baseline() -> SynthesisConfig {
        SynthesisConfig {
            solver: SketchSolverKind::Enumerative,
            ..SynthesisConfig::standard()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_standard_solver_choice() {
        let config = SynthesisConfig::standard();
        assert_eq!(config.solver, SketchSolverKind::MfiGuided);
        assert_eq!(SketchSolverKind::default(), SketchSolverKind::MfiGuided);
        assert!(config.verification.max_updates >= config.testing.max_updates);
    }

    #[test]
    fn enumerative_baseline_differs_only_in_solver() {
        let standard = SynthesisConfig::standard();
        let baseline = SynthesisConfig::enumerative_baseline();
        assert_eq!(baseline.solver, SketchSolverKind::Enumerative);
        assert_eq!(
            baseline.max_value_correspondences,
            standard.max_value_correspondences
        );
    }
}
