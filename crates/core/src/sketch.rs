//! Program sketches: database programs with holes (Figure 6 of the paper).
//!
//! A [`Sketch`] mirrors the structure of the source program, but attribute
//! references, join chains and delete table lists may be *holes* — unknowns
//! drawn from a finite domain recorded in the sketch's hole table. The
//! number of completions of a sketch is the product of its hole domain
//! sizes (164,025 for the paper's motivating example).
//!
//! Instantiating a sketch with an assignment of domain indices to holes
//! yields a concrete [`Program`]; instantiation also performs structural
//! validity checks (e.g. a chosen attribute must belong to the chosen join
//! chain) and reports the holes responsible for any violation so the sketch
//! solver can block just that combination.

use std::collections::BTreeMap;
use std::fmt;

use dbir::ast::{
    CmpOp, Function, FunctionBody, JoinChain, Operand, Param, Pred, Program, Query, Update,
};
use dbir::schema::{QualifiedAttr, TableName};

/// Identifies a hole within a [`Sketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HoleId(pub usize);

impl fmt::Display for HoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "??{}", self.0)
    }
}

/// The domain of a hole: the finite set of values it may take.
#[derive(Debug, Clone, PartialEq)]
pub enum HoleDomain {
    /// An unknown attribute drawn from the given candidates.
    Attr(Vec<QualifiedAttr>),
    /// An unknown *insert target*: each candidate is a sequence of join
    /// chains, inserted one after the other (usually a single chain).
    InsertTarget(Vec<Vec<JoinChain>>),
    /// An unknown join chain (for queries, deletes and updates).
    Join(Vec<JoinChain>),
    /// An unknown list of tables to delete from.
    TableList(Vec<Vec<TableName>>),
}

impl HoleDomain {
    /// The number of values in the domain.
    pub fn size(&self) -> usize {
        match self {
            HoleDomain::Attr(v) => v.len(),
            HoleDomain::InsertTarget(v) => v.len(),
            HoleDomain::Join(v) => v.len(),
            HoleDomain::TableList(v) => v.len(),
        }
    }

    /// A stable label for the domain kind, used by the forensics ledger's
    /// hole-domain histogram and the event stream's blocked-domain counts.
    pub fn kind(&self) -> &'static str {
        match self {
            HoleDomain::Attr(_) => "attr",
            HoleDomain::InsertTarget(_) => "insert-target",
            HoleDomain::Join(_) => "join",
            HoleDomain::TableList(_) => "table-list",
        }
    }
}

/// A hole together with its domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Hole {
    /// The hole's identifier (its index in the sketch's hole table).
    pub id: HoleId,
    /// The domain of values it ranges over.
    pub domain: HoleDomain,
}

/// An attribute position: either already determined by the value
/// correspondence or an attribute hole.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSlot {
    /// A fixed attribute.
    Fixed(QualifiedAttr),
    /// A hole over candidate attributes.
    Hole(HoleId),
}

/// A predicate with attribute slots instead of concrete attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum PredSketch {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Attribute-to-attribute comparison.
    CmpAttr {
        /// Left attribute slot.
        lhs: AttrSlot,
        /// Operator.
        op: CmpOp,
        /// Right attribute slot.
        rhs: AttrSlot,
    },
    /// Attribute-to-value comparison.
    CmpValue {
        /// Left attribute slot.
        lhs: AttrSlot,
        /// Operator.
        op: CmpOp,
        /// Constant or parameter.
        rhs: Operand,
    },
    /// Membership in a sub-query.
    In {
        /// Attribute slot whose value is tested.
        attr: AttrSlot,
        /// The sub-query sketch.
        query: Box<QuerySketch>,
    },
    /// Conjunction.
    And(Box<PredSketch>, Box<PredSketch>),
    /// Disjunction.
    Or(Box<PredSketch>, Box<PredSketch>),
    /// Negation.
    Not(Box<PredSketch>),
}

/// A query with holes.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySketch {
    /// Projection onto attribute slots.
    Project {
        /// Projected attribute slots in output order.
        attrs: Vec<AttrSlot>,
        /// Input sketch.
        input: Box<QuerySketch>,
    },
    /// Selection.
    Filter {
        /// Predicate sketch.
        pred: PredSketch,
        /// Input sketch.
        input: Box<QuerySketch>,
    },
    /// A join-chain hole.
    Join(HoleId),
}

/// An update statement with holes.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateSketch {
    /// Insert into an unknown target (an [`HoleDomain::InsertTarget`] hole).
    Insert {
        /// The insert-target hole.
        target: HoleId,
        /// Attribute slots and the values written to them.
        values: Vec<(AttrSlot, Operand)>,
    },
    /// Delete from an unknown table list driven by an unknown join chain.
    Delete {
        /// The table-list hole.
        tables: HoleId,
        /// The join-chain hole.
        join: HoleId,
        /// Predicate sketch.
        pred: PredSketch,
    },
    /// Update an unknown attribute driven by an unknown join chain.
    UpdateAttr {
        /// The join-chain hole.
        join: HoleId,
        /// Predicate sketch.
        pred: PredSketch,
        /// The attribute slot being written.
        attr: AttrSlot,
        /// The new value.
        value: Operand,
    },
    /// Sequential composition.
    Seq(Vec<UpdateSketch>),
}

/// The body of a function sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum BodySketch {
    /// A query sketch.
    Query(QuerySketch),
    /// An update sketch.
    Update(UpdateSketch),
}

/// A function whose body is a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSketch {
    /// Function name (same as in the source program).
    pub name: String,
    /// Parameters (same as in the source program).
    pub params: Vec<Param>,
    /// Body sketch.
    pub body: BodySketch,
}

/// An assignment of a domain index to every hole.
pub type HoleAssignment = Vec<usize>;

/// The reason an instantiation is structurally invalid, together with the
/// holes whose joint assignment caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantiationConflict {
    /// Human-readable description of the conflict.
    pub reason: String,
    /// The holes that jointly cause the conflict.
    pub holes: Vec<HoleId>,
}

/// A program sketch: function sketches plus the hole table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sketch {
    /// The function sketches, in source order.
    pub functions: Vec<FunctionSketch>,
    /// The hole table, indexed by [`HoleId`].
    pub holes: Vec<Hole>,
    /// The holes appearing in each function, keyed by function name.
    pub holes_by_function: BTreeMap<String, Vec<HoleId>>,
}

impl Sketch {
    /// Creates an empty sketch.
    pub fn new() -> Sketch {
        Sketch::default()
    }

    /// Allocates a new hole with the given domain.
    pub fn add_hole(&mut self, domain: HoleDomain) -> HoleId {
        let id = HoleId(self.holes.len());
        self.holes.push(Hole { id, domain });
        id
    }

    /// Records that `hole` appears inside `function`.
    pub fn attach_hole(&mut self, function: &str, hole: HoleId) {
        self.holes_by_function
            .entry(function.to_string())
            .or_default()
            .push(hole);
    }

    /// The hole with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (hole ids are only created by
    /// [`Sketch::add_hole`], so this indicates a bug).
    pub fn hole(&self, id: HoleId) -> &Hole {
        &self.holes[id.0]
    }

    /// The holes appearing in a function (empty if the function has none).
    pub fn holes_in_function(&self, function: &str) -> &[HoleId] {
        self.holes_by_function
            .get(function)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The number of completions of this sketch: the product of all hole
    /// domain sizes (the paper reports 164,025 for the motivating example).
    pub fn completion_count(&self) -> u128 {
        self.holes
            .iter()
            .map(|h| h.domain.size() as u128)
            .fold(1u128, |acc, size| acc.saturating_mul(size.max(1)))
    }

    /// Returns `true` if some hole has an empty domain (the sketch has no
    /// completions).
    pub fn has_empty_hole(&self) -> bool {
        self.holes.iter().any(|h| h.domain.size() == 0)
    }

    fn attr_of(&self, slot: &AttrSlot, assignment: &HoleAssignment) -> QualifiedAttr {
        match slot {
            AttrSlot::Fixed(attr) => attr.clone(),
            AttrSlot::Hole(id) => match &self.hole(*id).domain {
                HoleDomain::Attr(candidates) => candidates[assignment[id.0]].clone(),
                other => panic!("hole {id} used as attribute but has domain {other:?}"),
            },
        }
    }

    fn slot_holes(slot: &AttrSlot) -> Vec<HoleId> {
        match slot {
            AttrSlot::Fixed(_) => Vec::new(),
            AttrSlot::Hole(id) => vec![*id],
        }
    }

    fn instantiate_pred(
        &self,
        pred: &PredSketch,
        assignment: &HoleAssignment,
        chain: &JoinChain,
        conflicts: &mut Vec<InstantiationConflict>,
        join_hole: HoleId,
    ) -> Pred {
        match pred {
            PredSketch::True => Pred::True,
            PredSketch::False => Pred::False,
            PredSketch::CmpAttr { lhs, op, rhs } => {
                let lhs_attr = self.attr_of(lhs, assignment);
                let rhs_attr = self.attr_of(rhs, assignment);
                for (slot, attr) in [(lhs, &lhs_attr), (rhs, &rhs_attr)] {
                    self.check_attr_in_chain(slot, attr, chain, join_hole, conflicts);
                }
                Pred::CmpAttr {
                    lhs: lhs_attr,
                    op: *op,
                    rhs: rhs_attr,
                }
            }
            PredSketch::CmpValue { lhs, op, rhs } => {
                let attr = self.attr_of(lhs, assignment);
                self.check_attr_in_chain(lhs, &attr, chain, join_hole, conflicts);
                Pred::CmpValue {
                    lhs: attr,
                    op: *op,
                    rhs: rhs.clone(),
                }
            }
            PredSketch::In { attr, query } => {
                let attr_value = self.attr_of(attr, assignment);
                self.check_attr_in_chain(attr, &attr_value, chain, join_hole, conflicts);
                let query = self.instantiate_query(query, assignment, conflicts);
                Pred::In {
                    attr: attr_value,
                    query: Box::new(query),
                }
            }
            PredSketch::And(a, b) => Pred::And(
                Box::new(self.instantiate_pred(a, assignment, chain, conflicts, join_hole)),
                Box::new(self.instantiate_pred(b, assignment, chain, conflicts, join_hole)),
            ),
            PredSketch::Or(a, b) => Pred::Or(
                Box::new(self.instantiate_pred(a, assignment, chain, conflicts, join_hole)),
                Box::new(self.instantiate_pred(b, assignment, chain, conflicts, join_hole)),
            ),
            PredSketch::Not(p) => Pred::Not(Box::new(
                self.instantiate_pred(p, assignment, chain, conflicts, join_hole),
            )),
        }
    }

    fn check_attr_in_chain(
        &self,
        slot: &AttrSlot,
        attr: &QualifiedAttr,
        chain: &JoinChain,
        join_hole: HoleId,
        conflicts: &mut Vec<InstantiationConflict>,
    ) {
        if !chain.contains_table(&attr.table) {
            let mut holes = Self::slot_holes(slot);
            holes.push(join_hole);
            conflicts.push(InstantiationConflict {
                reason: format!("attribute {attr} is not available in the chosen join chain"),
                holes,
            });
        }
    }

    fn join_of(&self, id: HoleId, assignment: &HoleAssignment) -> JoinChain {
        match &self.hole(id).domain {
            HoleDomain::Join(chains) => chains[assignment[id.0]].clone(),
            other => panic!("hole {id} used as join chain but has domain {other:?}"),
        }
    }

    fn instantiate_query(
        &self,
        query: &QuerySketch,
        assignment: &HoleAssignment,
        conflicts: &mut Vec<InstantiationConflict>,
    ) -> Query {
        // Locate the join hole at the leaf to validate attribute choices.
        fn leaf_join(query: &QuerySketch) -> HoleId {
            match query {
                QuerySketch::Project { input, .. } | QuerySketch::Filter { input, .. } => {
                    leaf_join(input)
                }
                QuerySketch::Join(id) => *id,
            }
        }
        let join_hole = leaf_join(query);
        let chain = self.join_of(join_hole, assignment);
        self.instantiate_query_inner(query, assignment, &chain, join_hole, conflicts)
    }

    fn instantiate_query_inner(
        &self,
        query: &QuerySketch,
        assignment: &HoleAssignment,
        chain: &JoinChain,
        join_hole: HoleId,
        conflicts: &mut Vec<InstantiationConflict>,
    ) -> Query {
        match query {
            QuerySketch::Join(id) => Query::Join(self.join_of(*id, assignment)),
            QuerySketch::Filter { pred, input } => Query::Filter {
                pred: self.instantiate_pred(pred, assignment, chain, conflicts, join_hole),
                input: Box::new(
                    self.instantiate_query_inner(input, assignment, chain, join_hole, conflicts),
                ),
            },
            QuerySketch::Project { attrs, input } => {
                let attrs: Vec<QualifiedAttr> = attrs
                    .iter()
                    .map(|slot| {
                        let attr = self.attr_of(slot, assignment);
                        self.check_attr_in_chain(slot, &attr, chain, join_hole, conflicts);
                        attr
                    })
                    .collect();
                Query::Project {
                    attrs,
                    input: Box::new(
                        self.instantiate_query_inner(
                            input, assignment, chain, join_hole, conflicts,
                        ),
                    ),
                }
            }
        }
    }

    fn instantiate_update(
        &self,
        update: &UpdateSketch,
        assignment: &HoleAssignment,
        conflicts: &mut Vec<InstantiationConflict>,
    ) -> Update {
        match update {
            UpdateSketch::Seq(list) => Update::Seq(
                list.iter()
                    .map(|u| self.instantiate_update(u, assignment, conflicts))
                    .collect(),
            ),
            UpdateSketch::Insert { target, values } => {
                let chains = match &self.hole(*target).domain {
                    HoleDomain::InsertTarget(options) => options[assignment[target.0]].clone(),
                    other => panic!("hole {target} used as insert target but has domain {other:?}"),
                };
                let resolved: Vec<(QualifiedAttr, Operand)> = values
                    .iter()
                    .map(|(slot, operand)| (self.attr_of(slot, assignment), operand.clone()))
                    .collect();
                // Each attribute must land in exactly one of the chains; a
                // chain receives the attributes whose table it contains.
                let mut inserts = Vec::new();
                for chain in &chains {
                    let chain_values: Vec<(QualifiedAttr, Operand)> = resolved
                        .iter()
                        .filter(|(attr, _)| chain.contains_table(&attr.table))
                        .cloned()
                        .collect();
                    inserts.push(Update::Insert {
                        join: chain.clone(),
                        values: chain_values,
                    });
                }
                // Attributes not covered by any chain are a structural
                // conflict between the attribute hole and the target hole.
                for ((slot, _), (attr, _)) in values.iter().zip(&resolved) {
                    if !chains.iter().any(|c| c.contains_table(&attr.table)) {
                        let mut holes = Self::slot_holes(slot);
                        holes.push(*target);
                        conflicts.push(InstantiationConflict {
                            reason: format!(
                                "inserted attribute {attr} is not covered by the chosen target"
                            ),
                            holes,
                        });
                    }
                }
                if inserts.len() == 1 {
                    inserts.pop().expect("length checked")
                } else {
                    Update::Seq(inserts)
                }
            }
            UpdateSketch::Delete { tables, join, pred } => {
                let chain = self.join_of(*join, assignment);
                let table_list = match &self.hole(*tables).domain {
                    HoleDomain::TableList(options) => options[assignment[tables.0]].clone(),
                    other => panic!("hole {tables} used as table list but has domain {other:?}"),
                };
                for table in &table_list {
                    if !chain.contains_table(table) {
                        conflicts.push(InstantiationConflict {
                            reason: format!(
                                "deleted table {table} is not part of the chosen join chain"
                            ),
                            holes: vec![*tables, *join],
                        });
                    }
                }
                Update::Delete {
                    tables: table_list,
                    join: chain.clone(),
                    pred: self.instantiate_pred(pred, assignment, &chain, conflicts, *join),
                }
            }
            UpdateSketch::UpdateAttr {
                join,
                pred,
                attr,
                value,
            } => {
                let chain = self.join_of(*join, assignment);
                let attr_value = self.attr_of(attr, assignment);
                self.check_attr_in_chain(attr, &attr_value, &chain, *join, conflicts);
                Update::UpdateAttr {
                    join: chain.clone(),
                    pred: self.instantiate_pred(pred, assignment, &chain, conflicts, *join),
                    attr: attr_value,
                    value: value.clone(),
                }
            }
        }
    }

    /// Instantiates the sketch under the given hole assignment.
    ///
    /// # Errors
    ///
    /// Returns the list of structural conflicts (each naming the holes whose
    /// joint assignment is invalid) if the assignment does not correspond to
    /// a well-formed program.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the hole table or an index is
    /// out of its hole's domain; the sketch solver always supplies complete
    /// in-range assignments.
    pub fn instantiate(
        &self,
        assignment: &HoleAssignment,
    ) -> Result<Program, Vec<InstantiationConflict>> {
        assert_eq!(
            assignment.len(),
            self.holes.len(),
            "assignment must cover every hole"
        );
        let mut conflicts = Vec::new();
        let mut functions = Vec::new();
        for sketch_fn in &self.functions {
            let body = match &sketch_fn.body {
                BodySketch::Query(query) => {
                    FunctionBody::Query(self.instantiate_query(query, assignment, &mut conflicts))
                }
                BodySketch::Update(update) => FunctionBody::Update(self.instantiate_update(
                    update,
                    assignment,
                    &mut conflicts,
                )),
            };
            functions.push(Function {
                name: sketch_fn.name.clone(),
                params: sketch_fn.params.clone(),
                body,
            });
        }
        if conflicts.is_empty() {
            Ok(Program::new(functions))
        } else {
            Err(conflicts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::value::DataType;

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    /// A tiny hand-built sketch: one query over a join hole with an
    /// attribute hole, one insert over an insert-target hole.
    fn tiny_sketch() -> Sketch {
        let mut sketch = Sketch::new();
        let join = sketch.add_hole(HoleDomain::Join(vec![
            JoinChain::table("A"),
            JoinChain::table("A").join(JoinChain::table("B"), qa("A", "id"), qa("B", "id")),
        ]));
        let attr = sketch.add_hole(HoleDomain::Attr(vec![qa("A", "x"), qa("B", "y")]));
        sketch.attach_hole("get", join);
        sketch.attach_hole("get", attr);
        sketch.functions.push(FunctionSketch {
            name: "get".to_string(),
            params: vec![Param::new("id", DataType::Int)],
            body: BodySketch::Query(QuerySketch::Project {
                attrs: vec![AttrSlot::Hole(attr)],
                input: Box::new(QuerySketch::Filter {
                    pred: PredSketch::CmpValue {
                        lhs: AttrSlot::Fixed(qa("A", "id")),
                        op: CmpOp::Eq,
                        rhs: Operand::param("id"),
                    },
                    input: Box::new(QuerySketch::Join(join)),
                }),
            }),
        });
        let target = sketch.add_hole(HoleDomain::InsertTarget(vec![
            vec![JoinChain::table("A")],
            vec![JoinChain::table("A"), JoinChain::table("B")],
        ]));
        sketch.attach_hole("add", target);
        sketch.functions.push(FunctionSketch {
            name: "add".to_string(),
            params: vec![
                Param::new("id", DataType::Int),
                Param::new("x", DataType::Int),
            ],
            body: BodySketch::Update(UpdateSketch::Insert {
                target,
                values: vec![
                    (AttrSlot::Fixed(qa("A", "id")), Operand::param("id")),
                    (AttrSlot::Fixed(qa("A", "x")), Operand::param("x")),
                ],
            }),
        });
        sketch
    }

    #[test]
    fn completion_count_is_product_of_domains() {
        let sketch = tiny_sketch();
        assert_eq!(sketch.completion_count(), 2 * 2 * 2);
        assert!(!sketch.has_empty_hole());
    }

    #[test]
    fn holes_are_tracked_per_function() {
        let sketch = tiny_sketch();
        assert_eq!(sketch.holes_in_function("get").len(), 2);
        assert_eq!(sketch.holes_in_function("add").len(), 1);
        assert!(sketch.holes_in_function("missing").is_empty());
    }

    #[test]
    fn valid_instantiation_produces_program() {
        let sketch = tiny_sketch();
        // join = A ⋈ B, attr = B.y, insert target = [A].
        let program = sketch.instantiate(&vec![1, 1, 0]).unwrap();
        assert_eq!(program.functions.len(), 2);
        match &program.functions[0].body {
            FunctionBody::Query(Query::Project { attrs, .. }) => {
                assert_eq!(attrs[0], qa("B", "y"));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn invalid_attr_choice_reports_conflicting_holes() {
        let sketch = tiny_sketch();
        // join = A only, attr = B.y: B is not in the chain.
        let err = sketch.instantiate(&vec![0, 1, 0]).unwrap_err();
        assert!(!err.is_empty());
        assert!(err[0].holes.contains(&HoleId(0)));
        assert!(err[0].holes.contains(&HoleId(1)));
    }

    #[test]
    fn multi_chain_insert_splits_values_per_chain() {
        let sketch = tiny_sketch();
        // insert target = [A, B] (two separate single-table inserts).
        let program = sketch.instantiate(&vec![0, 0, 1]).unwrap();
        match &program.functions[1].body {
            FunctionBody::Update(Update::Seq(stmts)) => {
                assert_eq!(stmts.len(), 2);
                match &stmts[0] {
                    Update::Insert { values, .. } => assert_eq!(values.len(), 2),
                    other => panic!("expected insert, got {other:?}"),
                }
                match &stmts[1] {
                    Update::Insert { values, .. } => assert!(values.is_empty()),
                    other => panic!("expected insert, got {other:?}"),
                }
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "assignment must cover every hole")]
    fn short_assignment_panics() {
        let sketch = tiny_sketch();
        let _ = sketch.instantiate(&vec![0]);
    }
}
