//! Integration tests for the two capabilities the pipeline API rides on:
//! deterministic observer event streams and first-class cancellation.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use dbir::parser::parse_program;
use dbir::Schema;
use migrator::{
    CancelToken, EventLog, SynthesisConfig, SynthesisEvent, SynthesisOutcome, Synthesizer,
};

/// Serializes tests that mutate the global thread limit.
fn limit_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A scenario that fails synthesis *after* exploring several
/// correspondences (two source strings must share one target column, so
/// every candidate correspondence produces a sketch that cannot complete) —
/// the worst case for parallel event delivery to get ordering wrong.
fn failing_scenario() -> (Schema, Schema, dbir::Program) {
    let source_schema = Schema::parse("T(a: int, b: string, c: string)").unwrap();
    let target_schema = Schema::parse("T(a: int, d: string)").unwrap();
    let source = parse_program(
        r#"
        update add(a: int, b: string, c: string)
            INSERT INTO T VALUES (a: a, b: b, c: c);
        query get(a: int)
            SELECT b, c FROM T WHERE a = a;
        "#,
        &source_schema,
    )
    .unwrap();
    (source_schema, target_schema, source)
}

/// The motivating example: synthesizes, with a non-trivial search.
fn motivating_scenario() -> (Schema, Schema, dbir::Program) {
    let source_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, IPic: binary)\n\
         TA(TaId: int, TName: string, TPic: binary)",
    )
    .unwrap();
    let target_schema = Schema::parse(
        "Class(ClassId: int, InstId: int, TaId: int)\n\
         Instructor(InstId: int, IName: string, PicId: id)\n\
         TA(TaId: int, TName: string, PicId: id)\n\
         Picture(PicId: id, Pic: binary)",
    )
    .unwrap();
    let source = parse_program(
        r#"
        update addInstructor(id: int, name: string, pic: binary)
            INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
        update deleteInstructor(id: int)
            DELETE Instructor FROM Instructor WHERE InstId = id;
        query getInstructorInfo(id: int)
            SELECT IName, IPic FROM Instructor WHERE InstId = id;
        update addTA(id: int, name: string, pic: binary)
            INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
        update deleteTA(id: int)
            DELETE TA FROM TA WHERE TaId = id;
        query getTAInfo(id: int)
            SELECT TName, TPic FROM TA WHERE TaId = id;
        "#,
        &source_schema,
    )
    .unwrap();
    (source_schema, target_schema, source)
}

fn event_stream_at(threads: usize, scenario: &(Schema, Schema, dbir::Program)) -> String {
    let (source_schema, target_schema, source) = scenario;
    let log = Arc::new(EventLog::new());
    parpool::set_thread_limit(threads);
    let result = Synthesizer::new(SynthesisConfig::standard())
        .with_observer(log.clone())
        .synthesize(source, source_schema, target_schema);
    parpool::set_thread_limit(0);
    // The stream must agree with the statistics it narrates.
    let enumerated = log
        .events()
        .iter()
        .filter(|e| matches!(e, SynthesisEvent::CorrespondenceEnumerated { .. }))
        .count();
    assert_eq!(enumerated, result.stats.value_correspondences);
    log.render()
}

/// The observer's main stream is byte-identical at one and four threads,
/// for both a failing search (explores the whole budget) and a succeeding
/// one (stops at the winning correspondence).
#[test]
fn event_stream_is_byte_identical_across_thread_budgets() {
    let _guard = limit_lock();
    for scenario in [failing_scenario(), motivating_scenario()] {
        let single = event_stream_at(1, &scenario);
        let multi = event_stream_at(4, &scenario);
        assert!(!single.is_empty());
        assert_eq!(
            single, multi,
            "observer stream diverged between 1 and 4 threads"
        );
    }
}

#[test]
fn successful_run_narrates_through_to_solved() {
    let _guard = limit_lock();
    let (source_schema, target_schema, source) = motivating_scenario();
    let log = Arc::new(EventLog::new());
    let result = Synthesizer::new(SynthesisConfig::standard())
        .with_observer(log.clone())
        .synthesize(&source, &source_schema, &target_schema);
    assert!(result.succeeded());
    assert_eq!(result.outcome, SynthesisOutcome::Solved);
    let events = log.events();
    assert!(matches!(
        events.first(),
        Some(SynthesisEvent::CorrespondenceEnumerated { index: 0, .. })
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, SynthesisEvent::SketchGenerated { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, SynthesisEvent::CandidateChecked { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, SynthesisEvent::MfiFound { .. })));
    assert!(matches!(events.last(), Some(SynthesisEvent::Solved { .. })));
}

#[test]
fn exhausted_budget_is_no_solution_not_timeout() {
    let _guard = limit_lock();
    let (source_schema, target_schema, source) = failing_scenario();
    let result = Synthesizer::new(SynthesisConfig::standard()).synthesize(
        &source,
        &source_schema,
        &target_schema,
    );
    assert!(!result.succeeded());
    assert_eq!(result.outcome, SynthesisOutcome::NoSolution);
}

/// A tiny wall-clock budget must be reported as `Timeout` — distinctly from
/// unsatisfiability — with whatever statistics the run accumulated.
#[test]
fn expired_deadline_reports_timeout_with_partial_stats() {
    let _guard = limit_lock();
    let (source_schema, target_schema, source) = motivating_scenario();
    let log = Arc::new(EventLog::new());
    let result = Synthesizer::new(SynthesisConfig::standard())
        .with_observer(log.clone())
        .with_deadline(Duration::ZERO)
        .synthesize(&source, &source_schema, &target_schema);
    assert!(!result.succeeded());
    assert_eq!(result.outcome, SynthesisOutcome::Timeout);
    // Partial statistics: the run stopped before exhausting the budget the
    // unbounded run needs (the motivating example requires > 1 candidate).
    assert!(result.stats.value_correspondences <= 1);
    assert!(matches!(
        log.events().last(),
        Some(SynthesisEvent::RunInterrupted {
            reason: migrator::CancelReason::DeadlineExceeded
        })
    ));
}

#[test]
fn explicit_cancellation_reports_cancelled() {
    let _guard = limit_lock();
    let (source_schema, target_schema, source) = motivating_scenario();
    let token = CancelToken::new();
    token.cancel();
    let result = Synthesizer::new(SynthesisConfig::standard())
        .with_cancel(token)
        .synthesize(&source, &source_schema, &target_schema);
    assert!(!result.succeeded());
    assert_eq!(result.outcome, SynthesisOutcome::Cancelled);
}

/// A deadline generous enough for the whole run changes nothing: same
/// program, same statistics, `Solved`.
#[test]
fn unexpired_deadline_does_not_perturb_the_run() {
    let _guard = limit_lock();
    let (source_schema, target_schema, source) = motivating_scenario();
    let plain = Synthesizer::new(SynthesisConfig::standard()).synthesize(
        &source,
        &source_schema,
        &target_schema,
    );
    let bounded = Synthesizer::new(SynthesisConfig::standard())
        .with_deadline(Duration::from_secs(3600))
        .synthesize(&source, &source_schema, &target_schema);
    assert_eq!(plain.outcome, SynthesisOutcome::Solved);
    assert_eq!(bounded.outcome, SynthesisOutcome::Solved);
    assert_eq!(plain.program, bounded.program);
    assert_eq!(
        plain.stats.value_correspondences,
        bounded.stats.value_correspondences
    );
    assert_eq!(plain.stats.iterations, bounded.stats.iterations);
    assert_eq!(plain.stats.sequences_tested, bounded.stats.sequences_tested);
}
