//! A minimal scoped fork-join pool with a **global thread budget** and a
//! **deterministic early-stop** contract.
//!
//! This workspace builds offline, so `rayon` is not available; this crate is
//! the small slice of it the synthesizer needs, with two deliberate twists:
//!
//! 1. **One global budget, nested use welcome.** Parallelism in the
//!    synthesizer appears at several altitudes at once — value
//!    correspondences fan out, and each correspondence's bounded checks fan
//!    out internally. A fixed-size pool per call site would multiply; here
//!    every [`par_map_stop`] call *tries* to borrow extra worker tokens from
//!    one process-wide budget and simply runs inline on the caller's thread
//!    when none are free. Nothing ever blocks waiting for a token, so nested
//!    calls cannot deadlock, and total live threads stay ≈ the configured
//!    limit regardless of nesting depth.
//!
//! 2. **Lowest index wins.** Parallel search must not change *what* the
//!    search finds. [`par_map_stop`] lets tasks produce "stopping" results
//!    (a counterexample, a successful candidate) and guarantees that every
//!    item with an index *below* the lowest stopping index is fully
//!    processed, whatever order the workers actually ran in. The caller can
//!    then merge results in index order and obtain byte-identical outcomes
//!    and statistics at any thread count — including 1.
//!
//! Items at indices *above* the lowest stopping index may be skipped
//! (`None` in the result vector) or handed a cancellation signal through
//! [`StopCtx`] mid-flight; their results are by construction irrelevant to
//! an index-ordered merge that stops at the winner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's wall-clock deadline passed.
    DeadlineExceeded,
}

/// Shared state of a [`CancelToken`] and all its clones.
#[derive(Debug)]
struct CancelState {
    /// 0 = live, 1 = explicitly cancelled, 2 = deadline exceeded. Latched:
    /// the first cause to fire wins and is never overwritten, so a run that
    /// times out reports `DeadlineExceeded` even if someone also calls
    /// `cancel()` during teardown.
    reason: AtomicU8,
    deadline: Option<Instant>,
    /// A parent token this one mirrors: when the parent fires, this token
    /// fires too (latching the parent's cause). Lets a per-run deadline
    /// token compose with a long-lived user-cancellation token.
    parent: Option<CancelToken>,
}

/// A cooperative cancellation signal with an optional wall-clock deadline.
///
/// This is the public face of the cancellation machinery the parallel
/// search already uses internally ([`StopCtx`]): long-running work —
/// correspondence fan-out, sketch completion, the bounded-testing DFS walk —
/// polls [`CancelToken::is_cancelled`] at safe points and unwinds cleanly
/// with partial statistics when it returns `true`.
///
/// Tokens are cheap to clone (an `Arc`); all clones observe the same state,
/// so one token can be handed to a synthesis run and cancelled from another
/// thread. The *cause* is latched: [`CancelToken::reason`] reports whether
/// the token fired by explicit [`CancelToken::cancel`] or by its deadline,
/// which lets callers distinguish a timeout from a user abort.
///
/// A default-constructed token never fires on its own; polling it is a
/// single relaxed atomic load (plus one clock read per poll when a deadline
/// is set and the token has not fired yet).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl Default for CancelState {
    fn default() -> CancelState {
        CancelState {
            reason: AtomicU8::new(0),
            deadline: None,
            parent: None,
        }
    }
}

impl CancelToken {
    /// A token that fires only on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that (also) fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                reason: AtomicU8::new(0),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A token that (also) fires `budget` from now.
    pub fn with_timeout(budget: Duration) -> CancelToken {
        // A budget large enough to overflow `Instant` arithmetic means "no
        // deadline in any practical sense" — represent it as such.
        match Instant::now().checked_add(budget) {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::new(),
        }
    }

    /// A child token that fires when **either** this token fires or
    /// `budget` (measured from now) elapses — whichever comes first, with
    /// the first cause latched.
    ///
    /// This is how a per-run wall-clock budget composes with a long-lived
    /// user-cancellation token: the child carries the deadline, the parent
    /// stays cancellable from other threads, and pollers of the child see
    /// both.
    pub fn linked_with_timeout(&self, budget: Duration) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                reason: AtomicU8::new(0),
                deadline: Instant::now().checked_add(budget),
                parent: Some(self.clone()),
            }),
        }
    }

    /// The wall-clock deadline, if the token has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.deadline
    }

    /// Fires the token explicitly. Idempotent; a token that already fired
    /// (by either cause) keeps its original [`CancelToken::reason`].
    pub fn cancel(&self) {
        let _ = self
            .state
            .reason
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Returns `true` once the token has fired — by explicit
    /// [`CancelToken::cancel`], by its deadline passing, or by a linked
    /// parent token firing (see [`CancelToken::linked_with_timeout`]). The
    /// deadline and the parent are checked (and the cause latched) lazily,
    /// on poll.
    pub fn is_cancelled(&self) -> bool {
        if self.state.reason.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if let Some(parent) = &self.state.parent {
            if parent.is_cancelled() {
                let cause = match parent.reason() {
                    Some(CancelReason::DeadlineExceeded) => 2,
                    _ => 1,
                };
                let _ = self.state.reason.compare_exchange(
                    0,
                    cause,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return true;
            }
        }
        if let Some(deadline) = self.state.deadline {
            if Instant::now() >= deadline {
                let _ =
                    self.state
                        .reason
                        .compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Why the token fired, or `None` while it is still live. Polls the
    /// deadline like [`CancelToken::is_cancelled`].
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.state.reason.load(Ordering::Relaxed) {
            1 => Some(CancelReason::Cancelled),
            2 => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }
}

/// The process-wide thread budget.
///
/// `limit` is the maximum number of threads that may compute concurrently
/// (callers included); `extra_in_use` counts borrowed *worker* tokens
/// (spawned threads), which may be at most `limit - 1`.
struct Budget {
    limit: AtomicUsize,
    extra_in_use: AtomicUsize,
}

fn budget() -> &'static Budget {
    static BUDGET: Budget = Budget {
        limit: AtomicUsize::new(0), // 0 = not yet initialized, use default
        extra_in_use: AtomicUsize::new(0),
    };
    &BUDGET
}

fn default_limit() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the global thread limit (total concurrently computing threads,
/// caller included). `0` resets to the machine's available parallelism.
///
/// Takes effect for subsequent [`par_map_stop`] calls; already-borrowed
/// worker tokens are unaffected.
pub fn set_thread_limit(threads: usize) {
    budget().limit.store(threads, Ordering::Relaxed);
}

/// The current global thread limit.
pub fn thread_limit() -> usize {
    match budget().limit.load(Ordering::Relaxed) {
        0 => default_limit(),
        n => n,
    }
}

/// Tries to borrow up to `want` extra worker tokens, returning how many were
/// actually acquired (possibly zero). Never blocks.
fn try_acquire(want: usize) -> usize {
    let b = budget();
    let mut acquired = 0;
    while acquired < want {
        let in_use = b.extra_in_use.load(Ordering::Relaxed);
        if in_use + 1 >= thread_limit() {
            break;
        }
        if b.extra_in_use
            .compare_exchange(in_use, in_use + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            acquired += 1;
        }
    }
    acquired
}

fn release(tokens: usize) {
    budget().extra_in_use.fetch_sub(tokens, Ordering::Relaxed);
}

/// A long-lived, all-or-nothing reservation of worker tokens from the
/// global thread budget, released on drop.
///
/// [`par_map_stop`] borrows tokens for the duration of one call; a
/// *scheduler* — the `served` job server is the motivating client — instead
/// needs to account for a thread that computes *outside* any `parpool`
/// call: a job runner thread that will itself make nested `par_map_stop`
/// calls. Reserving one token per running job makes those runner threads
/// visible to every other borrower, so N concurrent jobs plus their nested
/// fan-outs stay ≈ the configured limit instead of N × limit.
///
/// The reservation is all-or-nothing: [`BudgetReservation::try_new`]
/// either acquires exactly `tokens` tokens or none, and never blocks — a
/// scheduler that cannot reserve keeps its job queued and retries.
#[derive(Debug)]
pub struct BudgetReservation {
    tokens: usize,
}

impl BudgetReservation {
    /// Tries to reserve exactly `tokens` worker tokens from the global
    /// budget. Returns `None` (acquiring nothing) when that many are not
    /// free under the current [`thread_limit`]. Never blocks.
    pub fn try_new(tokens: usize) -> Option<BudgetReservation> {
        if tokens == 0 {
            return Some(BudgetReservation { tokens: 0 });
        }
        let b = budget();
        loop {
            let in_use = b.extra_in_use.load(Ordering::Relaxed);
            // Same headroom rule as `try_acquire`: the caller thread counts
            // as one, so worker tokens top out at `limit - 1`.
            if in_use + tokens >= thread_limit() {
                return None;
            }
            if b.extra_in_use
                .compare_exchange(
                    in_use,
                    in_use + tokens,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return Some(BudgetReservation { tokens });
            }
        }
    }

    /// How many tokens this reservation holds.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Drop for BudgetReservation {
    fn drop(&mut self) {
        if self.tokens > 0 {
            release(self.tokens);
        }
    }
}

/// Cancellation signal shared by the tasks of one [`par_map_stop`] call.
///
/// Holds the lowest index (so far) whose task produced a stopping result.
/// Tasks at higher indices can poll [`StopCtx::cancelled`] and bail out
/// early; their results are never read by an index-ordered merge.
#[derive(Debug)]
pub struct StopCtx {
    stop_before: AtomicUsize,
}

impl StopCtx {
    fn new() -> StopCtx {
        StopCtx {
            stop_before: AtomicUsize::new(usize::MAX),
        }
    }

    fn record_stop(&self, index: usize) {
        self.stop_before.fetch_min(index, Ordering::Relaxed);
    }

    fn skip(&self, index: usize) -> bool {
        index > self.stop_before.load(Ordering::Relaxed)
    }

    /// Returns `true` if the task at `index` no longer needs to finish: some
    /// task at a *lower* index already produced a stopping result, so this
    /// task's result cannot be the winner of an index-ordered merge.
    pub fn cancelled(&self, index: usize) -> bool {
        self.skip(index)
    }
}

/// Applies `f` to every item, possibly in parallel, honoring the global
/// thread budget, with a deterministic early-stop contract.
///
/// `f(index, item, ctx)` computes one result; `stops(&result)` classifies it
/// as *stopping* (e.g. "found a counterexample"). Guarantees, independent of
/// thread count and scheduling:
///
/// * Let `w` be the lowest index whose task returned a stopping result (if
///   any). Every index `< w` (or every index, if no task stopped) has
///   `Some(result)` in the output, produced by a task that was **not**
///   cancelled (its [`StopCtx::cancelled`] never returned `true` while it
///   ran, because `stop_before` can only hold stopping indices, which are
///   all `≥ w`).
/// * Indices `> w` may hold `None` (skipped before starting) or the result
///   of a possibly-cancelled task.
///
/// An index-ordered merge that consumes results until the first stopping one
/// therefore sees exactly what a sequential left-to-right loop with early
/// exit would have seen.
///
/// When no extra worker tokens are available (or the slice is small) this
/// degrades to exactly that sequential loop, inline on the caller's thread.
pub fn par_map_stop<T, R, F, S>(items: &[T], f: F, stops: S) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &StopCtx) -> R + Sync,
    S: Fn(&R) -> bool + Sync,
{
    let len = items.len();
    let ctx = StopCtx::new();
    if len <= 1 {
        let mut results = Vec::with_capacity(len);
        if let Some(item) = items.first() {
            results.push(Some(f(0, item, &ctx)));
        }
        return results;
    }

    let workers = try_acquire(len - 1);
    if workers == 0 {
        // Sequential fallback: a left-to-right loop with early exit.
        let mut results: Vec<Option<R>> = Vec::with_capacity(len);
        for (i, item) in items.iter().enumerate() {
            let r = f(i, item, &ctx);
            let stop = stops(&r);
            results.push(Some(r));
            if stop {
                results.resize_with(len, || None);
                break;
            }
        }
        return results;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let run = |_worker: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= len {
            break;
        }
        if ctx.skip(i) {
            continue;
        }
        let r = f(i, &items[i], &ctx);
        if stops(&r) {
            ctx.record_stop(i);
        }
        *slots[i].lock().expect("result slot poisoned") = Some(r);
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || run(w + 1)))
            .collect();
        run(0); // the caller participates
        for handle in handles {
            handle.join().expect("parpool worker panicked");
        }
    });
    release(workers);

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect()
}

/// Runs two closures, possibly concurrently, and returns both results.
///
/// `g` runs on a borrowed worker token when one is free under the global
/// thread budget; otherwise it runs inline on the caller's thread after `f`.
/// Either way both closures run to completion exactly once, so a caller
/// whose closures do not communicate observes identical results at any
/// thread count — this is what lets the synthesizer overlap a speculative
/// SAT solve with a candidate's bounded testing without perturbing the
/// deterministic search trajectory. Never blocks waiting for a token.
pub fn join<RF, RG, F, G>(f: F, g: G) -> (RF, RG)
where
    RF: Send,
    RG: Send,
    F: FnOnce() -> RF + Send,
    G: FnOnce() -> RG + Send,
{
    if try_acquire(1) == 0 {
        let rf = f();
        let rg = g();
        return (rf, rg);
    }
    let pair = std::thread::scope(|scope| {
        let handle = scope.spawn(g);
        let rf = f();
        let rg = handle.join().expect("parpool join worker panicked");
        (rf, rg)
    });
    release(1);
    pair
}

/// Applies `f` to every item, possibly in parallel, and returns all results.
///
/// Convenience wrapper over [`par_map_stop`] with no stopping results.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_stop(items, |i, item, _ctx| f(i, item), |_| false)
        .into_iter()
        .map(|r| r.expect("no stopping results, so every item completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(&items, |_, &x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stop_contract_every_prefix_result_present() {
        // Task 37 stops; every result below 37 must be present.
        for _ in 0..20 {
            let items: Vec<usize> = (0..80).collect();
            let results = par_map_stop(&items, |_, &x, _| x, |&r| r == 37);
            let winner = results
                .iter()
                .position(|r| matches!(r, Some(37)))
                .expect("the stopping task ran");
            assert_eq!(winner, 37);
            for (i, r) in results.iter().enumerate().take(winner) {
                assert_eq!(*r, Some(i), "prefix result {i} missing");
            }
        }
    }

    #[test]
    fn lowest_stopping_index_wins() {
        // Several stopping indices: the merged winner must be the lowest,
        // and everything below it must be present.
        for _ in 0..20 {
            let items: Vec<usize> = (0..64).collect();
            let results = par_map_stop(&items, |_, &x, _| x, |&r| r % 13 == 5);
            let mut merged = None;
            for r in &results {
                let Some(r) = r else { break };
                if r % 13 == 5 {
                    merged = Some(*r);
                    break;
                }
            }
            assert_eq!(merged, Some(5));
        }
    }

    /// Serializes tests that mutate the global thread limit, so they cannot
    /// observe each other's settings when the test harness runs them in
    /// parallel.
    fn limit_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn sequential_fallback_when_budget_is_one() {
        let _guard = limit_lock();
        set_thread_limit(1);
        let order = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..10).collect();
        let results = par_map_stop(
            &items,
            |i, _, _| {
                order.lock().unwrap().push(i);
                i
            },
            |&r| r == 4,
        );
        set_thread_limit(0);
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(results[4], Some(4));
        assert!(results[5..].iter().all(Option::is_none));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let items: Vec<usize> = (0..8).collect();
        let totals = par_map(&items, |_, &x| {
            let inner: Vec<usize> = (0..8).map(|y| x * 8 + y).collect();
            par_map(&inner, |_, &v| v + 1).into_iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8)
            .map(|x| (0..8).map(|y| x * 8 + y + 1).sum())
            .collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn cancellation_is_observable_after_a_lower_stop() {
        // A task polling `cancelled` sees the signal once a lower index
        // stopped. (Scheduling-dependent, so only assert the invariant: a
        // cancelled index is always above a stopping one.)
        let saw_cancel = AtomicBool::new(false);
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map_stop(
            &items,
            |i, &x, ctx| {
                for _ in 0..100 {
                    if ctx.cancelled(i) {
                        saw_cancel.store(true, Ordering::Relaxed);
                        assert!(i > 0, "index 0 can never be cancelled");
                        break;
                    }
                    std::hint::spin_loop();
                }
                x
            },
            |&r| r == 0,
        );
        // Whether cancellation was observed is scheduling-dependent; the
        // assertion inside the closure is the real check.
    }

    #[test]
    fn cancel_token_fires_exactly_once_and_latches_its_reason() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::Cancelled));
        // Clones share state; a second cancel does not change the reason.
        let clone = token.clone();
        clone.cancel();
        assert_eq!(clone.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn cancel_token_deadline_is_latched_as_deadline_exceeded() {
        let token = CancelToken::with_timeout(Duration::from_secs(0));
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
        // An explicit cancel after the deadline fired keeps the cause.
        token.cancel();
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn linked_token_fires_on_parent_cancel_or_own_deadline() {
        // Parent cancel propagates (and latches the parent's cause).
        let parent = CancelToken::new();
        let child = parent.linked_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::Cancelled));
        // The child's own deadline fires without touching the parent.
        let parent = CancelToken::new();
        let child = parent.linked_with_timeout(Duration::ZERO);
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::DeadlineExceeded));
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn cancel_token_with_future_deadline_stays_live() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        assert!(token.deadline().is_some());
        token.cancel();
        assert_eq!(token.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn join_runs_both_closures_at_any_budget() {
        let _guard = limit_lock();
        for limit in [1usize, 4] {
            set_thread_limit(limit);
            let (a, b) = join(|| 1 + 1, || "right");
            assert_eq!((a, b), (2, "right"));
        }
        set_thread_limit(0);
    }

    #[test]
    fn join_inline_fallback_runs_left_then_right() {
        let _guard = limit_lock();
        set_thread_limit(1);
        let order = Mutex::new(Vec::new());
        let push = |tag: &'static str| order.lock().unwrap().push(tag);
        let _ = join(|| push("left"), || push("right"));
        set_thread_limit(0);
        assert_eq!(order.into_inner().unwrap(), vec!["left", "right"]);
    }

    #[test]
    fn budget_reservation_is_all_or_nothing_and_releases_on_drop() {
        let _guard = limit_lock();
        set_thread_limit(4);
        // 3 worker tokens free (limit - 1). A 2-token reservation fits; a
        // second 2-token reservation must fail *without* acquiring anything.
        let first = BudgetReservation::try_new(2).expect("2 of 3 tokens free");
        assert_eq!(first.tokens(), 2);
        assert!(BudgetReservation::try_new(2).is_none());
        // A 1-token reservation still fits beside the first (2 + 1 < 4):
        // the headroom rule only keeps the caller thread's implicit slot.
        assert!(BudgetReservation::try_new(1).is_some());
        drop(first);
        let again = BudgetReservation::try_new(2);
        assert!(again.is_some(), "dropping the reservation frees its tokens");
        drop(again);
        set_thread_limit(0);
    }

    #[test]
    fn reserved_tokens_shrink_the_fan_out_budget() {
        let _guard = limit_lock();
        set_thread_limit(2);
        // With the single spare token reserved, par_map_stop degrades to
        // the sequential fallback: a stop at index 4 leaves 5..N untouched
        // (the parallel path could have started them already).
        let reservation = BudgetReservation::try_new(1).expect("one spare token");
        let items: Vec<usize> = (0..10).collect();
        let results = par_map_stop(&items, |i, _, _| i, |&r| r == 4);
        assert!(results[5..].iter().all(Option::is_none));
        drop(reservation);
        set_thread_limit(0);
    }

    #[test]
    fn thread_limit_roundtrip() {
        let _guard = limit_lock();
        set_thread_limit(3);
        assert_eq!(thread_limit(), 3);
        set_thread_limit(0);
        assert_eq!(thread_limit(), default_limit());
    }
}
