//! Property-based tests: the CDCL solver and the MaxSAT solver agree with
//! brute-force reference implementations on random small instances.

use proptest::prelude::*;
use satsolver::encoder::exactly_one;
use satsolver::pb::encode_leq;
use satsolver::{Cnf, Lit, MaxSatResult, MaxSatSolver, SolveResult, Solver, Var};

/// A random clause over `num_vars` variables.
fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    proptest::collection::vec((0..num_vars, any::<bool>()), 1..4)
}

fn formula_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (3usize..7).prop_flat_map(|num_vars| {
        proptest::collection::vec(clause_strategy(num_vars), 0..18)
            .prop_map(move |clauses| (num_vars, clauses))
    })
}

fn brute_force_sat(num_vars: usize, cnf: &Cnf) -> bool {
    (0..(1u32 << num_vars)).any(|mask| {
        let assignment: Vec<bool> = (0..num_vars).map(|i| mask & (1 << i) != 0).collect();
        cnf.eval(&assignment)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CDCL agrees with brute force on satisfiability, and its models are
    /// genuine models.
    #[test]
    fn solver_agrees_with_brute_force((num_vars, clauses) in formula_strategy()) {
        let mut cnf = Cnf::new();
        let cnf_vars = cnf.new_vars(num_vars);
        let mut solver = Solver::new();
        let solver_vars = solver.new_vars(num_vars);
        for clause in &clauses {
            let cnf_clause: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(cnf_vars[v], positive))
                .collect();
            cnf.add_clause(cnf_clause);
            let solver_clause: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(solver_vars[v], positive))
                .collect();
            solver.add_clause(&solver_clause);
        }
        let expected = brute_force_sat(num_vars, &cnf);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "solver found a model for an unsatisfiable formula");
                prop_assert!(cnf.eval(&model.values()[..num_vars]));
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver missed a model"),
        }
    }

    /// Differential oracle for incremental mode: enumerating models with one
    /// persistent solver (learnt clauses, activities and phases retained
    /// across blocking clauses) yields exactly the same model set as
    /// rebuilding a from-scratch solver after every blocking clause. The
    /// visit orders may differ; the sets may not.
    #[test]
    fn incremental_enumeration_matches_from_scratch((num_vars, clauses) in formula_strategy()) {
        let build = |extra_blocking: &[Vec<(usize, bool)>]| {
            let mut solver = Solver::new();
            let vars = solver.new_vars(num_vars);
            for clause in clauses.iter().chain(extra_blocking) {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, positive)| Lit::new(vars[v], positive))
                    .collect();
                solver.add_clause(&lits);
            }
            (solver, vars)
        };

        let enumerate_incremental = || {
            let (mut solver, vars) = build(&[]);
            let mut models = std::collections::BTreeSet::new();
            while let SolveResult::Sat(model) = solver.solve() {
                let bits: Vec<bool> = vars.iter().map(|&v| model.value(v)).collect();
                assert!(models.insert(bits), "incremental solver repeated a model");
                let blocking: Vec<Lit> = vars
                    .iter()
                    .map(|&v| Lit::new(v, !model.value(v)))
                    .collect();
                solver.add_clause(&blocking);
            }
            (models, solver.solves(), solver.learnt_clauses_kept())
        };

        let enumerate_from_scratch = || {
            let mut blocking: Vec<Vec<(usize, bool)>> = Vec::new();
            let mut models = std::collections::BTreeSet::new();
            loop {
                let (mut solver, vars) = build(&blocking);
                match solver.solve() {
                    SolveResult::Sat(model) => {
                        let bits: Vec<bool> = vars.iter().map(|&v| model.value(v)).collect();
                        blocking.push(
                            vars.iter()
                                .enumerate()
                                .map(|(i, _)| (i, !bits[i]))
                                .collect(),
                        );
                        assert!(models.insert(bits), "from-scratch solver repeated a model");
                    }
                    SolveResult::Unsat => return models,
                }
            }
        };

        let (incremental, solves, _learnt) = enumerate_incremental();
        let from_scratch = enumerate_from_scratch();
        prop_assert_eq!(&incremental, &from_scratch,
            "incremental and from-scratch enumeration disagree on the model set");
        prop_assert_eq!(solves as usize, incremental.len() + 1,
            "one solve per model plus the final Unsat");
    }

    /// Solving under assumptions never changes the answer an unassumed solve
    /// gives afterwards: unsat-under-assumptions is fully retractable.
    #[test]
    fn assumption_probes_are_side_effect_free((num_vars, clauses) in formula_strategy()) {
        let mut cnf = Cnf::new();
        let cnf_vars = cnf.new_vars(num_vars);
        let mut solver = Solver::new();
        let vars = solver.new_vars(num_vars);
        for clause in &clauses {
            cnf.add_clause(
                clause
                    .iter()
                    .map(|&(v, positive)| Lit::new(cnf_vars[v], positive))
                    .collect::<Vec<_>>(),
            );
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(vars[v], positive))
                .collect();
            solver.add_clause(&lits);
        }
        let expected = brute_force_sat(num_vars, &cnf);
        // Probe under every single-literal assumption, both polarities.
        for &v in &vars {
            for positive in [false, true] {
                if let SolveResult::Sat(model) = solver.solve_with_assumptions(&[Lit::new(v, positive)]) {
                    prop_assert_eq!(model.value(v), positive, "assumption not honoured");
                    prop_assert!(cnf.eval(&model.values()[..num_vars]));
                }
            }
        }
        prop_assert_eq!(solver.solve().is_sat(), expected,
            "assumption probes perturbed the unassumed verdict");
    }

    /// Exactly-one encodings admit exactly `n` models over the constrained
    /// variables.
    #[test]
    fn exactly_one_has_n_models(n in 1usize..6) {
        let mut solver = Solver::new();
        let vars = solver.new_vars(n);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        exactly_one(&mut solver, &lits);
        let mut count = 0;
        while let SolveResult::Sat(model) = solver.solve() {
            count += 1;
            let blocking: Vec<Lit> = vars
                .iter()
                .map(|&v| Lit::new(v, !model.value(v)))
                .collect();
            solver.add_clause(&blocking);
        }
        prop_assert_eq!(count, n);
    }

    /// The pseudo-Boolean `≤ bound` encoding accepts exactly the assignments
    /// whose weighted sum is within the bound.
    #[test]
    fn pb_encoding_is_exact(
        weights in proptest::collection::vec(0u64..6, 1..5),
        bound in 0u64..10,
    ) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..weights.len()).map(|_| solver.new_var()).collect();
        let terms: Vec<(Lit, u64)> = vars
            .iter()
            .zip(&weights)
            .map(|(&v, &w)| (Lit::pos(v), w))
            .collect();
        encode_leq(&mut solver, &terms, bound);
        let mut reachable = std::collections::BTreeSet::new();
        while let SolveResult::Sat(model) = solver.solve() {
            let bits: Vec<bool> = vars.iter().map(|&v| model.value(v)).collect();
            reachable.insert(bits.clone());
            let blocking: Vec<Lit> = vars
                .iter()
                .map(|&v| Lit::new(v, !model.value(v)))
                .collect();
            solver.add_clause(&blocking);
        }
        for mask in 0..(1u32 << weights.len()) {
            let bits: Vec<bool> = (0..weights.len()).map(|i| mask & (1 << i) != 0).collect();
            let sum: u64 = bits
                .iter()
                .zip(&weights)
                .filter(|(&b, _)| b)
                .map(|(_, &w)| w)
                .sum();
            prop_assert_eq!(
                reachable.contains(&bits),
                sum <= bound,
                "assignment {:?} (sum {}) mishandled for bound {}",
                bits, sum, bound
            );
        }
    }

    /// MaxSAT finds the true optimum on random weighted instances.
    #[test]
    fn maxsat_is_optimal(
        (num_vars, hard) in formula_strategy(),
        soft in proptest::collection::vec((clause_strategy(6), 1u64..6), 1..5),
    ) {
        let mut maxsat = MaxSatSolver::new();
        let vars: Vec<Var> = (0..num_vars.max(6)).map(|_| maxsat.new_var()).collect();
        let mut hard_clauses = Vec::new();
        for clause in &hard {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(vars[v % vars.len()], positive))
                .collect();
            hard_clauses.push(lits.clone());
            maxsat.add_hard(&lits);
        }
        let mut soft_clauses = Vec::new();
        for (clause, weight) in &soft {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(vars[v % vars.len()], positive))
                .collect();
            soft_clauses.push((lits.clone(), *weight));
            maxsat.add_soft(&lits, *weight);
        }
        // Brute force reference.
        let eval_lit = |assignment: &[bool], lit: Lit| {
            let value = assignment[lit.var().index()];
            if lit.is_positive() { value } else { !value }
        };
        let mut best: Option<u64> = None;
        for mask in 0..(1u32 << vars.len()) {
            let assignment: Vec<bool> = (0..vars.len()).map(|i| mask & (1 << i) != 0).collect();
            if !hard_clauses.iter().all(|c| c.iter().any(|&l| eval_lit(&assignment, l))) {
                continue;
            }
            let cost: u64 = soft_clauses
                .iter()
                .filter(|(c, _)| !c.iter().any(|&l| eval_lit(&assignment, l)))
                .map(|&(_, w)| w)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        match (maxsat.solve(), best) {
            (MaxSatResult::Optimal { cost, .. }, Some(expected)) => {
                prop_assert_eq!(cost, expected);
            }
            (MaxSatResult::Unsat, None) => {}
            (got, expected) => {
                prop_assert!(false, "solver returned {:?} but brute force found {:?}", got, expected);
            }
        }
    }
}
