//! Literals, clauses and CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2 * var + (negative ? 1 : 0)` so literals can be
/// used directly as indices into watch lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense code of the literal (usable as a watch-list index).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense code.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(lits: impl Into<Vec<Lit>>) -> Clause {
        Clause { lits: lits.into() }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals (i.e. is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, lit) in self.lits.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{lit}")?;
        }
        f.write_str(")")
    }
}

/// A CNF formula: a variable count plus a conjunction of clauses.
///
/// `Cnf` is a passive container used for building and inspecting encodings;
/// solving happens in [`crate::solver::Solver`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    /// The clauses of the formula.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(Clause::new(lits));
    }

    /// Evaluates the formula under a full assignment (used by the
    /// brute-force reference solver in tests).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.lits.iter().any(|lit| {
                let value = assignment[lit.var().index()];
                if lit.is_positive() {
                    value
                } else {
                    !value
                }
            })
        })
    }
}

/// A satisfying assignment returned by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Creates a model from per-variable values.
    pub fn new(values: Vec<bool>) -> Model {
        Model { values }
    }

    /// The value of a variable.
    pub fn value(&self, var: Var) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// The value of a literal.
    pub fn lit_value(&self, lit: Lit) -> bool {
        let v = self.value(lit.var());
        if lit.is_positive() {
            v
        } else {
            !v
        }
    }

    /// The per-variable values, indexed by variable index.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// The literals that are true in this model, one per variable.
    pub fn as_literals(&self) -> Vec<Lit> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| Lit::new(Var(i as u32), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(vec![Lit::neg(a)]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn model_lookup() {
        let model = Model::new(vec![true, false]);
        assert!(model.value(Var(0)));
        assert!(!model.value(Var(1)));
        assert!(model.lit_value(Lit::neg(Var(1))));
        // Out-of-range variables default to false.
        assert!(!model.value(Var(10)));
        assert_eq!(model.as_literals().len(), 2);
    }

    #[test]
    fn display_formats() {
        let clause = Clause::new(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
        assert_eq!(clause.to_string(), "(x0 | !x1)");
        assert_eq!(clause.len(), 2);
        assert!(!clause.is_empty());
    }

    #[test]
    fn new_vars_allocates_distinct_variables() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(5);
        assert_eq!(vars.len(), 5);
        assert_eq!(cnf.num_vars(), 5);
        let set: std::collections::BTreeSet<_> = vars.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
