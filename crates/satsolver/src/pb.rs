//! Pseudo-Boolean constraints: `Σ wᵢ·xᵢ ≤ k` via the sequential weighted
//! counter encoding.
//!
//! The MaxSAT solver uses this encoding to bound the total weight of
//! falsified soft clauses during its linear descent to the optimum.

use crate::cnf::{Lit, Var};
use crate::encoder::ClauseSink;

/// Encodes the constraint `Σ wᵢ·litᵢ ≤ bound` into `sink`.
///
/// Uses the sequential weighted counter: auxiliary variable `s[i][j]` means
/// "the sum of the first `i + 1` terms is at least `j + 1`". The number of
/// auxiliary variables is `O(n · bound)`, which is adequate for the small
/// bounds arising from value-correspondence costs.
///
/// Terms with zero weight are ignored. A bound of zero forces every literal
/// with positive weight to false.
pub fn encode_leq(sink: &mut impl ClauseSink, terms: &[(Lit, u64)], bound: u64) {
    let terms: Vec<(Lit, u64)> = terms.iter().copied().filter(|&(_, w)| w > 0).collect();
    if terms.is_empty() {
        return;
    }
    if bound == 0 {
        for &(lit, _) in &terms {
            sink.emit_clause(&[!lit]);
        }
        return;
    }
    let total: u64 = terms.iter().map(|&(_, w)| w).sum();
    if total <= bound {
        return; // trivially satisfied
    }
    let k = bound as usize;
    let n = terms.len();
    // s[i][j]: prefix sum of terms 0..=i is >= j+1, for j in 0..k.
    let mut s: Vec<Vec<Var>> = Vec::with_capacity(n);
    for _ in 0..n {
        s.push((0..k).map(|_| sink.fresh_var()).collect());
    }
    let (x0, w0) = terms[0];
    // x0 -> s[0][j] for j < w0 (capped at k).
    for &var in &s[0][..(w0.min(bound) as usize)] {
        sink.emit_clause(&[!x0, Lit::pos(var)]);
    }
    // s[0][j] is false for j >= w0 (the prefix sum cannot exceed w0).
    for &var in &s[0][(w0 as usize).min(k)..] {
        sink.emit_clause(&[Lit::neg(var)]);
    }
    if w0 > bound {
        sink.emit_clause(&[!x0]);
    }
    for i in 1..n {
        let (xi, wi) = terms[i];
        // Carrying forward: s[i-1][j] -> s[i][j].
        for (&prev, &curr) in s[i - 1].iter().zip(&s[i]) {
            sink.emit_clause(&[Lit::neg(prev), Lit::pos(curr)]);
        }
        // Setting: xi -> s[i][j] for j < wi.
        for &var in &s[i][..(wi.min(bound) as usize)] {
            sink.emit_clause(&[!xi, Lit::pos(var)]);
        }
        // Adding: xi & s[i-1][j] -> s[i][j + wi].
        for j in 0..k {
            let target = j as u64 + wi;
            if target < bound {
                sink.emit_clause(&[!xi, Lit::neg(s[i - 1][j]), Lit::pos(s[i][target as usize])]);
            }
        }
        // Overflow: xi & s[i-1][bound - wi] -> conflict.
        if wi > bound {
            sink.emit_clause(&[!xi]);
        } else if bound >= wi {
            let j = (bound - wi) as usize;
            if j < k {
                sink.emit_clause(&[!xi, Lit::neg(s[i - 1][j])]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use crate::solver::{SolveResult, Solver};

    /// Enumerates all models over the original variables and checks the
    /// encoding admits exactly the assignments whose weighted sum is within
    /// the bound.
    fn check_exact(weights: &[u64], bound: u64) {
        let mut solver = Solver::new();
        let vars = solver.new_vars(weights.len());
        let terms: Vec<(Lit, u64)> = vars
            .iter()
            .zip(weights)
            .map(|(&v, &w)| (Lit::pos(v), w))
            .collect();
        encode_leq(&mut solver, &terms, bound);

        let mut satisfying = std::collections::BTreeSet::new();
        while let SolveResult::Sat(model) = solver.solve() {
            let bits: Vec<bool> = vars.iter().map(|&v| model.value(v)).collect();
            satisfying.insert(bits.clone());
            let blocking: Vec<Lit> = vars.iter().map(|&v| Lit::new(v, !model.value(v))).collect();
            solver.add_clause(&blocking);
        }
        let mut expected = std::collections::BTreeSet::new();
        for mask in 0..(1u32 << weights.len()) {
            let bits: Vec<bool> = (0..weights.len()).map(|i| mask & (1 << i) != 0).collect();
            let sum: u64 = bits
                .iter()
                .zip(weights)
                .filter(|(&b, _)| b)
                .map(|(_, &w)| w)
                .sum();
            if sum <= bound {
                expected.insert(bits);
            }
        }
        assert_eq!(
            satisfying, expected,
            "PB encoding mismatch for weights {weights:?} bound {bound}"
        );
    }

    #[test]
    fn unit_weights_behave_like_cardinality() {
        check_exact(&[1, 1, 1], 0);
        check_exact(&[1, 1, 1], 1);
        check_exact(&[1, 1, 1], 2);
        check_exact(&[1, 1, 1], 3);
    }

    #[test]
    fn mixed_weights() {
        check_exact(&[2, 3, 1], 3);
        check_exact(&[5, 1, 1], 4);
        check_exact(&[4, 4, 4], 8);
        check_exact(&[7, 2, 3, 1], 6);
    }

    #[test]
    fn zero_weights_are_ignored() {
        check_exact(&[0, 2, 0, 1], 2);
    }

    #[test]
    fn trivially_satisfied_bound_adds_nothing() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(2);
        encode_leq(
            &mut solver,
            &[(Lit::pos(vars[0]), 1), (Lit::pos(vars[1]), 1)],
            10,
        );
        assert_eq!(solver.num_clauses(), 0);
        assert!(solver.solve().is_sat());
    }
}
