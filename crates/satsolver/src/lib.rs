//! # satsolver — a small CDCL SAT solver with MaxSAT support
//!
//! The Migrator synthesizer needs two solver capabilities (the paper uses
//! Sat4J for both):
//!
//! 1. **SAT model enumeration with incremental blocking clauses** for sketch
//!    completion (Algorithm 2 of the paper): the space of sketch completions
//!    is encoded with one exactly-one constraint per hole, models are
//!    enumerated lazily and blocking clauses learned from minimum failing
//!    inputs are added between calls.
//! 2. **Partial weighted MaxSAT** for ranking candidate value
//!    correspondences (Section 4.2): hard constraints encode type
//!    compatibility and the necessary condition for equivalence, soft
//!    constraints encode name similarity and a preference for one-to-one
//!    mappings.
//!
//! This crate provides both on top of a conflict-driven clause-learning
//! (CDCL) solver with two-watched-literal propagation, first-UIP clause
//! learning, activity-based branching and restarts.
//!
//! ```
//! use satsolver::{Lit, Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(model.value(b)),
//!     SolveResult::Unsat => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cnf;
pub mod encoder;
pub mod maxsat;
pub mod pb;
pub mod solver;

pub use cnf::{Clause, Cnf, Lit, Model, Var};
pub use maxsat::{MaxSatResult, MaxSatSolver, SoftClause};
pub use solver::{SolveResult, Solver};
