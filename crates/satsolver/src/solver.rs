//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the classic MiniSat architecture:
//! two-watched-literal propagation, first-UIP conflict analysis with clause
//! learning, activity-based branching with phase saving, and geometric
//! restarts. Clauses may be added incrementally between [`Solver::solve`]
//! calls, which is how the synthesizer adds blocking clauses during model
//! enumeration: learnt clauses, variable activities and saved phases all
//! survive across calls, so each re-solve resumes from everything earlier
//! conflicts taught the solver instead of starting cold.
//!
//! [`Solver::solve_with_assumptions`] additionally solves under a set of
//! assumption literals asserted as forced decisions. An `Unsat` answer from
//! that entry point means *unsatisfiable under the assumptions* and does not
//! latch the solver unsatisfiable — retraction is free, which is what lets
//! the synthesizer speculate on a blocking clause behind a guard literal and
//! abandon the speculation without rebuilding anything.

use crate::cnf::{Lit, Model, Var};

/// The outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; a model is provided.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// Returns the model if the result is SAT.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(model) => Some(model),
            SolveResult::Unsat => None,
        }
    }

    /// Returns `true` if the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

#[derive(Debug, Clone)]
struct ClauseData {
    lits: Vec<Lit>,
}

const UNASSIGNED: i8 = 0;

/// A CDCL SAT solver supporting incremental clause addition.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<ClauseData>,
    /// `watches[lit.code()]` lists the clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Per-variable assignment: `1` true, `-1` false, `0` unassigned.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    phase: Vec<bool>,
    activity: Vec<f64>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    var_inc: f64,
    unsat: bool,
    /// Statistics: number of conflicts encountered so far.
    conflicts: u64,
    /// Statistics: number of decisions made so far.
    decisions: u64,
    /// Statistics: number of literals propagated so far.
    propagations: u64,
    /// Statistics: number of `solve`/`solve_with_assumptions` calls.
    solves: u64,
    /// Statistics: number of learnt clauses retained in the clause database
    /// (including unit learns, which are retained as level-0 assignments).
    learnt_kept: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.phase.push(false);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        var
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses currently stored (including learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of branching decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of `solve`/`solve_with_assumptions` calls made so far.
    ///
    /// Any count above one on the same solver means the clause database,
    /// learnt clauses and branching heuristics were reused rather than
    /// rebuilt — the incremental-mode counter the synthesizer reports as
    /// `solver_reuses`.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Number of learnt clauses retained across all `solve` calls so far
    /// (unit learns are retained as level-0 assignments and counted too).
    pub fn learnt_clauses_kept(&self) -> u64 {
        self.learnt_kept
    }

    /// Returns `true` if the formula has been determined unsatisfiable.
    pub fn is_known_unsat(&self) -> bool {
        self.unsat
    }

    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.assign[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause.
    ///
    /// Adding the empty clause (or a clause that is falsified at decision
    /// level zero) makes the formula permanently unsatisfiable. Clauses may
    /// be added between `solve` calls; the solver must not be mid-search.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        // Normalize: drop duplicate and false-at-level-0 literals; detect
        // tautologies and satisfied clauses.
        let mut normalized: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            debug_assert!(lit.var().index() < self.num_vars(), "unknown variable");
            if self.lit_value(lit) == 1 {
                return; // already satisfied at level 0
            }
            if self.lit_value(lit) == -1 {
                continue; // falsified at level 0: drop
            }
            if normalized.contains(&!lit) {
                return; // tautology
            }
            if !normalized.contains(&lit) {
                normalized.push(lit);
            }
        }
        match normalized.len() {
            0 => {
                self.unsat = true;
            }
            1 => {
                if !self.enqueue(normalized[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let index = self.clauses.len();
                self.watches[normalized[0].code()].push(index);
                self.watches[normalized[1].code()].push(index);
                self.clauses.push(ClauseData { lits: normalized });
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(lit) {
            1 => true,
            -1 => false,
            _ => {
                let var = lit.var().index();
                self.assign[var] = if lit.is_positive() { 1 } else { -1 };
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            let falsified = !p;
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_index = watch_list[i];
                // Ensure the falsified literal is at position 1.
                let first = {
                    let clause = &mut self.clauses[clause_index];
                    if clause.lits[0] == falsified {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], falsified);
                    clause.lits[0]
                };
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let replacement = {
                    let clause = &self.clauses[clause_index];
                    clause.lits[2..]
                        .iter()
                        .position(|&l| self.lit_value(l) != -1)
                        .map(|offset| offset + 2)
                };
                if let Some(k) = replacement {
                    let new_watch = {
                        let clause = &mut self.clauses[clause_index];
                        clause.lits.swap(1, k);
                        clause.lits[1]
                    };
                    self.watches[new_watch.code()].push(clause_index);
                    watch_list.swap_remove(i);
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == -1 {
                    // Conflict: restore remaining watches and report.
                    self.watches[falsified.code()].append(&mut watch_list);
                    self.prop_head = self.trail.len();
                    return Some(clause_index);
                }
                let enqueued = self.enqueue(first, Some(clause_index));
                debug_assert!(enqueued);
                i += 1;
            }
            self.watches[falsified.code()] = watch_list;
        }
        None
    }

    fn bump_activity(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.var_inc;
        if *a > 1e100 {
            for value in &mut self.activity {
                *value *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_index = conflict;
        let mut trail_index = self.trail.len();

        loop {
            let lits = self.clauses[clause_index].lits.clone();
            for q in lits {
                if Some(q.var()) == p.map(Lit::var) {
                    continue;
                }
                let var = q.var();
                if !seen[var.index()] && self.level[var.index()] > 0 {
                    seen[var.index()] = true;
                    self.bump_activity(var);
                    if self.level[var.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to expand from the trail.
            loop {
                trail_index -= 1;
                if seen[self.trail[trail_index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_index];
            seen[lit.var().index()] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            clause_index =
                self.reason[lit.var().index()].expect("non-decision literal must have a reason");
        }
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        // Compute the backtrack level and move the corresponding literal to
        // position 1 so it becomes the second watch.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_index = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_index].var().index()]
                {
                    max_index = i;
                }
            }
            learnt.swap(1, max_index);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack_level)
    }

    fn cancel_until(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let limit = self.trail_lim.pop().expect("level > 0 implies a limit");
            while self.trail.len() > limit {
                let lit = self.trail.pop().expect("trail not empty");
                let var = lit.var().index();
                self.phase[var] = lit.is_positive();
                self.assign[var] = UNASSIGNED;
                self.reason[var] = None;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.prop_head = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for (index, &value) in self.assign.iter().enumerate() {
            if value == UNASSIGNED {
                let activity = self.activity[index];
                if best.is_none_or(|(_, a)| activity > a) {
                    best = Some((index, activity));
                }
            }
        }
        best.map(|(index, _)| Var(index as u32))
    }

    /// Solves the current formula.
    ///
    /// The solver always resets to decision level zero before and after
    /// solving, so clauses can be added freely between calls.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the current formula under the given assumption literals.
    ///
    /// Assumptions are asserted in order as forced decisions below all
    /// ordinary branching, in the MiniSat style. `Unsat` from this entry
    /// point means unsatisfiable *under the assumptions*: the solver is not
    /// latched unsatisfiable, and later calls with different (or no)
    /// assumptions behave as if this call never happened — except that
    /// clauses learnt during the search are retained. Retention is sound
    /// because learnt clauses are implied by the clause database alone,
    /// never by the assumptions: assumptions enter conflict analysis as
    /// decisions, which contribute literals to the learnt clause rather
    /// than being resolved away.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solves += 1;
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.cancel_until(backtrack_level);
                self.learnt_kept += 1;
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    if !ok {
                        self.unsat = true;
                        return SolveResult::Unsat;
                    }
                } else {
                    let index = self.clauses.len();
                    self.watches[learnt[0].code()].push(index);
                    self.watches[learnt[1].code()].push(index);
                    let asserting = learnt[0];
                    self.clauses.push(ClauseData { lits: learnt });
                    let ok = self.enqueue(asserting, Some(index));
                    debug_assert!(ok);
                }
                self.decay_activities();
            } else if conflicts_since_restart >= restart_limit {
                conflicts_since_restart = 0;
                restart_limit = restart_limit.saturating_add(restart_limit / 2);
                self.cancel_until(0);
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Assert the next pending assumption as a forced decision.
                // Restarts pop assumption levels along with everything else;
                // this branch simply re-asserts them, indexed by decision
                // level so the cursor needs no extra state.
                let p = assumptions[self.decision_level() as usize];
                debug_assert!(
                    p.var().index() < self.num_vars(),
                    "unknown assumption variable"
                );
                match self.lit_value(p) {
                    1 => {
                        // Already implied: open an empty decision level so
                        // the level-indexed assumption cursor advances.
                        self.trail_lim.push(self.trail.len());
                    }
                    -1 => {
                        // Falsified by the formula or an earlier assumption:
                        // unsatisfiable under the assumptions only, so the
                        // `unsat` latch stays clear.
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    _ => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(p, None);
                        debug_assert!(ok);
                    }
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model =
                            Model::new(self.assign.iter().map(|&value| value == 1).collect());
                        self.cancel_until(0);
                        return SolveResult::Sat(model);
                    }
                    Some(var) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, self.phase[var.index()]);
                        let ok = self.enqueue(lit, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn lit(solver_vars: &[Var], index: isize) -> Lit {
        if index > 0 {
            Lit::pos(solver_vars[(index - 1) as usize])
        } else {
            Lit::neg(solver_vars[(-index - 1) as usize])
        }
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        solver.add_clause(&[Lit::pos(a)]);
        assert!(solver.solve().is_sat());
        solver.add_clause(&[Lit::neg(a)]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert!(solver.is_known_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = Solver::new();
        let _ = solver.new_var();
        solver.add_clause(&[]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(4);
        // x0 & (x0 -> x1) & (x1 -> x2) & (x2 -> x3)
        solver.add_clause(&[Lit::pos(vars[0])]);
        for window in vars.windows(2) {
            solver.add_clause(&[Lit::neg(window[0]), Lit::pos(window[1])]);
        }
        match solver.solve() {
            SolveResult::Sat(model) => {
                for &v in &vars {
                    assert!(model.value(v));
                }
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Three pigeons, two holes: var p_{i,j} = pigeon i in hole j.
        let mut solver = Solver::new();
        let vars = solver.new_vars(6);
        let p = |i: usize, j: usize| vars[i * 2 + j];
        for i in 0..3 {
            solver.add_clause(&[Lit::pos(p(i, 0)), Lit::pos(p(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    solver.add_clause(&[Lit::neg(p(i1, j)), Lit::neg(p(i2, j))]);
                }
            }
        }
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert!(solver.conflicts() > 0);
    }

    #[test]
    fn model_enumeration_with_blocking_clauses() {
        // x0 xor x1 has exactly two models; blocking each in turn exhausts them.
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        solver.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        let mut models = Vec::new();
        while let SolveResult::Sat(model) = solver.solve() {
            let blocking: Vec<Lit> = model.as_literals().iter().map(|&l| !l).collect();
            models.push((model.value(a), model.value(b)));
            solver.add_clause(&blocking);
        }
        models.sort();
        assert_eq!(models, vec![(false, true), (true, false)]);
    }

    #[test]
    fn incremental_clause_addition_after_sat() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(3);
        solver.add_clause(&[lit(&vars, 1), lit(&vars, 2), lit(&vars, 3)]);
        assert!(solver.solve().is_sat());
        solver.add_clause(&[lit(&vars, -1)]);
        solver.add_clause(&[lit(&vars, -2)]);
        match solver.solve() {
            SolveResult::Sat(model) => assert!(model.value(vars[2])),
            SolveResult::Unsat => panic!("expected SAT"),
        }
        solver.add_clause(&[lit(&vars, -3)]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_without_latching_unsat() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        // Unsat under [¬a, ¬b], but the formula itself stays satisfiable.
        assert_eq!(
            solver.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]),
            SolveResult::Unsat
        );
        assert!(!solver.is_known_unsat());
        match solver.solve_with_assumptions(&[Lit::neg(a)]) {
            SolveResult::Sat(model) => {
                assert!(!model.value(a));
                assert!(model.value(b));
            }
            SolveResult::Unsat => panic!("expected SAT under [¬a]"),
        }
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn assumptions_falsified_at_level_zero_are_retractable() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[Lit::pos(a)]);
        solver.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        // `¬b` is false at level 0 (b is implied), `b` is already true.
        assert_eq!(
            solver.solve_with_assumptions(&[Lit::neg(b)]),
            SolveResult::Unsat
        );
        assert!(!solver.is_known_unsat());
        assert!(solver.solve_with_assumptions(&[Lit::pos(b)]).is_sat());
        // Contradictory assumption pairs are unsat-under-assumptions too.
        assert_eq!(
            solver.solve_with_assumptions(&[Lit::pos(b), Lit::neg(b)]),
            SolveResult::Unsat
        );
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn guarded_blocking_clause_commits_on_unit_guard() {
        // The speculation protocol: block a model behind guard g via
        // (¬g ∨ blocking), probe with assumption [g], later commit by
        // adding the unit clause g.
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        solver.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        let first = solver.solve().model().expect("xor is satisfiable");
        let g = solver.new_var();
        let mut guarded: Vec<Lit> = first.as_literals()[..2].iter().map(|&l| !l).collect();
        guarded.push(Lit::neg(g));
        solver.add_clause(&guarded);
        let speculative = solver
            .solve_with_assumptions(&[Lit::pos(g)])
            .model()
            .expect("the other xor model exists");
        assert_ne!(speculative.value(a), first.value(a));
        // Commit the guard; the blocked model must stay gone without it.
        solver.add_clause(&[Lit::pos(g)]);
        let committed = solver.solve().model().expect("still satisfiable");
        assert_eq!(committed.value(a), speculative.value(a));
        assert_eq!(committed.value(b), speculative.value(b));
        let blocking: Vec<Lit> = [a, b]
            .iter()
            .map(|&v| Lit::new(v, !committed.value(v)))
            .collect();
        solver.add_clause(&blocking);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn solve_and_learnt_counters_advance() {
        let mut solver = Solver::new();
        let vars = solver.new_vars(6);
        let p = |i: usize, j: usize| vars[i * 2 + j];
        for i in 0..3 {
            solver.add_clause(&[Lit::pos(p(i, 0)), Lit::pos(p(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    solver.add_clause(&[Lit::neg(p(i1, j)), Lit::neg(p(i2, j))]);
                }
            }
        }
        assert_eq!(solver.solves(), 0);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert_eq!(solver.solves(), 1);
        assert!(
            solver.learnt_clauses_kept() > 0,
            "pigeonhole must learn clauses"
        );
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert_eq!(solver.solves(), 2);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_harmless() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::neg(b)]);
        solver.add_clause(&[Lit::pos(b), Lit::neg(b)]); // tautology: ignored
        solver.add_clause(&[Lit::pos(b)]);
        match solver.solve() {
            SolveResult::Sat(model) => {
                assert!(model.value(a));
                assert!(model.value(b));
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    /// Brute-force reference check on a batch of structured formulas.
    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        // Deterministic pseudo-random 3-CNF generator (no external RNG).
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for instance in 0..60 {
            let num_vars = 4 + (instance % 6) as usize;
            let num_clauses = 3 + (next() % 22) as usize;
            let mut cnf = Cnf::new();
            let vars = cnf.new_vars(num_vars);
            let mut solver = Solver::new();
            let solver_vars = solver.new_vars(num_vars);
            for _ in 0..num_clauses {
                let width = 1 + (next() % 3) as usize;
                let mut clause = Vec::new();
                for _ in 0..width {
                    let var = (next() % num_vars as u64) as usize;
                    let positive = next() % 2 == 0;
                    clause.push(Lit::new(vars[var], positive));
                }
                cnf.add_clause(clause.clone());
                let solver_clause: Vec<Lit> = clause
                    .iter()
                    .map(|l| Lit::new(solver_vars[l.var().index()], l.is_positive()))
                    .collect();
                solver.add_clause(&solver_clause);
            }
            // Brute force.
            let mut brute_sat = false;
            for bits in 0..(1u32 << num_vars) {
                let assignment: Vec<bool> = (0..num_vars).map(|i| bits & (1 << i) != 0).collect();
                if cnf.eval(&assignment) {
                    brute_sat = true;
                    break;
                }
            }
            let result = solver.solve();
            assert_eq!(
                result.is_sat(),
                brute_sat,
                "solver disagrees with brute force on instance {instance}"
            );
            if let SolveResult::Sat(model) = result {
                assert!(
                    cnf.eval(&model.values()[..num_vars]),
                    "model returned by solver does not satisfy the formula"
                );
            }
        }
    }
}
