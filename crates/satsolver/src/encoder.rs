//! Cardinality helpers: exactly-one, at-most-one and implications.
//!
//! The sketch-completion encoding of the paper uses one *n-ary xor*
//! (exactly-one) constraint per hole (Section 4.4); this module provides
//! that encoding over any [`ClauseSink`].

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::Solver;

/// Anything clauses and fresh variables can be added to.
///
/// Implemented by both the passive [`Cnf`] container and the [`Solver`], so
/// encodings can be built directly inside a solver or inspected as data.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;
    /// Adds a clause.
    fn emit_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Cnf {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits.to_vec());
    }
}

impl ClauseSink for Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

/// Adds clauses requiring at least one of `lits` to be true.
pub fn at_least_one(sink: &mut impl ClauseSink, lits: &[Lit]) {
    sink.emit_clause(lits);
}

/// Adds clauses requiring at most one of `lits` to be true
/// (pairwise encoding, adequate for the small per-hole domains of sketches).
pub fn at_most_one(sink: &mut impl ClauseSink, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            sink.emit_clause(&[!lits[i], !lits[j]]);
        }
    }
}

/// Adds clauses requiring exactly one of `lits` to be true — the paper's
/// n-ary xor `⊕(b¹, …, bⁿ)`.
pub fn exactly_one(sink: &mut impl ClauseSink, lits: &[Lit]) {
    at_least_one(sink, lits);
    at_most_one(sink, lits);
}

/// Adds the implication `antecedent → consequent`.
pub fn implies(sink: &mut impl ClauseSink, antecedent: Lit, consequent: Lit) {
    sink.emit_clause(&[!antecedent, consequent]);
}

/// Adds clauses asserting `lit ↔ (a ∧ b)`.
pub fn iff_and(sink: &mut impl ClauseSink, lit: Lit, a: Lit, b: Lit) {
    sink.emit_clause(&[!lit, a]);
    sink.emit_clause(&[!lit, b]);
    sink.emit_clause(&[lit, !a, !b]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    fn count_models(build: impl Fn(&mut Solver, &[Var])) -> usize {
        let mut solver = Solver::new();
        let vars = solver.new_vars(4);
        build(&mut solver, &vars);
        let mut count = 0;
        loop {
            match solver.solve() {
                SolveResult::Sat(model) => {
                    count += 1;
                    let blocking: Vec<Lit> =
                        vars.iter().map(|&v| Lit::new(v, !model.value(v))).collect();
                    solver.add_clause(&blocking);
                }
                SolveResult::Unsat => return count,
            }
        }
    }

    #[test]
    fn exactly_one_has_n_models() {
        let count = count_models(|solver, vars| {
            let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
            exactly_one(solver, &lits);
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn at_most_one_has_n_plus_one_models() {
        let count = count_models(|solver, vars| {
            let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
            at_most_one(solver, &lits);
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn implication_and_iff_and() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        let c = solver.new_var();
        iff_and(&mut solver, Lit::pos(c), Lit::pos(a), Lit::pos(b));
        implies(&mut solver, Lit::pos(a), Lit::pos(b));
        solver.add_clause(&[Lit::pos(a)]);
        match solver.solve() {
            SolveResult::Sat(model) => {
                assert!(model.value(a));
                assert!(model.value(b));
                assert!(model.value(c));
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn encodings_work_on_cnf_container_too() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        exactly_one(&mut cnf, &lits);
        // 1 at-least-one clause + 3 pairwise at-most-one clauses.
        assert_eq!(cnf.clauses.len(), 4);
        assert!(cnf.eval(&[true, false, false]));
        assert!(!cnf.eval(&[true, true, false]));
        assert!(!cnf.eval(&[false, false, false]));
    }
}
