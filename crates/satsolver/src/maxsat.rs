//! Partial weighted MaxSAT on top of the CDCL solver.
//!
//! A MaxSAT problem is a triple `(H, S, W)` of hard clauses, soft clauses
//! and weights (Section 4.2 of the paper). The solver finds an assignment
//! that satisfies all hard clauses and minimizes the total weight of
//! falsified soft clauses.
//!
//! The algorithm is *model-improving linear search*: each soft clause is
//! relaxed with a fresh variable, an initial model gives an upper bound on
//! the cost, and the search repeatedly asks for a strictly cheaper model by
//! adding a pseudo-Boolean bound over the relaxation variables
//! ([`crate::pb::encode_leq`]) until the formula becomes unsatisfiable.

use crate::cnf::{Lit, Model, Var};
use crate::pb::encode_leq;
use crate::solver::{SolveResult, Solver};

/// A weighted soft clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftClause {
    /// The clause literals.
    pub lits: Vec<Lit>,
    /// The weight gained by satisfying the clause (equivalently, the cost
    /// paid for falsifying it). Must be positive.
    pub weight: u64,
}

/// The result of a MaxSAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaxSatResult {
    /// The hard clauses are satisfiable; the best model found and its cost
    /// (total weight of falsified soft clauses) are returned.
    Optimal {
        /// The optimal assignment.
        model: Model,
        /// Total weight of falsified soft clauses under `model`.
        cost: u64,
    },
    /// The hard clauses alone are unsatisfiable.
    Unsat,
}

impl MaxSatResult {
    /// Returns the model if the problem was satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            MaxSatResult::Optimal { model, .. } => Some(model),
            MaxSatResult::Unsat => None,
        }
    }
}

/// A partial weighted MaxSAT solver.
///
/// Hard and soft clauses are accumulated with [`MaxSatSolver::add_hard`] /
/// [`MaxSatSolver::add_soft`]; [`MaxSatSolver::solve`] may be called
/// repeatedly (e.g. after adding blocking clauses for already-explored value
/// correspondences).
#[derive(Debug, Default)]
pub struct MaxSatSolver {
    num_vars: u32,
    hard: Vec<Vec<Lit>>,
    soft: Vec<SoftClause>,
}

impl MaxSatSolver {
    /// Creates an empty MaxSAT instance.
    pub fn new() -> MaxSatSolver {
        MaxSatSolver::default()
    }

    /// Allocates a fresh problem variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// The number of problem variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Adds a hard clause.
    pub fn add_hard(&mut self, lits: &[Lit]) {
        self.hard.push(lits.to_vec());
    }

    /// Adds a soft clause with the given positive weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero (a zero-weight soft clause is meaningless;
    /// drop it instead).
    pub fn add_soft(&mut self, lits: &[Lit], weight: u64) {
        assert!(weight > 0, "soft clauses must have positive weight");
        self.soft.push(SoftClause {
            lits: lits.to_vec(),
            weight,
        });
    }

    /// The sum of all soft weights (an upper bound on any cost).
    pub fn total_soft_weight(&self) -> u64 {
        self.soft.iter().map(|s| s.weight).sum()
    }

    /// Builds a fresh CDCL solver containing the hard clauses, the relaxed
    /// soft clauses and (optionally) a bound on the relaxation cost.
    /// Returns the solver and the relaxation literals with their weights.
    fn build(&self, cost_bound: Option<u64>) -> (Solver, Vec<(Lit, u64)>) {
        let mut solver = Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for clause in &self.hard {
            solver.add_clause(clause);
        }
        let mut relax_terms = Vec::with_capacity(self.soft.len());
        for soft in &self.soft {
            let relax = solver.new_var();
            let mut clause = soft.lits.clone();
            clause.push(Lit::pos(relax));
            solver.add_clause(&clause);
            relax_terms.push((Lit::pos(relax), soft.weight));
        }
        if let Some(bound) = cost_bound {
            encode_leq(&mut solver, &relax_terms, bound);
        }
        (solver, relax_terms)
    }

    /// Computes the true cost of a model: the total weight of soft clauses
    /// falsified by the assignment to the *problem* variables (ignoring the
    /// relaxation variables, which may be set pessimistically).
    fn model_cost(&self, model: &Model) -> u64 {
        self.soft
            .iter()
            .filter(|soft| !soft.lits.iter().any(|&l| model.lit_value(l)))
            .map(|soft| soft.weight)
            .sum()
    }

    /// Solves the MaxSAT instance to optimality.
    pub fn solve(&self) -> MaxSatResult {
        // Initial feasibility check and upper bound.
        let (mut solver, _) = self.build(None);
        let mut best_model = match solver.solve() {
            SolveResult::Sat(model) => model,
            SolveResult::Unsat => return MaxSatResult::Unsat,
        };
        let mut best_cost = self.model_cost(&best_model);

        // Model-improving descent: repeatedly demand a strictly lower cost.
        while best_cost > 0 {
            let (mut solver, _) = self.build(Some(best_cost - 1));
            match solver.solve() {
                SolveResult::Sat(model) => {
                    let cost = self.model_cost(&model);
                    debug_assert!(cost < best_cost);
                    best_cost = cost;
                    best_model = model;
                }
                SolveResult::Unsat => break,
            }
        }

        // Truncate the model to the problem variables.
        let values = best_model.values()[..self.num_vars as usize].to_vec();
        MaxSatResult::Optimal {
            model: Model::new(values),
            cost: best_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_soft_prefers_heavier_clause() {
        let mut maxsat = MaxSatSolver::new();
        let a = maxsat.new_var();
        // Conflicting soft preferences: a (weight 5) vs !a (weight 2).
        maxsat.add_soft(&[Lit::pos(a)], 5);
        maxsat.add_soft(&[Lit::neg(a)], 2);
        match maxsat.solve() {
            MaxSatResult::Optimal { model, cost } => {
                assert!(model.value(a));
                assert_eq!(cost, 2);
            }
            MaxSatResult::Unsat => panic!("expected optimal"),
        }
    }

    #[test]
    fn hard_clauses_override_soft_preferences() {
        let mut maxsat = MaxSatSolver::new();
        let a = maxsat.new_var();
        maxsat.add_hard(&[Lit::neg(a)]);
        maxsat.add_soft(&[Lit::pos(a)], 100);
        match maxsat.solve() {
            MaxSatResult::Optimal { model, cost } => {
                assert!(!model.value(a));
                assert_eq!(cost, 100);
            }
            MaxSatResult::Unsat => panic!("expected optimal"),
        }
    }

    #[test]
    fn unsatisfiable_hard_clauses() {
        let mut maxsat = MaxSatSolver::new();
        let a = maxsat.new_var();
        maxsat.add_hard(&[Lit::pos(a)]);
        maxsat.add_hard(&[Lit::neg(a)]);
        maxsat.add_soft(&[Lit::pos(a)], 1);
        assert_eq!(maxsat.solve(), MaxSatResult::Unsat);
    }

    #[test]
    fn all_soft_satisfiable_gives_zero_cost() {
        let mut maxsat = MaxSatSolver::new();
        let a = maxsat.new_var();
        let b = maxsat.new_var();
        maxsat.add_soft(&[Lit::pos(a)], 3);
        maxsat.add_soft(&[Lit::pos(b)], 4);
        maxsat.add_soft(&[Lit::pos(a), Lit::pos(b)], 2);
        match maxsat.solve() {
            MaxSatResult::Optimal { model, cost } => {
                assert_eq!(cost, 0);
                assert!(model.value(a));
                assert!(model.value(b));
            }
            MaxSatResult::Unsat => panic!("expected optimal"),
        }
        assert_eq!(maxsat.total_soft_weight(), 9);
    }

    #[test]
    fn weighted_assignment_selection() {
        // Choose exactly one of three options (hard); soft weights rank them.
        let mut maxsat = MaxSatSolver::new();
        let options = [maxsat.new_var(), maxsat.new_var(), maxsat.new_var()];
        let lits: Vec<Lit> = options.iter().map(|&v| Lit::pos(v)).collect();
        maxsat.add_hard(&lits);
        for i in 0..3 {
            for j in (i + 1)..3 {
                maxsat.add_hard(&[!lits[i], !lits[j]]);
            }
        }
        maxsat.add_soft(&[lits[0]], 3);
        maxsat.add_soft(&[lits[1]], 7);
        maxsat.add_soft(&[lits[2]], 5);
        match maxsat.solve() {
            MaxSatResult::Optimal { model, cost } => {
                assert!(model.value(options[1]));
                assert_eq!(cost, 3 + 5);
            }
            MaxSatResult::Unsat => panic!("expected optimal"),
        }
    }

    /// Reference check against brute force on small weighted instances.
    #[test]
    fn agrees_with_brute_force() {
        let mut state = 0x9e3779b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let num_vars = 3 + (next() % 3) as usize;
            let mut maxsat = MaxSatSolver::new();
            let vars = maxsat.new_vars_for_test(num_vars);
            let num_hard = (next() % 3) as usize;
            let num_soft = 2 + (next() % 4) as usize;
            let mut hard = Vec::new();
            let mut soft = Vec::new();
            for _ in 0..num_hard {
                let clause = random_clause(&mut next, &vars);
                hard.push(clause.clone());
                maxsat.add_hard(&clause);
            }
            for _ in 0..num_soft {
                let clause = random_clause(&mut next, &vars);
                let weight = 1 + next() % 5;
                soft.push((clause.clone(), weight));
                maxsat.add_soft(&clause, weight);
            }
            // Brute force optimum.
            let mut best: Option<u64> = None;
            for mask in 0..(1u32 << num_vars) {
                let assign: Vec<bool> = (0..num_vars).map(|i| mask & (1 << i) != 0).collect();
                let eval_lit = |l: Lit| {
                    let v = assign[l.var().index()];
                    if l.is_positive() {
                        v
                    } else {
                        !v
                    }
                };
                if !hard.iter().all(|c| c.iter().any(|&l| eval_lit(l))) {
                    continue;
                }
                let cost: u64 = soft
                    .iter()
                    .filter(|(c, _)| !c.iter().any(|&l| eval_lit(l)))
                    .map(|&(_, w)| w)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }
            match (maxsat.solve(), best) {
                (MaxSatResult::Optimal { cost, .. }, Some(expected)) => {
                    assert_eq!(cost, expected, "maxsat cost disagrees with brute force");
                }
                (MaxSatResult::Unsat, None) => {}
                (got, expected) => panic!("mismatch: got {got:?}, expected {expected:?}"),
            }
        }
    }

    impl MaxSatSolver {
        fn new_vars_for_test(&mut self, n: usize) -> Vec<Var> {
            (0..n).map(|_| self.new_var()).collect()
        }
    }

    fn random_clause(next: &mut impl FnMut() -> u64, vars: &[Var]) -> Vec<Lit> {
        let width = 1 + (next() % 3) as usize;
        (0..width)
            .map(|_| {
                let var = vars[(next() % vars.len() as u64) as usize];
                Lit::new(var, next().is_multiple_of(2))
            })
            .collect()
    }
}
