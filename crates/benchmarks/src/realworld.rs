//! The ten real-world benchmarks, shaped after the Ruby-on-Rails
//! applications used in the paper's evaluation.
//!
//! The original GitHub applications are not redistributable, so each
//! benchmark is produced by a deterministic generator that builds an
//! application-scale schema (entity tables with realistic column names), a
//! CRUD-style source program with the published number of functions, and a
//! target schema obtained by applying the refactoring the paper describes
//! for that application (splitting tables, renaming attributes or tables,
//! adding, moving or dropping attributes, merging tables).

use dbir::ast::{Function, Program};
use dbir::builder::ProgramBuilder;
use dbir::schema::{QualifiedAttr, Schema, TableDef, TableName};
use dbir::value::DataType;

use crate::util::join_insert_function;
use crate::{Benchmark, Category, PaperNumbers};

/// A single refactoring step applied to the generated source schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refactoring {
    /// Move the last `moved` data attributes of `table` into a new
    /// `<Table>Detail` table linked by the entity's key column.
    Split {
        /// Index of the refactored table.
        table: usize,
        /// Number of data attributes moved to the new detail table.
        moved: usize,
    },
    /// Rename the first `count` data attributes of `table` in the target
    /// schema (a `_v2` suffix is appended).
    RenameAttrs {
        /// Index of the refactored table.
        table: usize,
        /// Number of attributes renamed.
        count: usize,
    },
    /// Rename `table` itself in the target schema (a `V2` suffix).
    RenameTable {
        /// Index of the renamed table.
        table: usize,
    },
    /// Add `count` new (unreferenced) attributes to `table` in the target.
    AddAttrs {
        /// Index of the extended table.
        table: usize,
        /// Number of attributes added.
        count: usize,
    },
    /// Move the last `count` data attributes of the pair's first table to
    /// its partner (tables `pair` and `pair + 1` are one-to-one linked and
    /// share an insert function).
    MoveAttrs {
        /// Index of the first table of the linked pair.
        pair: usize,
        /// Number of attributes moved.
        count: usize,
    },
    /// Merge table `pair + 1` into table `pair` (the pair is one-to-one
    /// linked and shares an insert function).
    Merge {
        /// Index of the first table of the linked pair.
        pair: usize,
    },
    /// Drop the last `count` data attributes of `table` in the target
    /// schema; the generator keeps those attributes out of the source
    /// program so an equivalent target program still exists.
    DropAttrs {
        /// Index of the refactored table.
        table: usize,
        /// Number of attributes dropped.
        count: usize,
    },
}

/// The specification of one generated real-world benchmark.
#[derive(Debug, Clone)]
pub struct RealWorldSpec {
    /// Benchmark name (as in Table 1).
    pub name: &'static str,
    /// The paper's description of the refactoring.
    pub description: &'static str,
    /// Number of entity tables in the source schema.
    pub tables: usize,
    /// Total number of attributes in the source schema.
    pub attrs: usize,
    /// Number of functions to generate.
    pub funcs: usize,
    /// Tables that form one-to-one linked pairs `(i, i + 1)`; required by
    /// [`Refactoring::MoveAttrs`] and [`Refactoring::Merge`].
    pub pairs: Vec<usize>,
    /// The refactoring steps applied to obtain the target schema.
    pub refactoring: Vec<Refactoring>,
    /// The paper's numbers for this benchmark.
    pub paper: PaperNumbers,
}

/// Realistic entity names used for generated tables.
const ENTITY_NAMES: &[&str] = &[
    "User", "Post", "Comment", "Photo", "Album", "Order", "Product", "Cart", "Review", "Tag",
    "Category", "Invoice", "Payment", "Shipment", "Address", "Profile", "Session", "Message",
    "Thread", "Event", "Ticket", "Venue", "Lesson", "Course", "Problem", "Topic", "Group",
    "Member", "Project", "Task",
];

/// Realistic column-name stems used for generated data attributes.
const FIELD_NAMES: &[&str] = &[
    "name", "title", "body", "email", "status", "price", "quantity", "rating", "notes", "code",
    "label", "phone", "city", "street", "level", "count", "info", "detail", "summary", "kind",
];

fn entity_name(index: usize) -> String {
    let base = ENTITY_NAMES[index % ENTITY_NAMES.len()];
    if index < ENTITY_NAMES.len() {
        base.to_string()
    } else {
        format!("{base}{}", index / ENTITY_NAMES.len() + 1)
    }
}

fn key_column(entity: &str) -> String {
    format!("{}_id", entity.to_ascii_lowercase())
}

fn field_name(entity: &str, index: usize) -> String {
    let stem = FIELD_NAMES[index % FIELD_NAMES.len()];
    if index < FIELD_NAMES.len() {
        format!("{}_{stem}", entity.to_ascii_lowercase())
    } else {
        format!(
            "{}_{stem}{}",
            entity.to_ascii_lowercase(),
            index / FIELD_NAMES.len()
        )
    }
}

fn field_type(index: usize) -> DataType {
    // A deterministic mix: mostly strings with some integers.
    if index % 3 == 2 {
        DataType::Int
    } else {
        DataType::String
    }
}

/// Builds the source schema: `tables` entity tables sharing `attrs`
/// attributes in total (each table gets a key column plus its share of data
/// columns). Paired tables share their partner's key column so they can be
/// joined and inserted together.
fn build_source_schema(spec: &RealWorldSpec) -> Schema {
    let mut schema = Schema::new();
    let data_attrs = spec.attrs.saturating_sub(spec.tables);
    // Paired partner tables additionally carry the pair's key column, which
    // counts toward the attribute budget.
    let extra_link_columns = spec.pairs.len();
    let data_attrs = data_attrs.saturating_sub(extra_link_columns);
    let base = data_attrs / spec.tables;
    let remainder = data_attrs % spec.tables;
    // Partners of a pair merged away by the refactoring are keyed by the
    // pair's link column (they are one-to-one extensions of the pair table);
    // every other table is keyed by its own id.
    let merge_partners: Vec<usize> = spec
        .refactoring
        .iter()
        .filter_map(|step| match step {
            Refactoring::Merge { pair } => Some(pair + 1),
            _ => None,
        })
        .collect();
    for index in 0..spec.tables {
        let entity = entity_name(index);
        let mut columns: Vec<(String, DataType)> = vec![(key_column(&entity), DataType::Int)];
        let mut primary_key = key_column(&entity);
        if spec.pairs.contains(&index.wrapping_sub(1)) {
            // Partner of a pair: carries the pair's key column as a link.
            let partner = entity_name(index - 1);
            columns.push((key_column(&partner), DataType::Int));
            if merge_partners.contains(&index) {
                primary_key = key_column(&partner);
            }
        }
        let count = base + usize::from(index < remainder);
        for attr_index in 0..count {
            columns.push((field_name(&entity, attr_index), field_type(attr_index)));
        }
        schema
            .add_table(TableDef::new(entity, columns).with_primary_key(primary_key))
            .expect("generated tables are unique");
    }
    schema
}

/// Applies the refactoring steps to the source schema to obtain the target
/// schema.
fn build_target_schema(spec: &RealWorldSpec, source: &Schema) -> Schema {
    // Work on a mutable copy of the table definitions.
    let mut tables: Vec<TableDef> = source.tables().to_vec();
    for step in &spec.refactoring {
        match step {
            Refactoring::Split { table, moved } => {
                let entity = tables[*table].name;
                let key = tables[*table].columns[0].clone();
                let total = tables[*table].columns.len();
                let moved = (*moved).min(total.saturating_sub(2));
                let split_off: Vec<_> = tables[*table].columns.split_off(total - moved);
                let mut detail_columns = vec![key.clone()];
                detail_columns.extend(split_off);
                tables.push(TableDef {
                    name: TableName::new(format!("{entity}Detail")),
                    columns: detail_columns,
                    primary_key: Some(key.name),
                });
            }
            Refactoring::RenameAttrs { table, count } => {
                let columns = &mut tables[*table].columns;
                for column in columns.iter_mut().skip(1).take(*count) {
                    column.name = format!("{}_v2", column.name).into();
                }
            }
            Refactoring::RenameTable { table } => {
                let old = tables[*table].name;
                tables[*table].name = TableName::new(format!("{old}V2"));
            }
            Refactoring::AddAttrs { table, count } => {
                let entity = tables[*table].name;
                for i in 0..*count {
                    tables[*table].columns.push(dbir::schema::ColumnDef {
                        name: format!("extra_{}_{i}", entity.as_str().to_ascii_lowercase()).into(),
                        ty: DataType::String,
                    });
                }
            }
            Refactoring::MoveAttrs { pair, count } => {
                let total = tables[*pair].columns.len();
                let count = (*count).min(total.saturating_sub(2));
                let moved: Vec<_> = tables[*pair].columns.split_off(total - count);
                tables[*pair + 1].columns.extend(moved);
            }
            Refactoring::Merge { pair } => {
                let absorbed = tables.remove(*pair + 1);
                // Drop the redundant link column (the pair's key already
                // lives in the surviving table); keep the absorbed table's
                // own key and data columns.
                let keep: Vec<_> = absorbed
                    .columns
                    .into_iter()
                    .filter(|c| c.name.as_str() != key_column(tables[*pair].name.as_str()))
                    .collect();
                tables[*pair].columns.extend(keep);
            }
            Refactoring::DropAttrs { table, count } => {
                let len = tables[*table].columns.len();
                tables[*table].columns.truncate(len.saturating_sub(*count));
            }
        }
    }
    let mut schema = Schema::new();
    for table in tables {
        schema
            .add_table(table)
            .expect("refactored tables remain unique");
    }
    schema
}

/// The columns of `table` that the source program may reference: dropped
/// attributes (from [`Refactoring::DropAttrs`]) are excluded so an
/// equivalent target program exists.
fn usable_data_columns(spec: &RealWorldSpec, schema: &Schema, table_index: usize) -> Vec<String> {
    let table = &schema.tables()[table_index];
    let dropped: usize = spec
        .refactoring
        .iter()
        .filter_map(|step| match step {
            Refactoring::DropAttrs { table, count } if *table == table_index => Some(*count),
            _ => None,
        })
        .sum();
    let keep = table.columns.len().saturating_sub(dropped);
    table.columns[..keep]
        .iter()
        .skip(1)
        .filter(|c| !c.name.as_str().ends_with("_id"))
        .map(|c| c.name.as_str().to_string())
        .collect()
}

/// Generates the CRUD-style source program with exactly `spec.funcs`
/// functions.
fn build_source_program(spec: &RealWorldSpec, schema: &Schema) -> Program {
    let mut functions: Vec<Function> = Vec::new();
    let paired_partner: Vec<usize> = spec.pairs.iter().map(|&p| p + 1).collect();
    // Tables whose pair is merged away by the refactoring: their rows cannot
    // be deleted independently in the target schema, so the source program
    // deletes the linked pair together (the usual cascade-delete idiom).
    let merge_pairs: Vec<usize> = spec
        .refactoring
        .iter()
        .filter_map(|step| match step {
            Refactoring::Merge { pair } => Some(*pair),
            _ => None,
        })
        .collect();
    let merge_involved = |table_index: usize| {
        merge_pairs.contains(&table_index)
            || (table_index > 0 && merge_pairs.contains(&(table_index - 1)))
    };

    // Menu rounds: each round adds one function per entity (where
    // applicable) until the function budget is reached.
    'outer: for round in 0..12 {
        for table_index in 0..spec.tables {
            if functions.len() >= spec.funcs {
                break 'outer;
            }
            let table = &schema.tables()[table_index];
            let entity = table.name.as_str().to_string();
            let key = key_column(&entity);
            let data = usable_data_columns(spec, schema, table_index);
            let function: Option<Function> = match round {
                // Round 0: insert. Pair-first tables get a combined insert;
                // partner tables are inserted through their pair.
                0 => {
                    if spec.pairs.contains(&table_index) {
                        let partner = entity_name(table_index + 1);
                        let dropped: Vec<QualifiedAttr> = dropped_attrs(spec, schema);
                        Some(join_insert_function(
                            schema,
                            &format!("add{entity}"),
                            &[entity.as_str(), partner.as_str()],
                            &dropped,
                        ))
                    } else if paired_partner.contains(&table_index) {
                        None
                    } else {
                        let dropped: Vec<QualifiedAttr> = dropped_attrs(spec, schema);
                        Some(join_insert_function(
                            schema,
                            &format!("add{entity}"),
                            &[entity.as_str()],
                            &dropped,
                        ))
                    }
                }
                // Round 1: primary getter.
                1 => {
                    let projected: Vec<&str> = data.iter().take(2).map(String::as_str).collect();
                    if projected.is_empty() {
                        None
                    } else {
                        single_function(schema, |b| {
                            b.select_by(&format!("get{entity}"), &entity, &key, &projected)
                                .map(|_| ())
                        })
                    }
                }
                // Round 2: delete by key. Tables merged away by the
                // refactoring are deleted together with their pair.
                2 => {
                    if merge_involved(table_index) {
                        let pair_first = if merge_pairs.contains(&table_index) {
                            table_index
                        } else {
                            table_index - 1
                        };
                        Some(pair_delete_function(
                            schema,
                            &format!("delete{entity}"),
                            pair_first,
                            (&entity, &key),
                        ))
                    } else {
                        single_function(schema, |b| {
                            b.delete_by(&format!("delete{entity}"), &entity, &key)
                                .map(|_| ())
                        })
                    }
                }
                // Round 3: update the first data attribute.
                3 => data.first().and_then(|attr| {
                    single_function(schema, |b| {
                        b.update_by(
                            &format!("update{entity}{}", camel(attr)),
                            &entity,
                            &key,
                            attr,
                        )
                        .map(|_| ())
                    })
                }),
                // Round 4: secondary getter.
                4 => {
                    let projected: Vec<&str> =
                        data.iter().skip(2).take(2).map(String::as_str).collect();
                    if projected.is_empty() {
                        None
                    } else {
                        single_function(schema, |b| {
                            b.select_by(&format!("get{entity}Detail"), &entity, &key, &projected)
                                .map(|_| ())
                        })
                    }
                }
                // Round 5: lookup by the first data attribute.
                5 => data.first().and_then(|attr| {
                    single_function(schema, |b| {
                        b.select_by(
                            &format!("find{entity}By{}", camel(attr)),
                            &entity,
                            attr,
                            &[&key],
                        )
                        .map(|_| ())
                    })
                }),
                // Round 6: update the second data attribute.
                6 => data.get(1).and_then(|attr| {
                    single_function(schema, |b| {
                        b.update_by(&format!("set{entity}{}", camel(attr)), &entity, &key, attr)
                            .map(|_| ())
                    })
                }),
                // Round 7: wide getter.
                7 => {
                    let projected: Vec<&str> = data.iter().take(4).map(String::as_str).collect();
                    if projected.len() < 3 {
                        None
                    } else {
                        single_function(schema, |b| {
                            b.select_by(&format!("get{entity}Full"), &entity, &key, &projected)
                                .map(|_| ())
                        })
                    }
                }
                // Round 8: delete by the first data attribute (skipped for
                // merge-involved tables, whose rows are only deleted in
                // pairs).
                8 => {
                    if merge_involved(table_index) {
                        None
                    } else {
                        data.first().and_then(|attr| {
                            single_function(schema, |b| {
                                b.delete_by(
                                    &format!("delete{entity}By{}", camel(attr)),
                                    &entity,
                                    attr,
                                )
                                .map(|_| ())
                            })
                        })
                    }
                }
                // Round 9: getter over the last usable data attribute.
                9 => data.last().and_then(|attr| {
                    single_function(schema, |b| {
                        b.select_by(
                            &format!("get{entity}{}", camel(attr)),
                            &entity,
                            &key,
                            &[attr],
                        )
                        .map(|_| ())
                    })
                }),
                // Round 10: third update.
                10 => data.get(2).and_then(|attr| {
                    single_function(schema, |b| {
                        b.update_by(
                            &format!("change{entity}{}", camel(attr)),
                            &entity,
                            &key,
                            attr,
                        )
                        .map(|_| ())
                    })
                }),
                // Round 11: lookup of the second data attribute by the first.
                _ => match (data.first(), data.get(1)) {
                    (Some(by), Some(get)) => single_function(schema, |b| {
                        b.select_by(
                            &format!("lookup{entity}{}", camel(get)),
                            &entity,
                            by,
                            &[get],
                        )
                        .map(|_| ())
                    }),
                    _ => None,
                },
            };
            if let Some(function) = function {
                if functions.iter().all(|f| f.name != function.name) {
                    functions.push(function);
                }
            }
        }
    }
    assert_eq!(
        functions.len(),
        spec.funcs,
        "generator for {} produced {} functions instead of {}",
        spec.name,
        functions.len(),
        spec.funcs
    );
    Program::new(functions)
}

/// Builds a delete function that removes the linked rows of a one-to-one
/// pair together, filtered on the given key attribute.
fn pair_delete_function(
    schema: &Schema,
    name: &str,
    pair_first: usize,
    key: (&str, &str),
) -> Function {
    let first = entity_name(pair_first);
    let partner = entity_name(pair_first + 1);
    let builder = ProgramBuilder::new(schema);
    let chain = builder
        .natural_chain(&[first.as_str(), partner.as_str()])
        .expect("pair tables share the pair key column");
    let key_attr = QualifiedAttr::new(key.0, key.1);
    let key_ty = schema
        .attr_type(&key_attr)
        .expect("pair key exists in the schema");
    Function::update(
        name,
        vec![dbir::ast::Param::new(key.1, key_ty)],
        dbir::ast::Update::Delete {
            tables: vec![TableName::new(first), TableName::new(partner)],
            join: chain,
            pred: dbir::ast::Pred::eq_value(key_attr, dbir::ast::Operand::param(key.1)),
        },
    )
}

/// Builds a single function with a fresh [`ProgramBuilder`], returning
/// `None` if the requested helper is not applicable to the table.
fn single_function(
    schema: &Schema,
    build: impl FnOnce(&mut ProgramBuilder) -> dbir::error::Result<()>,
) -> Option<Function> {
    let mut builder = ProgramBuilder::new(schema);
    if build(&mut builder).is_err() {
        return None;
    }
    let mut program = builder.build().ok()?;
    if program.functions.is_empty() {
        None
    } else {
        Some(program.functions.remove(0))
    }
}

/// The qualified source attributes dropped by the refactoring (these are
/// kept out of every generated insert).
fn dropped_attrs(spec: &RealWorldSpec, schema: &Schema) -> Vec<QualifiedAttr> {
    let mut result = Vec::new();
    for step in &spec.refactoring {
        if let Refactoring::DropAttrs { table, count } = step {
            let def = &schema.tables()[*table];
            let len = def.columns.len();
            for column in &def.columns[len.saturating_sub(*count)..] {
                result.push(QualifiedAttr {
                    table: def.name,
                    attr: column.name.clone(),
                });
            }
        }
    }
    result
}

fn camel(attr: &str) -> String {
    attr.split('_')
        .map(|part| {
            let mut chars = part.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Builds the benchmark described by `spec`.
pub fn build(spec: &RealWorldSpec) -> Benchmark {
    let source_schema = build_source_schema(spec);
    let target_schema = build_target_schema(spec, &source_schema);
    let source_program = build_source_program(spec, &source_schema);
    Benchmark {
        name: spec.name.to_string(),
        description: spec.description.to_string(),
        category: Category::RealWorld,
        source_schema,
        target_schema,
        source_program,
        paper: spec.paper.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn paper(
    funcs: usize,
    source_tables: usize,
    source_attrs: usize,
    target_tables: usize,
    target_attrs: usize,
    value_corr: usize,
    iters: usize,
    synth_time_secs: f64,
    total_time_secs: f64,
    enumerative_iters: Option<usize>,
    enumerative_time_secs: Option<f64>,
) -> PaperNumbers {
    PaperNumbers {
        funcs,
        source_tables,
        source_attrs,
        target_tables,
        target_attrs,
        value_corr,
        iters,
        synth_time_secs,
        total_time_secs,
        // The Sketch tool timed out on every real-world benchmark (Table 2).
        sketch_time_secs: None,
        enumerative_iters,
        enumerative_time_secs,
    }
}

/// The specifications of the ten real-world benchmarks.
pub fn specs() -> Vec<RealWorldSpec> {
    vec![
        RealWorldSpec {
            name: "cdx",
            description: "Rename attrs, split tables",
            tables: 16,
            attrs: 125,
            funcs: 138,
            pairs: vec![],
            refactoring: vec![
                Refactoring::RenameAttrs { table: 1, count: 3 },
                Refactoring::Split { table: 0, moved: 3 },
                Refactoring::AddAttrs { table: 2, count: 5 },
            ],
            paper: paper(
                138,
                16,
                125,
                17,
                131,
                1,
                7,
                11.9,
                38.9,
                Some(5595),
                Some(6169.4),
            ),
        },
        RealWorldSpec {
            name: "coachup",
            description: "Split tables",
            tables: 4,
            attrs: 51,
            funcs: 45,
            pairs: vec![],
            refactoring: vec![
                Refactoring::Split { table: 0, moved: 4 },
                Refactoring::AddAttrs { table: 1, count: 3 },
            ],
            paper: paper(45, 4, 51, 5, 55, 1, 10, 1.8, 6.7, Some(1303), Some(76.2)),
        },
        RealWorldSpec {
            name: "2030Club",
            description: "Split tables",
            tables: 15,
            attrs: 155,
            funcs: 125,
            pairs: vec![],
            refactoring: vec![
                Refactoring::Split { table: 2, moved: 4 },
                Refactoring::AddAttrs { table: 3, count: 3 },
            ],
            paper: paper(125, 15, 155, 16, 159, 1, 2, 5.2, 24.8, Some(2), Some(5.2)),
        },
        RealWorldSpec {
            name: "rails-ecomm",
            description: "Split tables, add new attrs",
            tables: 8,
            attrs: 69,
            funcs: 65,
            pairs: vec![],
            refactoring: vec![
                Refactoring::Split { table: 1, moved: 3 },
                Refactoring::AddAttrs { table: 0, count: 5 },
            ],
            paper: paper(65, 8, 69, 9, 75, 1, 6, 2.5, 10.3, Some(2779), Some(602.5)),
        },
        RealWorldSpec {
            name: "royk",
            description: "Add and move attrs",
            tables: 19,
            attrs: 152,
            funcs: 151,
            pairs: vec![0],
            refactoring: vec![
                Refactoring::MoveAttrs { pair: 0, count: 2 },
                Refactoring::AddAttrs { table: 2, count: 3 },
            ],
            paper: paper(151, 19, 152, 19, 155, 1, 17, 46.1, 60.1, None, None),
        },
        RealWorldSpec {
            name: "MathHotSpot",
            description: "Rename tables, move attrs",
            tables: 7,
            attrs: 38,
            funcs: 54,
            pairs: vec![2],
            refactoring: vec![
                Refactoring::RenameTable { table: 0 },
                Refactoring::MoveAttrs { pair: 2, count: 2 },
                Refactoring::Split { table: 1, moved: 2 },
                Refactoring::AddAttrs { table: 4, count: 3 },
            ],
            paper: paper(54, 7, 38, 8, 42, 6, 11, 1.2, 5.8, Some(115), Some(5.3)),
        },
        RealWorldSpec {
            name: "gallery",
            description: "Split tables",
            tables: 7,
            attrs: 52,
            funcs: 58,
            pairs: vec![],
            refactoring: vec![
                Refactoring::Split { table: 3, moved: 3 },
                Refactoring::AddAttrs { table: 0, count: 4 },
            ],
            paper: paper(
                58,
                7,
                52,
                8,
                57,
                1,
                11,
                2.5,
                9.4,
                Some(21_483),
                Some(32_266.2),
            ),
        },
        RealWorldSpec {
            name: "DeeJBase",
            description: "Rename attrs, split tables",
            tables: 10,
            attrs: 92,
            funcs: 70,
            pairs: vec![],
            refactoring: vec![
                Refactoring::RenameAttrs { table: 4, count: 2 },
                Refactoring::Split { table: 1, moved: 3 },
                Refactoring::AddAttrs { table: 5, count: 4 },
            ],
            paper: paper(70, 10, 92, 11, 97, 1, 8, 3.5, 9.3, Some(605), Some(142.8)),
        },
        RealWorldSpec {
            name: "visible-closet",
            description: "Split tables",
            tables: 26,
            attrs: 248,
            funcs: 263,
            pairs: vec![],
            refactoring: vec![
                Refactoring::Split { table: 0, moved: 4 },
                Refactoring::AddAttrs { table: 1, count: 3 },
            ],
            paper: paper(263, 26, 248, 27, 252, 1, 108, 1304.7, 1370.8, None, None),
        },
        RealWorldSpec {
            name: "probable-engine",
            description: "Merge tables",
            tables: 12,
            attrs: 83,
            funcs: 85,
            pairs: vec![4],
            refactoring: vec![
                Refactoring::DropAttrs { table: 5, count: 4 },
                Refactoring::Merge { pair: 4 },
            ],
            paper: paper(85, 12, 83, 11, 78, 1, 9, 4.6, 17.5, Some(1661), Some(540.3)),
        },
    ]
}

/// All ten real-world benchmarks, in the order of Table 1.
pub fn all() -> Vec<Benchmark> {
    specs().iter().map(build).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::equiv::{compare_programs, TestConfig};

    #[test]
    fn generated_schemas_have_expected_table_counts() {
        for benchmark in all() {
            assert_eq!(
                benchmark.source_schema.table_count(),
                benchmark.paper.source_tables,
                "{}",
                benchmark.name
            );
            assert_eq!(
                benchmark.target_schema.table_count(),
                benchmark.paper.target_tables,
                "{}",
                benchmark.name
            );
        }
    }

    #[test]
    fn generated_programs_have_exact_function_counts() {
        for benchmark in all() {
            assert_eq!(
                benchmark.source_program.functions.len(),
                benchmark.paper.funcs,
                "{}",
                benchmark.name
            );
        }
    }

    #[test]
    fn generated_programs_validate() {
        for benchmark in all() {
            benchmark
                .source_program
                .validate(&benchmark.source_schema)
                .unwrap_or_else(|e| panic!("{}: {e}", benchmark.name));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let first = build(&specs()[1]);
        let second = build(&specs()[1]);
        assert_eq!(first.source_schema, second.source_schema);
        assert_eq!(first.target_schema, second.target_schema);
        assert_eq!(first.source_program, second.source_program);
    }

    #[test]
    fn source_programs_are_self_equivalent() {
        // Smoke-test the generated programs by running them against
        // themselves with a shallow bound (catches ill-typed CRUD helpers).
        let benchmark = build(&specs()[1]);
        let report = compare_programs(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.source_program,
            &benchmark.source_schema,
            &TestConfig {
                max_updates: 1,
                max_arg_combinations: Some(2),
                ..TestConfig::default()
            },
        );
        assert!(report.equivalent);
    }

    #[test]
    fn camel_case_helper() {
        assert_eq!(camel("user_email"), "UserEmail");
        assert_eq!(camel("name"), "Name");
    }
}
