//! The ten textbook benchmarks (Oracle-1/2 and Ambler-1..8).
//!
//! Each scenario is re-created from its description in Table 1 of the
//! paper: the refactoring kind, the number of functions and the source /
//! target table and attribute counts all match the published metadata.
//! Where the original programs are not available, the function bodies are
//! natural CRUD-style operations for the schema in question.

use crate::util::{join_insert_function, parse_program, parse_schema};
use crate::{Benchmark, Category, PaperNumbers};
use dbir::schema::QualifiedAttr;
use dbir::Program;

#[allow(clippy::too_many_arguments)]
fn paper(
    funcs: usize,
    source_tables: usize,
    source_attrs: usize,
    target_tables: usize,
    target_attrs: usize,
    value_corr: usize,
    iters: usize,
    synth_time_secs: f64,
    total_time_secs: f64,
    sketch_time_secs: Option<f64>,
    enumerative_iters: Option<usize>,
    enumerative_time_secs: Option<f64>,
) -> PaperNumbers {
    PaperNumbers {
        funcs,
        source_tables,
        source_attrs,
        target_tables,
        target_attrs,
        value_corr,
        iters,
        synth_time_secs,
        total_time_secs,
        sketch_time_secs,
        enumerative_iters,
        enumerative_time_secs,
    }
}

fn benchmark(
    name: &str,
    description: &str,
    source_schema_text: &str,
    target_schema_text: &str,
    program: impl FnOnce(&dbir::Schema) -> Program,
    numbers: PaperNumbers,
) -> Benchmark {
    let source_schema = parse_schema(name, source_schema_text);
    let target_schema = parse_schema(name, target_schema_text);
    let source_program = program(&source_schema);
    Benchmark {
        name: name.to_string(),
        description: description.to_string(),
        category: Category::Textbook,
        source_schema,
        target_schema,
        source_program,
        paper: numbers,
    }
}

/// Oracle-1: merge a customer table and its address table into one table.
///
/// The `addCustomer` function is upsert-style (delete any existing row for
/// the key, then insert): merge refactorings are only behaviour-preserving
/// when the join key stays unique, and this is how the application
/// maintains that invariant.
pub fn oracle_1() -> Benchmark {
    benchmark(
        "Oracle-1",
        "Merge tables",
        "Customer(cid: int, name: string, email: string)\n\
         CustomerAddress(cid: int, street: string, city: string, zip: string, country: string)",
        "Customer(cid: int, name: string, email: string, street: string, city: string, zip: string)",
        |schema| {
            parse_program(
                "Oracle-1",
                r#"
                update addCustomer(cid: int, name: string, email: string, street: string, city: string, zip: string)
                    DELETE Customer, CustomerAddress FROM Customer JOIN CustomerAddress
                        WHERE Customer.cid = cid;
                    INSERT INTO Customer JOIN CustomerAddress VALUES (
                        Customer.cid: cid, name: name, email: email,
                        street: street, city: city, zip: zip);
                update deleteCustomer(cid: int)
                    DELETE Customer, CustomerAddress FROM Customer JOIN CustomerAddress
                    WHERE Customer.cid = cid;
                query getCustomerContact(cid: int)
                    SELECT name, email FROM Customer WHERE cid = cid;
                query getCustomerAddress(cid: int)
                    SELECT street, city FROM Customer JOIN CustomerAddress
                    WHERE Customer.cid = cid;
                "#,
                schema,
            )
        },
        paper(4, 2, 8, 1, 6, 1, 1, 0.3, 2.7, Some(88.2), Some(1), Some(0.3)),
    )
}

/// Oracle-2: split product, order and customer tables into seven tables.
pub fn oracle_2() -> Benchmark {
    benchmark(
        "Oracle-2",
        "Split tables",
        "Product(pk pid: int, pname: string, price: int, descr: string, image: binary, weight: int)\n\
         Orders(pk oid: int, pid: int, quantity: int, total: int, shipStreet: string, shipCity: string)\n\
         Customer(pk cid: int, cname: string, email: string, phone: string, street: string)",
        "Product(pk pid: int, pname: string, price: int, detailId: id)\n\
         ProductDetail(pk detailId: id, descr: string, image: binary, weight: int)\n\
         Orders(pk oid: int, pid: int, quantity: int, total: int, shipId: id)\n\
         Shipment(pk shipId: id, shipStreet: string, shipCity: string)\n\
         Customer(pk cid: int, cname: string, contactId: id, addrId: id)\n\
         Contact(pk contactId: id, email: string, phone: string)\n\
         CustAddr(pk addrId: id, street: string)",
        |schema| {
            parse_program(
                "Oracle-2",
                r#"
                update addProduct(pid: int, pname: string, price: int, descr: string, image: binary, weight: int)
                    INSERT INTO Product VALUES (pid: pid, pname: pname, price: price, descr: descr, image: image, weight: weight);
                update deleteProduct(pid: int)
                    DELETE Product FROM Product WHERE pid = pid;
                query getProduct(pid: int)
                    SELECT pname, price FROM Product WHERE pid = pid;
                query getProductDetail(pid: int)
                    SELECT descr, weight FROM Product WHERE pid = pid;
                query getProductImage(pid: int)
                    SELECT image FROM Product WHERE pid = pid;
                update updatePrice(pid: int, newPrice: int)
                    UPDATE Product SET price = newPrice WHERE pid = pid;
                update addOrder(oid: int, pid: int, quantity: int, total: int, shipStreet: string, shipCity: string)
                    INSERT INTO Orders VALUES (oid: oid, pid: pid, quantity: quantity, total: total, shipStreet: shipStreet, shipCity: shipCity);
                update deleteOrder(oid: int)
                    DELETE Orders FROM Orders WHERE oid = oid;
                query getOrder(oid: int)
                    SELECT quantity, total FROM Orders WHERE oid = oid;
                query getShipment(oid: int)
                    SELECT shipStreet, shipCity FROM Orders WHERE oid = oid;
                update updateQuantity(oid: int, newQuantity: int)
                    UPDATE Orders SET quantity = newQuantity WHERE oid = oid;
                update addCustomer(cid: int, cname: string, email: string, phone: string, street: string)
                    INSERT INTO Customer VALUES (cid: cid, cname: cname, email: email, phone: phone, street: street);
                update deleteCustomer(cid: int)
                    DELETE Customer FROM Customer WHERE cid = cid;
                query getCustomerName(cid: int)
                    SELECT cname FROM Customer WHERE cid = cid;
                query getCustomerContact(cid: int)
                    SELECT email, phone FROM Customer WHERE cid = cid;
                query getCustomerStreet(cid: int)
                    SELECT street FROM Customer WHERE cid = cid;
                update updateEmail(cid: int, newEmail: string)
                    UPDATE Customer SET email = newEmail WHERE cid = cid;
                update updatePhone(cid: int, newPhone: string)
                    UPDATE Customer SET phone = newPhone WHERE cid = cid;
                query getCustomerFull(cid: int)
                    SELECT cname, email, street FROM Customer WHERE cid = cid;
                "#,
                schema,
            )
        },
        paper(19, 3, 17, 7, 25, 1, 5, 0.5, 11.3, None, Some(5), Some(0.5)),
    )
}

/// Ambler-1: split an employee table into core data and rarely used details.
pub fn ambler_1() -> Benchmark {
    benchmark(
        "Ambler-1",
        "Split tables",
        "Employee(pk eid: int, name: string, title: string, salary: int, photo: binary, bio: string)",
        "Employee(pk eid: int, name: string, title: string, salary: int)\n\
         EmployeeDetail(pk eid: int, photo: binary, bio: string)",
        |schema| {
            parse_program(
                "Ambler-1",
                r#"
                update addEmployee(eid: int, name: string, title: string, salary: int, photo: binary, bio: string)
                    INSERT INTO Employee VALUES (eid: eid, name: name, title: title, salary: salary, photo: photo, bio: bio);
                update deleteEmployee(eid: int)
                    DELETE Employee FROM Employee WHERE eid = eid;
                query getProfile(eid: int)
                    SELECT name, title FROM Employee WHERE eid = eid;
                query getPhoto(eid: int)
                    SELECT photo FROM Employee WHERE eid = eid;
                query getBio(eid: int)
                    SELECT bio FROM Employee WHERE eid = eid;
                query getSalary(eid: int)
                    SELECT salary FROM Employee WHERE eid = eid;
                update updateSalary(eid: int, newSalary: int)
                    UPDATE Employee SET salary = newSalary WHERE eid = eid;
                update updateBio(eid: int, newBio: string)
                    UPDATE Employee SET bio = newBio WHERE eid = eid;
                query getFullRecord(eid: int)
                    SELECT name, photo FROM Employee WHERE eid = eid;
                update deleteByTitle(title: string)
                    DELETE Employee FROM Employee WHERE title = title;
                "#,
                schema,
            )
        },
        paper(10, 1, 6, 2, 7, 1, 2, 0.3, 2.9, Some(3136.5), Some(2), Some(0.3)),
    )
}

/// Ambler-2: merge a person table with its contact table.
pub fn ambler_2() -> Benchmark {
    benchmark(
        "Ambler-2",
        "Merge tables",
        "Person(pid: int, firstName: string, lastName: string)\n\
         Contact(pid: int, email: string, phone: string, fax: string)",
        "Person(pid: int, firstName: string, lastName: string, email: string, phone: string, fax: string)",
        |schema| {
            parse_program(
                "Ambler-2",
                r#"
                update addPerson(pid: int, firstName: string, lastName: string, email: string, phone: string, fax: string)
                    DELETE Person, Contact FROM Person JOIN Contact WHERE Person.pid = pid;
                    INSERT INTO Person JOIN Contact VALUES (
                        Person.pid: pid, firstName: firstName, lastName: lastName,
                        email: email, phone: phone, fax: fax);
                update deletePerson(pid: int)
                    DELETE Person, Contact FROM Person JOIN Contact WHERE Person.pid = pid;
                query getName(pid: int)
                    SELECT firstName, lastName FROM Person WHERE pid = pid;
                query getEmail(pid: int)
                    SELECT email FROM Contact WHERE pid = pid;
                query getPhone(pid: int)
                    SELECT phone FROM Contact WHERE pid = pid;
                query getFax(pid: int)
                    SELECT fax FROM Contact WHERE pid = pid;
                update updateEmail(pid: int, newEmail: string)
                    UPDATE Contact SET email = newEmail WHERE pid = pid;
                update updatePhone(pid: int, newPhone: string)
                    UPDATE Contact SET phone = newPhone WHERE pid = pid;
                query getContactCard(pid: int)
                    SELECT firstName, email, phone FROM Person JOIN Contact WHERE Person.pid = pid;
                update deleteByEmail(email: string)
                    DELETE Person, Contact FROM Person JOIN Contact WHERE email = email;
                "#,
                schema,
            )
        },
        paper(10, 2, 7, 1, 6, 1, 1, 0.3, 0.6, Some(71.5), Some(1), Some(0.3)),
    )
}

/// Ambler-3: move the preferences attribute from the customer table to the
/// account table.
pub fn ambler_3() -> Benchmark {
    benchmark(
        "Ambler-3",
        "Move attrs",
        "Customer(cid: int, name: string, prefs: string)\n\
         Account(aid: int, cid: int)",
        "Customer(cid: int, name: string)\n\
         Account(aid: int, cid: int, prefs: string)",
        |schema| {
            let mut functions = vec![join_insert_function(
                schema,
                "addCustomerAccount",
                &["Customer", "Account"],
                &[],
            )];
            functions.extend(
                parse_program(
                    "Ambler-3",
                    r#"
                    update deleteCustomer(cid: int)
                        DELETE Customer, Account FROM Customer JOIN Account WHERE Customer.cid = cid;
                    query getName(cid: int)
                        SELECT name FROM Customer WHERE cid = cid;
                    query getPrefs(cid: int)
                        SELECT prefs FROM Customer WHERE cid = cid;
                    update updatePrefs(cid: int, newPrefs: string)
                        UPDATE Customer SET prefs = newPrefs WHERE cid = cid;
                    query getAccountOf(cid: int)
                        SELECT aid FROM Account WHERE cid = cid;
                    query getCustomerOfAccount(aid: int)
                        SELECT name FROM Customer JOIN Account WHERE aid = aid;
                    "#,
                    schema,
                )
                .functions,
            );
            Program::new(functions)
        },
        paper(
            7,
            2,
            5,
            2,
            5,
            2,
            5,
            0.4,
            30.6,
            Some(74.7),
            Some(6),
            Some(0.4),
        ),
    )
}

/// Ambler-4: rename an attribute.
pub fn ambler_4() -> Benchmark {
    benchmark(
        "Ambler-4",
        "Rename attrs",
        "Member(mid: int, fname: string)",
        "Member(mid: int, firstName: string)",
        |schema| {
            parse_program(
                "Ambler-4",
                r#"
                update addMember(mid: int, fname: string)
                    INSERT INTO Member VALUES (mid: mid, fname: fname);
                update deleteMember(mid: int)
                    DELETE Member FROM Member WHERE mid = mid;
                query getMember(mid: int)
                    SELECT fname FROM Member WHERE mid = mid;
                update updateName(mid: int, newName: string)
                    UPDATE Member SET fname = newName WHERE mid = mid;
                query getByName(fname: string)
                    SELECT mid FROM Member WHERE fname = fname;
                "#,
                schema,
            )
        },
        paper(5, 1, 2, 1, 2, 1, 1, 0.3, 0.5, Some(1.6), Some(1), Some(0.3)),
    )
}

/// Ambler-5: introduce an associative table for the advisor relationship.
pub fn ambler_5() -> Benchmark {
    benchmark(
        "Ambler-5",
        "Add associative tables",
        "Student(pk sid: int, sname: string, advisorId: int)\n\
         Professor(pk pid: int, pname: string)",
        "Student(pk sid: int, sname: string)\n\
         Professor(pk pid: int, pname: string)\n\
         Advises(pk sid: int, pid: int)",
        |schema| {
            parse_program(
                "Ambler-5",
                r#"
                update addStudent(sid: int, sname: string, advisorId: int)
                    INSERT INTO Student VALUES (sid: sid, sname: sname, advisorId: advisorId);
                update addProfessor(pid: int, pname: string)
                    INSERT INTO Professor VALUES (pid: pid, pname: pname);
                update deleteStudent(sid: int)
                    DELETE Student FROM Student WHERE sid = sid;
                update deleteProfessor(pid: int)
                    DELETE Professor FROM Professor WHERE pid = pid;
                query getStudentName(sid: int)
                    SELECT sname FROM Student WHERE sid = sid;
                query getProfessorName(pid: int)
                    SELECT pname FROM Professor WHERE pid = pid;
                query getAdvisorName(sid: int)
                    SELECT pname FROM Student JOIN Professor ON Student.advisorId = Professor.pid
                    WHERE sid = sid;
                query getAdvisees(pid: int)
                    SELECT sname FROM Student JOIN Professor ON Student.advisorId = Professor.pid
                    WHERE Professor.pid = pid;
                "#,
                schema,
            )
        },
        paper(
            8,
            2,
            5,
            3,
            6,
            5,
            7,
            0.3,
            3.1,
            Some(494.4),
            Some(11),
            Some(0.4),
        ),
    )
}

/// Ambler-6: replace the natural publisher key with a surrogate key.
pub fn ambler_6() -> Benchmark {
    benchmark(
        "Ambler-6",
        "Replace keys",
        "Book(pk bid: int, title: string, author: string, year: int, pubCode: int)\n\
         Publisher(pk pubCode: int, pname: string, country: string, city: string)",
        "Book(pk bid: int, title: string, author: string, year: int, pubId: id)\n\
         Publisher(pk pubId: id, pname: string, country: string)",
        |schema| {
            let mut functions = vec![join_insert_function(
                schema,
                "addBookWithPublisher",
                &["Book", "Publisher"],
                &[QualifiedAttr::new("Publisher", "city")],
            )];
            functions.extend(
                parse_program(
                    "Ambler-6",
                    r#"
                    update deleteBook(bid: int)
                        DELETE Book FROM Book WHERE bid = bid;
                    query getBook(bid: int)
                        SELECT title, author FROM Book WHERE bid = bid;
                    query getBookYear(bid: int)
                        SELECT year FROM Book WHERE bid = bid;
                    query getPublisherName(bid: int)
                        SELECT pname FROM Book JOIN Publisher WHERE bid = bid;
                    query getPublisherCountry(bid: int)
                        SELECT country FROM Book JOIN Publisher WHERE bid = bid;
                    update updateYear(bid: int, newYear: int)
                        UPDATE Book SET year = newYear WHERE bid = bid;
                    update updateCountry(bid: int, newCountry: string)
                        UPDATE Book JOIN Publisher SET country = newCountry WHERE bid = bid;
                    query getBooksByAuthor(author: string)
                        SELECT title FROM Book WHERE author = author;
                    update deleteBookAndPublisher(bid: int)
                        DELETE Book, Publisher FROM Book JOIN Publisher WHERE bid = bid;
                    "#,
                    schema,
                )
                .functions,
            );
            Program::new(functions)
        },
        paper(
            10,
            2,
            9,
            2,
            8,
            1,
            1,
            0.3,
            0.7,
            Some(226.2),
            Some(1),
            Some(0.3),
        ),
    )
}

/// Ambler-7: add a new (unused) attribute to the player table.
pub fn ambler_7() -> Benchmark {
    benchmark(
        "Ambler-7",
        "Add attrs",
        "Team(tid: int, tname: string, coach: string)\n\
         Player(plid: int, tid: int, pname: string, position: string)",
        "Team(tid: int, tname: string, coach: string)\n\
         Player(plid: int, tid: int, pname: string, position: string, jersey: int)",
        |schema| {
            parse_program(
                "Ambler-7",
                r#"
                update addTeam(tid: int, tname: string, coach: string)
                    INSERT INTO Team VALUES (tid: tid, tname: tname, coach: coach);
                update addPlayer(plid: int, tid: int, pname: string, position: string)
                    INSERT INTO Player VALUES (plid: plid, tid: tid, pname: pname, position: position);
                update deleteTeam(tid: int)
                    DELETE Team FROM Team WHERE tid = tid;
                update deletePlayer(plid: int)
                    DELETE Player FROM Player WHERE plid = plid;
                query getTeamName(tid: int)
                    SELECT tname FROM Team WHERE tid = tid;
                query getPlayerName(plid: int)
                    SELECT pname FROM Player WHERE plid = plid;
                query getPlayersOfTeam(tid: int)
                    SELECT pname FROM Team JOIN Player WHERE Team.tid = tid;
                query getPlayerPosition(plid: int)
                    SELECT position FROM Player WHERE plid = plid;
                "#,
                schema,
            )
        },
        paper(
            8,
            2,
            7,
            2,
            8,
            1,
            1,
            0.3,
            0.6,
            Some(814.8),
            Some(1),
            Some(0.3),
        ),
    )
}

/// Ambler-8: denormalize author and blog information into dependent tables.
pub fn ambler_8() -> Benchmark {
    benchmark(
        "Ambler-8",
        "Denormalization",
        "Author(aid: int, aname: string, aemail: string)\n\
         Blog(bid: int, aid: int, btitle: string)\n\
         Post(postid: int, bid: int, ptitle: string, content: string)",
        "Author(aid: int, aname: string, aemail: string)\n\
         Blog(bid: int, aid: int, btitle: string, authorName: string)\n\
         Post(postid: int, bid: int, ptitle: string, content: string, blogTitle: string, postAuthor: string)",
        |schema| {
            parse_program(
                "Ambler-8",
                r#"
                update addAuthor(aid: int, aname: string, aemail: string)
                    INSERT INTO Author VALUES (aid: aid, aname: aname, aemail: aemail);
                update addBlog(bid: int, aid: int, btitle: string)
                    INSERT INTO Blog VALUES (bid: bid, aid: aid, btitle: btitle);
                update addPost(postid: int, bid: int, ptitle: string, content: string)
                    INSERT INTO Post VALUES (postid: postid, bid: bid, ptitle: ptitle, content: content);
                update deleteAuthor(aid: int)
                    DELETE Author FROM Author WHERE aid = aid;
                update deleteBlog(bid: int)
                    DELETE Blog FROM Blog WHERE bid = bid;
                update deletePost(postid: int)
                    DELETE Post FROM Post WHERE postid = postid;
                query getAuthorName(aid: int)
                    SELECT aname FROM Author WHERE aid = aid;
                query getAuthorEmail(aid: int)
                    SELECT aemail FROM Author WHERE aid = aid;
                query getBlogTitle(bid: int)
                    SELECT btitle FROM Blog WHERE bid = bid;
                query getPostTitle(postid: int)
                    SELECT ptitle FROM Post WHERE postid = postid;
                query getPostContent(postid: int)
                    SELECT content FROM Post WHERE postid = postid;
                query getBlogsOfAuthor(aid: int)
                    SELECT btitle FROM Author JOIN Blog WHERE Author.aid = aid;
                query getPostsOfBlog(bid: int)
                    SELECT ptitle FROM Blog JOIN Post WHERE Blog.bid = bid;
                query getPostAuthor(postid: int)
                    SELECT aname FROM Author JOIN Blog JOIN Post WHERE postid = postid;
                "#,
                schema,
            )
        },
        paper(
            14,
            3,
            10,
            3,
            13,
            1,
            7,
            0.5,
            3.1,
            None,
            Some(67_996),
            Some(54_367.6),
        ),
    )
}

/// All ten textbook benchmarks, in the order of Table 1.
pub fn all() -> Vec<Benchmark> {
    vec![
        oracle_1(),
        oracle_2(),
        ambler_1(),
        ambler_2(),
        ambler_3(),
        ambler_4(),
        ambler_5(),
        ambler_6(),
        ambler_7(),
        ambler_8(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_textbook_benchmarks_have_exact_paper_shape() {
        for benchmark in all() {
            let (funcs, st, sa, tt, ta) = benchmark.measured_shape();
            assert_eq!(
                (funcs, st, sa, tt, ta),
                (
                    benchmark.paper.funcs,
                    benchmark.paper.source_tables,
                    benchmark.paper.source_attrs,
                    benchmark.paper.target_tables,
                    benchmark.paper.target_attrs,
                ),
                "benchmark {} diverges from the paper's Table 1 metadata",
                benchmark.name
            );
        }
    }

    #[test]
    fn textbook_programs_validate_against_their_source_schemas() {
        for benchmark in all() {
            assert!(benchmark
                .source_program
                .validate(&benchmark.source_schema)
                .is_ok());
        }
    }

    #[test]
    fn descriptions_match_refactoring_kinds() {
        let benchmarks = all();
        assert_eq!(benchmarks[0].description, "Merge tables");
        assert_eq!(benchmarks[2].description, "Split tables");
        assert_eq!(benchmarks[9].description, "Denormalization");
    }
}
