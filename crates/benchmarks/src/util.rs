//! Shared helpers for constructing benchmark programs.

use dbir::ast::{Function, JoinChain, Operand, Param, Program, Update};
use dbir::builder::ProgramBuilder;
use dbir::schema::{QualifiedAttr, Schema, TableName};

/// Builds an update function that inserts one linked row into each of the
/// given tables with a single statement over their natural join chain
/// (the paper's `INSERT INTO T1 ⋈ T2 VALUES …` shorthand).
///
/// The function takes one parameter per distinct column name across the
/// tables (shared join columns appear once); columns listed in `skip` are
/// left unassigned.
///
/// # Panics
///
/// Panics if a table is unknown or consecutive tables cannot be naturally
/// joined; benchmark definitions are static, so this indicates a bug in the
/// benchmark itself.
pub fn join_insert_function(
    schema: &Schema,
    name: &str,
    tables: &[&str],
    skip: &[QualifiedAttr],
) -> Function {
    let builder = ProgramBuilder::new(schema);
    let chain: JoinChain = builder
        .natural_chain(tables)
        .unwrap_or_else(|e| panic!("benchmark bug: cannot join {tables:?}: {e}"));
    let mut params: Vec<Param> = Vec::new();
    let mut values: Vec<(QualifiedAttr, Operand)> = Vec::new();
    for table_name in tables {
        let table = schema
            .table(&TableName::new(*table_name))
            .unwrap_or_else(|| panic!("benchmark bug: unknown table {table_name}"));
        for column in &table.columns {
            let qattr = QualifiedAttr {
                table: table.name,
                attr: column.name.clone(),
            };
            if skip.contains(&qattr) {
                continue;
            }
            let param_name = column.name.as_str().to_string();
            if params.iter().all(|p| p.name != param_name) {
                params.push(Param::new(param_name.clone(), column.ty));
            }
            // Shared join columns are assigned once (on their first table);
            // the evaluator propagates the value along the join condition.
            if values
                .iter()
                .all(|(attr, _)| attr.attr.as_str() != column.name.as_str())
            {
                values.push((qattr, Operand::param(param_name)));
            }
        }
    }
    Function::update(
        name,
        params,
        Update::Insert {
            join: chain,
            values,
        },
    )
}

/// Convenience wrapper: parse a schema, panicking with the benchmark name on
/// failure (benchmark definitions are static data).
pub fn parse_schema(benchmark: &str, text: &str) -> Schema {
    Schema::parse(text).unwrap_or_else(|e| panic!("benchmark {benchmark}: invalid schema: {e}"))
}

/// Convenience wrapper: parse a program against a schema, panicking with the
/// benchmark name on failure.
pub fn parse_program(benchmark: &str, text: &str, schema: &Schema) -> Program {
    dbir::parser::parse_program(text, schema)
        .unwrap_or_else(|e| panic!("benchmark {benchmark}: invalid program: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::equiv::TestConfig;
    use dbir::invocation::{run, Call, InvocationSequence};
    use dbir::value::Value;

    #[test]
    fn join_insert_function_links_tables() {
        let schema = parse_schema(
            "test",
            "Person(pid: int, name: string)\nContact(pid: int, email: string)",
        );
        let add = join_insert_function(&schema, "addPerson", &["Person", "Contact"], &[]);
        assert_eq!(add.params.len(), 3); // pid shared between the tables
        let program = Program::new(vec![
            add,
            parse_program(
                "test",
                "query getEmail(pid: int) SELECT email FROM Person JOIN Contact WHERE Person.pid = pid;",
                &schema,
            )
            .functions
            .remove(0),
        ]);
        assert!(program.validate(&schema).is_ok());
        let seq = InvocationSequence::new(
            vec![Call::new(
                "addPerson",
                vec![Value::Int(1), Value::str("ada"), Value::str("a@x")],
            )],
            Call::new("getEmail", vec![Value::Int(1)]),
        );
        let result = run(&program, &schema, &seq).unwrap();
        assert_eq!(result.rows, vec![vec![Value::str("a@x")]]);
        let _ = TestConfig::default();
    }

    #[test]
    fn join_insert_function_skips_requested_columns() {
        let schema = parse_schema("test", "Person(pid: int, name: string, legacy: string)");
        let add = join_insert_function(
            &schema,
            "addPerson",
            &["Person"],
            &[QualifiedAttr::new("Person", "legacy")],
        );
        assert_eq!(add.params.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot join")]
    fn unjoinable_tables_panic() {
        let schema = parse_schema("test", "A(x: int)\nB(y: int)");
        let _ = join_insert_function(&schema, "add", &["A", "B"], &[]);
    }
}
