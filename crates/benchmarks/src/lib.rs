//! # benchmarks — the 20 schema-refactoring benchmarks of the Migrator
//! evaluation
//!
//! The paper evaluates Migrator on 20 benchmarks taken from the Mediator
//! artifact: ten textbook refactoring scenarios (Oracle and Ambler) and ten
//! programs extracted from real-world Ruby-on-Rails applications on GitHub.
//! The textbook scenarios are re-created faithfully in [`textbook`]; the
//! real-world applications are not redistributable, so [`realworld`]
//! generates CRUD-style programs whose function, table and attribute counts
//! match the published per-benchmark metadata (see DESIGN.md for the
//! substitution rationale).
//!
//! Every benchmark carries the numbers the paper reports for it
//! ([`PaperNumbers`]), so the experiment harness can print paper-vs-measured
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod realworld;
pub mod textbook;
pub mod util;

use dbir::{Program, Schema};

/// Whether a benchmark is a textbook scenario or a real-world application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Adapted from database refactoring textbooks and tutorials.
    Textbook,
    /// Shaped after a real-world Ruby-on-Rails application.
    RealWorld,
}

/// The numbers the paper reports for one benchmark (Tables 1–3).
#[derive(Debug, Clone, PartialEq)]
pub struct PaperNumbers {
    /// Table 1: number of functions.
    pub funcs: usize,
    /// Table 1: source schema table count.
    pub source_tables: usize,
    /// Table 1: source schema attribute count.
    pub source_attrs: usize,
    /// Table 1: target schema table count.
    pub target_tables: usize,
    /// Table 1: target schema attribute count.
    pub target_attrs: usize,
    /// Table 1: number of value correspondences considered.
    pub value_corr: usize,
    /// Table 1: number of candidate programs explored.
    pub iters: usize,
    /// Table 1: synthesis time in seconds (excluding verification).
    pub synth_time_secs: f64,
    /// Table 1: total time in seconds (including verification).
    pub total_time_secs: f64,
    /// Table 2: the Sketch tool's synthesis time in seconds
    /// (`None` = timeout after 24 hours).
    pub sketch_time_secs: Option<f64>,
    /// Table 3: iterations of the symbolic enumerative baseline
    /// (`None` = timeout).
    pub enumerative_iters: Option<usize>,
    /// Table 3: synthesis time of the symbolic enumerative baseline in
    /// seconds (`None` = timeout).
    pub enumerative_time_secs: Option<f64>,
}

/// One schema-refactoring benchmark: a source program and schema plus the
/// target schema it must be migrated to.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as it appears in the paper's tables.
    pub name: String,
    /// The paper's description of the refactoring.
    pub description: String,
    /// Textbook or real-world.
    pub category: Category,
    /// The source schema.
    pub source_schema: Schema,
    /// The target schema.
    pub target_schema: Schema,
    /// The source program to be migrated.
    pub source_program: Program,
    /// The numbers the paper reports for this benchmark.
    pub paper: PaperNumbers,
}

impl Benchmark {
    /// The benchmark's own measured metadata (function and schema counts),
    /// for comparison against [`PaperNumbers`].
    pub fn measured_shape(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.source_program.functions.len(),
            self.source_schema.table_count(),
            self.source_schema.attr_count(),
            self.target_schema.table_count(),
            self.target_schema.attr_count(),
        )
    }
}

/// All ten textbook benchmarks, in the order of Table 1.
pub fn textbook_benchmarks() -> Vec<Benchmark> {
    textbook::all()
}

/// All ten real-world benchmarks, in the order of Table 1.
pub fn real_world_benchmarks() -> Vec<Benchmark> {
    realworld::all()
}

/// All twenty benchmarks, in the order of Table 1.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut benchmarks = textbook_benchmarks();
    benchmarks.extend(real_world_benchmarks());
    benchmarks
}

/// Looks up a benchmark by its (case-insensitive) name.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twenty_benchmarks() {
        let benchmarks = all_benchmarks();
        assert_eq!(benchmarks.len(), 20);
        assert_eq!(textbook_benchmarks().len(), 10);
        assert_eq!(real_world_benchmarks().len(), 10);
    }

    #[test]
    fn benchmark_names_are_unique_and_resolvable() {
        let benchmarks = all_benchmarks();
        let names: std::collections::BTreeSet<&str> =
            benchmarks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), benchmarks.len());
        assert!(benchmark_by_name("Oracle-1").is_some());
        assert!(benchmark_by_name("oracle-1").is_some());
        assert!(benchmark_by_name("visible-closet").is_some());
        assert!(benchmark_by_name("nonexistent").is_none());
    }

    #[test]
    fn source_programs_are_well_formed() {
        for benchmark in all_benchmarks() {
            assert!(
                benchmark
                    .source_program
                    .validate(&benchmark.source_schema)
                    .is_ok(),
                "benchmark {} has an ill-formed source program",
                benchmark.name
            );
        }
    }

    #[test]
    fn function_counts_match_the_paper() {
        for benchmark in all_benchmarks() {
            let (funcs, ..) = benchmark.measured_shape();
            assert_eq!(
                funcs, benchmark.paper.funcs,
                "benchmark {} should have {} functions, found {funcs}",
                benchmark.name, benchmark.paper.funcs
            );
        }
    }

    #[test]
    fn table_counts_match_the_paper() {
        for benchmark in all_benchmarks() {
            let (_, st, _, tt, _) = benchmark.measured_shape();
            assert_eq!(
                (st, tt),
                (benchmark.paper.source_tables, benchmark.paper.target_tables),
                "benchmark {} table counts diverge from the paper",
                benchmark.name
            );
        }
    }

    #[test]
    fn attr_counts_are_close_to_the_paper() {
        // Attribute counts of the synthetic real-world benchmarks are allowed
        // to deviate slightly (see DESIGN.md); textbook benchmarks are exact.
        for benchmark in all_benchmarks() {
            let (_, _, sa, _, ta) = benchmark.measured_shape();
            let (psa, pta) = (benchmark.paper.source_attrs, benchmark.paper.target_attrs);
            match benchmark.category {
                Category::Textbook => {
                    assert_eq!(
                        (sa, ta),
                        (psa, pta),
                        "benchmark {} attribute counts diverge from the paper",
                        benchmark.name
                    );
                }
                Category::RealWorld => {
                    let close = |a: usize, b: usize| a.abs_diff(b) * 10 <= b.max(10);
                    assert!(
                        close(sa, psa) && close(ta, pta),
                        "benchmark {} attribute counts ({sa}, {ta}) too far from paper ({psa}, {pta})",
                        benchmark.name
                    );
                }
            }
        }
    }
}
