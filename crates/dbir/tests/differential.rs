//! Differential testing of the two bounded-equivalence engines.
//!
//! The prefix-shared DFS engine (`compare_programs`) must be observationally
//! identical to the retained straight-line reference
//! (`compare_programs_naive`): same verdict, same counterexample (including
//! its minimality), same `sequences_tested`, same `bound_exhausted`. This
//! property test throws randomly-built small programs and configurations at
//! both engines and compares the full [`EquivalenceReport`]s.

use dbir::ast::{CmpOp, Function, JoinChain, Operand, Param, Pred, Program, Query, Update};
use dbir::equiv::{compare_programs, compare_programs_naive, SourceOracle, TestConfig};
use dbir::equiv::{compare_with_oracle, EquivalenceReport};
use dbir::schema::{QualifiedAttr, Schema};
use dbir::value::DataType;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::parse(
        "User(uid: int, name: string)\n\
         Tag(label: string, owner: int)",
    )
    .unwrap()
}

/// A compact generator-friendly description of one program variant. Each
/// knob changes observable behaviour, so two descriptions that differ give
/// the engines real disagreements to find (wrong projections, swapped insert
/// targets, dropped deletes, error-raising predicates, ...).
#[derive(Debug, Clone)]
struct ProgramShape {
    /// Insert writes `name` into `User.name` (honest) or stores the `uid`
    /// parameter there instead (type-confused but executable).
    honest_insert: bool,
    /// Include a `removeUser` delete function.
    with_delete: bool,
    /// Include a second table's update (exercises relevance clustering).
    with_tag_update: bool,
    /// Query projection: 0 → name, 1 → uid, 2 → both.
    projection: u8,
    /// Query predicate: 0 → uid = param, 1 → uid < param (ordering),
    /// 2 → name = param-as-int (cross-type equality, always false),
    /// 3 → uid IN (SELECT owner FROM Tag).
    predicate: u8,
}

fn build_program(shape: &ProgramShape) -> Program {
    let mut functions = vec![Function::update(
        "addUser",
        vec![
            Param::new("uid", DataType::Int),
            Param::new("name", DataType::String),
        ],
        Update::Insert {
            join: JoinChain::table("User"),
            values: vec![
                (QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                (
                    QualifiedAttr::new("User", "name"),
                    Operand::param(if shape.honest_insert { "name" } else { "uid" }),
                ),
            ],
        },
    )];
    if shape.with_delete {
        functions.push(Function::update(
            "removeUser",
            vec![Param::new("uid", DataType::Int)],
            Update::Delete {
                tables: vec!["User".into()],
                join: JoinChain::table("User"),
                pred: Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
            },
        ));
    }
    if shape.with_tag_update {
        functions.push(Function::update(
            "addTag",
            vec![
                Param::new("label", DataType::String),
                Param::new("owner", DataType::Int),
            ],
            Update::Insert {
                join: JoinChain::table("Tag"),
                values: vec![
                    (QualifiedAttr::new("Tag", "label"), Operand::param("label")),
                    (QualifiedAttr::new("Tag", "owner"), Operand::param("owner")),
                ],
            },
        ));
    }
    let projected = match shape.projection % 3 {
        0 => vec![QualifiedAttr::new("User", "name")],
        1 => vec![QualifiedAttr::new("User", "uid")],
        _ => vec![
            QualifiedAttr::new("User", "uid"),
            QualifiedAttr::new("User", "name"),
        ],
    };
    let pred = match shape.predicate % 4 {
        0 => Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
        1 => Pred::CmpValue {
            lhs: QualifiedAttr::new("User", "uid"),
            op: CmpOp::Lt,
            rhs: Operand::param("uid"),
        },
        2 => Pred::eq_value(QualifiedAttr::new("User", "name"), Operand::param("uid")),
        _ => Pred::In {
            attr: QualifiedAttr::new("User", "uid"),
            query: Box::new(Query::select(
                vec![QualifiedAttr::new("Tag", "owner")],
                Pred::True,
                JoinChain::table("Tag"),
            )),
        },
    };
    functions.push(Function::query(
        "getUser",
        vec![Param::new("uid", DataType::Int)],
        Query::select(projected, pred, JoinChain::table("User")),
    ));
    Program::new(functions)
}

fn shape_strategy() -> impl Strategy<Value = ProgramShape> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 0u8..3, 0u8..4).prop_map(
        |(honest_insert, with_delete, with_tag_update, projection, predicate)| ProgramShape {
            honest_insert,
            with_delete,
            with_tag_update,
            projection,
            predicate,
        },
    )
}

fn config_strategy() -> impl Strategy<Value = TestConfig> {
    (
        0usize..3,     // max_updates
        1usize..5,     // max_arg_combinations
        any::<bool>(), // cluster_by_tables
        0usize..3,     // cap selector: 0 → none, else a small cap
        1usize..60,    // cap magnitude
    )
        .prop_map(|(max_updates, combos, cluster, cap_kind, cap)| TestConfig {
            max_updates,
            max_arg_combinations: Some(combos),
            cluster_by_tables: cluster,
            max_sequences: if cap_kind == 0 { None } else { Some(cap) },
            ..TestConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The prefix-shared engine and the naive reference produce identical
    /// reports: same verdict, same minimum failing input, same sequence
    /// accounting, same bound-exhaustion flag.
    #[test]
    fn engines_agree_on_random_programs(
        source_shape in shape_strategy(),
        target_shape in shape_strategy(),
        config in config_strategy(),
    ) {
        let schema = schema();
        let source = build_program(&source_shape);
        let target = build_program(&target_shape);
        let fast = compare_programs(&source, &schema, &target, &schema, &config);
        let slow = compare_programs_naive(&source, &schema, &target, &schema, &config);
        prop_assert_eq!(
            &fast, &slow,
            "engines diverged\nsource: {:?}\ntarget: {:?}\nconfig: {:?}",
            source_shape, target_shape, config
        );
        if let Some(cex) = &fast.counterexample {
            prop_assert!(cex.updates.len() <= config.max_updates);
        }
    }

    /// A warm oracle must not change any report: memoized source outcomes
    /// are observationally identical to re-interpreting the source.
    #[test]
    fn warm_oracle_reports_match_cold_runs(
        source_shape in shape_strategy(),
        target_shape in shape_strategy(),
        config in config_strategy(),
    ) {
        let schema = schema();
        let source = build_program(&source_shape);
        let target = build_program(&target_shape);
        let mut oracle = SourceOracle::new(&source, &schema);
        let cold: EquivalenceReport = compare_with_oracle(&mut oracle, &target, &schema, &config);
        let warm = compare_with_oracle(&mut oracle, &target, &schema, &config);
        prop_assert_eq!(&cold, &warm);
        // And against a sibling candidate, the shared cache stays sound.
        let sibling = build_program(&ProgramShape { projection: target_shape.projection.wrapping_add(1), ..target_shape.clone() });
        let with_shared_cache = compare_with_oracle(&mut oracle, &sibling, &schema, &config);
        let from_scratch = compare_programs(&source, &schema, &sibling, &schema, &config);
        prop_assert_eq!(&with_shared_cache, &from_scratch);
    }
}
