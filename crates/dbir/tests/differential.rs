//! Differential testing of the two bounded-equivalence engines.
//!
//! The prefix-shared DFS engine (`compare_programs`) must be observationally
//! identical to the retained straight-line reference
//! (`compare_programs_naive`): same verdict, same counterexample (including
//! its minimality), same `sequences_tested`, same `bound_exhausted`. This
//! property test throws randomly-built small programs and configurations at
//! both engines and compares the full [`EquivalenceReport`]s.

use dbir::ast::{
    CmpOp, Function, FunctionBody, JoinChain, Operand, Param, Pred, Program, Query, Update,
};
use dbir::equiv::{compare_programs, compare_programs_naive, SourceOracle, TestConfig};
use dbir::equiv::{compare_with_oracle, EquivalenceReport};
use dbir::eval::{bind_args, CompiledUpdate, Journal};
use dbir::schema::{QualifiedAttr, Schema};
use dbir::value::{DataType, Value};
use dbir::Instance;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::parse(
        "User(uid: int, name: string)\n\
         Tag(label: string, owner: int)\n\
         Doc(owner: int, data: binary)",
    )
    .unwrap()
}

/// A compact generator-friendly description of one program variant. Each
/// knob changes observable behaviour, so two descriptions that differ give
/// the engines real disagreements to find (wrong projections, swapped insert
/// targets, dropped deletes, error-raising predicates, ...).
#[derive(Debug, Clone)]
struct ProgramShape {
    /// Insert writes `name` into `User.name` (honest) or stores the `uid`
    /// parameter there instead (type-confused but executable).
    honest_insert: bool,
    /// Include a `removeUser` delete function.
    with_delete: bool,
    /// Include a second table's update (exercises relevance clustering).
    with_tag_update: bool,
    /// Include a binary-attachment update and query, so interned blobs and
    /// string constants flow through snapshots, plan scans and the oracle.
    with_docs: bool,
    /// Query projection: 0 → name, 1 → uid, 2 → both.
    projection: u8,
    /// Query predicate: 0 → uid = param, 1 → uid < param (ordering),
    /// 2 → name = param-as-int (cross-type equality, always false),
    /// 3 → uid IN (SELECT owner FROM Tag),
    /// 4 → name = "A" (an interned string constant).
    predicate: u8,
}

fn build_program(shape: &ProgramShape) -> Program {
    let mut functions = vec![Function::update(
        "addUser",
        vec![
            Param::new("uid", DataType::Int),
            Param::new("name", DataType::String),
        ],
        Update::Insert {
            join: JoinChain::table("User"),
            values: vec![
                (QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                (
                    QualifiedAttr::new("User", "name"),
                    Operand::param(if shape.honest_insert { "name" } else { "uid" }),
                ),
            ],
        },
    )];
    if shape.with_delete {
        functions.push(Function::update(
            "removeUser",
            vec![Param::new("uid", DataType::Int)],
            Update::Delete {
                tables: vec!["User".into()],
                join: JoinChain::table("User"),
                pred: Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
            },
        ));
    }
    if shape.with_tag_update {
        functions.push(Function::update(
            "addTag",
            vec![
                Param::new("label", DataType::String),
                Param::new("owner", DataType::Int),
            ],
            Update::Insert {
                join: JoinChain::table("Tag"),
                values: vec![
                    (QualifiedAttr::new("Tag", "label"), Operand::param("label")),
                    (QualifiedAttr::new("Tag", "owner"), Operand::param("owner")),
                ],
            },
        ));
    }
    let projected = match shape.projection % 3 {
        0 => vec![QualifiedAttr::new("User", "name")],
        1 => vec![QualifiedAttr::new("User", "uid")],
        _ => vec![
            QualifiedAttr::new("User", "uid"),
            QualifiedAttr::new("User", "name"),
        ],
    };
    if shape.with_docs {
        functions.push(Function::update(
            "attachDoc",
            vec![
                Param::new("owner", DataType::Int),
                Param::new("data", DataType::Binary),
            ],
            Update::Insert {
                join: JoinChain::table("Doc"),
                values: vec![
                    (QualifiedAttr::new("Doc", "owner"), Operand::param("owner")),
                    (QualifiedAttr::new("Doc", "data"), Operand::param("data")),
                ],
            },
        ));
        functions.push(Function::query(
            "getDoc",
            vec![Param::new("owner", DataType::Int)],
            Query::select(
                vec![QualifiedAttr::new("Doc", "data")],
                Pred::eq_value(QualifiedAttr::new("Doc", "owner"), Operand::param("owner")),
                JoinChain::table("Doc"),
            ),
        ));
    }
    let pred = match shape.predicate % 5 {
        0 => Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
        1 => Pred::CmpValue {
            lhs: QualifiedAttr::new("User", "uid"),
            op: CmpOp::Lt,
            rhs: Operand::param("uid"),
        },
        2 => Pred::eq_value(QualifiedAttr::new("User", "name"), Operand::param("uid")),
        3 => Pred::In {
            attr: QualifiedAttr::new("User", "uid"),
            query: Box::new(Query::select(
                vec![QualifiedAttr::new("Tag", "owner")],
                Pred::True,
                JoinChain::table("Tag"),
            )),
        },
        _ => Pred::eq_value(
            QualifiedAttr::new("User", "name"),
            Operand::Value(Value::str("A")),
        ),
    };
    functions.push(Function::query(
        "getUser",
        vec![Param::new("uid", DataType::Int)],
        Query::select(projected, pred, JoinChain::table("User")),
    ));
    Program::new(functions)
}

fn shape_strategy() -> impl Strategy<Value = ProgramShape> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        0u8..5,
    )
        .prop_map(
            |(honest_insert, with_delete, with_tag_update, with_docs, projection, predicate)| {
                ProgramShape {
                    honest_insert,
                    with_delete,
                    with_tag_update,
                    with_docs,
                    projection,
                    predicate,
                }
            },
        )
}

fn config_strategy() -> impl Strategy<Value = TestConfig> {
    (
        0usize..3,     // max_updates
        1usize..5,     // max_arg_combinations
        any::<bool>(), // cluster_by_tables
        0usize..3,     // cap selector: 0 → none, else a small cap
        1usize..60,    // cap magnitude
    )
        .prop_map(|(max_updates, combos, cluster, cap_kind, cap)| TestConfig {
            max_updates,
            max_arg_combinations: Some(combos),
            cluster_by_tables: cluster,
            max_sequences: if cap_kind == 0 { None } else { Some(cap) },
            ..TestConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The prefix-shared engine and the naive reference produce identical
    /// reports: same verdict, same minimum failing input, same sequence
    /// accounting, same bound-exhaustion flag.
    #[test]
    fn engines_agree_on_random_programs(
        source_shape in shape_strategy(),
        target_shape in shape_strategy(),
        config in config_strategy(),
    ) {
        let schema = schema();
        let source = build_program(&source_shape);
        let target = build_program(&target_shape);
        let fast = compare_programs(&source, &schema, &target, &schema, &config);
        let slow = compare_programs_naive(&source, &schema, &target, &schema, &config);
        prop_assert_eq!(
            &fast, &slow,
            "engines diverged\nsource: {:?}\ntarget: {:?}\nconfig: {:?}",
            source_shape, target_shape, config
        );
        if let Some(cex) = &fast.counterexample {
            prop_assert!(cex.updates.len() <= config.max_updates);
        }
    }

    /// A warm oracle must not change any report: memoized source outcomes
    /// are observationally identical to re-interpreting the source.
    #[test]
    fn warm_oracle_reports_match_cold_runs(
        source_shape in shape_strategy(),
        target_shape in shape_strategy(),
        config in config_strategy(),
    ) {
        let schema = schema();
        let source = build_program(&source_shape);
        let target = build_program(&target_shape);
        let oracle = SourceOracle::new(&source, &schema);
        let cold: EquivalenceReport = compare_with_oracle(&oracle, &target, &schema, &config);
        let warm = compare_with_oracle(&oracle, &target, &schema, &config);
        prop_assert_eq!(&cold, &warm);
        // And against a sibling candidate, the shared cache stays sound.
        let sibling = build_program(&ProgramShape { projection: target_shape.projection.wrapping_add(1), ..target_shape.clone() });
        let with_shared_cache = compare_with_oracle(&oracle, &sibling, &schema, &config);
        let from_scratch = compare_programs(&source, &schema, &sibling, &schema, &config);
        prop_assert_eq!(&with_shared_cache, &from_scratch);
    }

    /// The undo-log journal is interchangeable with clone-and-restore: a
    /// journaled execution reaches the same end state, fresh-uid counter and
    /// error as the plain compiled execution, and rolling the journal back
    /// restores the exact pre-state — including after a failed execution,
    /// whose partial mutations are journaled too. The bounded-testing
    /// engines built on the two strategies agree report-for-report (the
    /// full-size version of that claim is `engines_agree_on_random_programs`).
    #[test]
    fn journal_rollback_matches_clone_and_restore(
        shape in shape_strategy(),
        arg_n in -2i64..6,
        seed_rows in 0usize..5,
    ) {
        fn arg_for(ty: DataType, n: i64) -> Value {
            match ty {
                DataType::String => Value::str(format!("u{n}")),
                DataType::Binary => Value::bytes([n as u8, 0x5a]),
                _ => Value::Int(n),
            }
        }
        let schema = schema();
        let program = build_program(&shape);
        // Seed: a few users so deletes and cross-table predicates have
        // targets, not just the empty instance.
        let mut pre = Instance::empty(&schema);
        let next_uid = 100u64;
        for i in 0..seed_rows {
            pre.insert(
                &"User".into(),
                vec![Value::Int(i as i64), Value::str(format!("u{i}"))],
            );
            pre.insert(&"Tag".into(), vec![Value::str("t"), Value::Int(i as i64)]);
        }

        for function in program.functions.iter().filter(|f| !f.is_query()) {
            let FunctionBody::Update(update) = &function.body else { continue };
            let args: Vec<Value> = function
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| arg_for(p.ty, arg_n + i as i64))
                .collect();
            let env = bind_args(function, &args).unwrap();
            let compiled = CompiledUpdate::compile(&schema, update, &env).unwrap();

            // Clone-and-restore arm: mutate a throwaway copy.
            let mut plain = pre.clone();
            let plain_result = compiled.execute(&mut plain, next_uid);

            // Journal arm: mutate in place, then roll back.
            let mut journaled = pre.clone();
            let mut journal = Journal::new();
            let mark = journal.mark();
            let journaled_result =
                compiled.execute_journaled(&mut journaled, next_uid, &mut journal);

            prop_assert_eq!(
                format!("{plain_result:?}"),
                format!("{journaled_result:?}"),
                "uid counters / errors diverge for {}",
                function.name
            );
            prop_assert_eq!(
                &plain, &journaled,
                "end states diverge for {}", function.name
            );

            journal.rollback_to(mark, &mut journaled);
            prop_assert_eq!(
                &pre, &journaled,
                "rollback did not restore the pre-state for {}", function.name
            );
        }

        // And a (cheap) end-to-end pin: the in-place engine and the naive
        // clone-based reference still agree report-for-report.
        let sibling = build_program(&ProgramShape {
            predicate: shape.predicate.wrapping_add(1),
            ..shape.clone()
        });
        let config = TestConfig {
            max_updates: 1,
            max_arg_combinations: Some(2),
            ..TestConfig::default()
        };
        let fast = compare_programs(&program, &schema, &sibling, &schema, &config);
        let naive = compare_programs_naive(&program, &schema, &sibling, &schema, &config);
        prop_assert_eq!(&fast, &naive);
    }

    /// Interning is a fixpoint: intern → resolve → intern yields the same
    /// symbol, and resolution returns the exact payload. (The engine's
    /// equality and hashing of interned values lean on this canonicity.)
    #[test]
    fn interning_round_trips_arbitrary_strings(s in "[ -~]{0,24}", b in proptest::collection::vec(0u8..255, 0..64)) {
        let sym = dbir::intern::intern_str(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(dbir::intern::intern_str(sym.as_str()), sym);
        let blob = dbir::intern::intern_bytes(&b);
        prop_assert_eq!(blob.as_bytes(), b.as_slice());
        prop_assert_eq!(dbir::intern::intern_bytes(blob.as_bytes()), blob);
        // Value-level equality is payload equality.
        prop_assert_eq!(Value::str(&s), Value::str(s.clone()));
        prop_assert_eq!(Value::bytes(&b), Value::bytes(b.clone()));
    }
}

/// The parallel stub-partitioned walk must be byte-identical to the naive
/// reference — verdict, counterexample, `sequences_tested` — with the thread
/// budget forced above one. The configuration is sized so the estimated
/// subtree (|updates|·combos)^depth · |queries| clears the engine's
/// parallelism threshold, i.e. the fan-out path genuinely runs (on any
/// machine, including single-core CI).
#[test]
fn parallel_walk_matches_naive_reference() {
    parpool::set_thread_limit(4);
    let schema = schema();
    // No relevance clustering: every plan sees every update, which pushes
    // the per-(plan, depth) fan-out past the engine's parallelism threshold.
    let config = TestConfig {
        max_updates: 3,
        int_seeds: vec![0, 1, 2],
        cluster_by_tables: false,
        ..TestConfig::default()
    };
    for (source_shape, target_shape) in [
        // Equivalent pair: the whole bound is enumerated.
        (
            ProgramShape {
                honest_insert: true,
                with_delete: true,
                with_tag_update: true,
                with_docs: true,
                projection: 0,
                predicate: 0,
            },
            ProgramShape {
                honest_insert: true,
                with_delete: true,
                with_tag_update: true,
                with_docs: true,
                projection: 0,
                predicate: 0,
            },
        ),
        // Differing pair: the counterexample and its position must match.
        (
            ProgramShape {
                honest_insert: true,
                with_delete: true,
                with_tag_update: true,
                with_docs: true,
                projection: 0,
                predicate: 0,
            },
            ProgramShape {
                honest_insert: false,
                with_delete: true,
                with_tag_update: true,
                with_docs: true,
                projection: 2,
                predicate: 4,
            },
        ),
    ] {
        let source = build_program(&source_shape);
        let target = build_program(&target_shape);
        let parallel = compare_programs(&source, &schema, &target, &schema, &config);
        let naive = compare_programs_naive(&source, &schema, &target, &schema, &config);
        assert_eq!(parallel, naive, "parallel walk diverged from reference");
        if parallel.equivalent {
            assert!(
                parallel.sequences_tested > 4096,
                "test must be big enough to cross the parallelism threshold, got {}",
                parallel.sequences_tested
            );
        }
    }
    // Restore the default so concurrently scheduled tests in this binary
    // run under the budget they expect. (Results are thread-count-invariant
    // either way; this keeps the *exercised path* deterministic.)
    parpool::set_thread_limit(0);
}

/// Copy-on-write aliasing: mutating one clone never perturbs its siblings,
/// the original, or a cached snapshot — and tables nobody mutated stay
/// physically shared (counted once, not once per clone).
#[test]
fn cow_clones_never_leak_mutations_to_siblings() {
    let schema = schema();
    let mut original = Instance::empty(&schema);
    original.insert(&"User".into(), vec![Value::Int(1), Value::str("ada")]);
    original.insert(&"Tag".into(), vec![Value::str("t"), Value::Int(1)]);

    let snapshot = original.clone(); // e.g. a PrefixCache entry
    let mut branch_a = original.clone();
    let mut branch_b = original.clone();

    // Divergent mutations: an append in one branch, an in-place cell
    // rewrite in the other.
    branch_a.insert(&"User".into(), vec![Value::Int(2), Value::str("bob")]);
    branch_b.rows_mut(&"User".into())[0][1] = Value::str("eve");

    // Each instance sees exactly its own history.
    assert_eq!(original.rows(&"User".into()).len(), 1);
    assert_eq!(original.rows(&"User".into())[0][1], Value::str("ada"));
    assert_eq!(branch_a.rows(&"User".into()).len(), 2);
    assert_eq!(branch_a.rows(&"User".into())[0][1], Value::str("ada"));
    assert_eq!(branch_b.rows(&"User".into()).len(), 1);
    assert_eq!(branch_b.rows(&"User".into())[0][1], Value::str("eve"));
    assert_eq!(original, snapshot);

    // The Tag table was never written: all four instances still share one
    // physical copy, and the accounting reports it as `shared`, not owned.
    let (_, shared_a) = branch_a.heap_bytes_split();
    assert!(shared_a > 0, "untouched Tag rows should still be shared");
    let family_owned: usize = [&original, &snapshot, &branch_a, &branch_b]
        .iter()
        .map(|i| i.heap_bytes_split().0)
        .sum();
    let family_logical: usize = [&original, &snapshot, &branch_a, &branch_b]
        .iter()
        .map(|i| i.approx_heap_bytes())
        .sum();
    assert!(
        family_owned < family_logical,
        "shared rows must not be charged once per clone ({family_owned} vs {family_logical})"
    );
}
