//! Property-based tests for the database engine: evaluation invariants that
//! must hold for arbitrary data.

use dbir::ast::{JoinChain, Operand, Pred, Update};
use dbir::eval::{Env, Evaluator};
use dbir::instance::Instance;
use dbir::schema::{QualifiedAttr, Schema};
use dbir::value::Value;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::parse(
        "Car(cid: int, model: string, year: int)\n\
         Part(name: string, amount: int, cid: int)",
    )
    .unwrap()
}

fn car_strategy() -> impl Strategy<Value = Vec<Value>> {
    (0i64..5, "[a-z]{1,4}", 1990i64..2030)
        .prop_map(|(cid, model, year)| vec![Value::Int(cid), Value::str(model), Value::Int(year)])
}

fn part_strategy() -> impl Strategy<Value = Vec<Value>> {
    ("[a-z]{1,4}", 0i64..50, 0i64..5)
        .prop_map(|(name, amount, cid)| vec![Value::str(name), Value::Int(amount), Value::Int(cid)])
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(car_strategy(), 0..6),
        proptest::collection::vec(part_strategy(), 0..8),
    )
        .prop_map(|(cars, parts)| {
            let schema = schema();
            let mut instance = Instance::empty(&schema);
            for car in cars {
                instance.insert(&"Car".into(), car);
            }
            for part in parts {
                instance.insert(&"Part".into(), part);
            }
            instance
        })
}

fn car_part_join() -> JoinChain {
    JoinChain::table("Car").join(
        JoinChain::table("Part"),
        QualifiedAttr::new("Car", "cid"),
        QualifiedAttr::new("Part", "cid"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The join of two tables never contains more rows than the product of
    /// their sizes, and each row satisfies the join condition.
    #[test]
    fn join_is_a_subset_of_the_cross_product(instance in instance_strategy()) {
        let schema = schema();
        let mut eval = Evaluator::new(&schema);
        let joined = eval.eval_join(&car_part_join(), &instance).unwrap();
        let cars = instance.rows(&"Car".into()).len();
        let parts = instance.rows(&"Part".into()).len();
        prop_assert!(joined.len() <= cars * parts);
        let cid_left = joined.column_index(&QualifiedAttr::new("Car", "cid")).unwrap();
        let cid_right = joined.column_index(&QualifiedAttr::new("Part", "cid")).unwrap();
        for row in &joined.rows {
            prop_assert_eq!(&row[cid_left], &row[cid_right]);
        }
    }

    /// Deleting with the always-true predicate empties every listed table
    /// that participates in a matching join row, and never touches the
    /// unlisted table.
    #[test]
    fn delete_true_removes_only_listed_tables(instance in instance_strategy()) {
        let schema = schema();
        let mut eval = Evaluator::new(&schema);
        let mut mutated = instance.clone();
        let delete = Update::Delete {
            tables: vec!["Car".into()],
            join: JoinChain::table("Car"),
            pred: Pred::True,
        };
        eval.exec_update(&delete, &mut mutated, &Env::new()).unwrap();
        prop_assert!(mutated.rows(&"Car".into()).is_empty());
        prop_assert_eq!(mutated.rows(&"Part".into()).len(), instance.rows(&"Part".into()).len());
    }

    /// Inserting a single-table row increases exactly that table by one row
    /// and leaves the rest of the instance untouched.
    #[test]
    fn insert_adds_exactly_one_row(instance in instance_strategy(), cid in 0i64..5) {
        let schema = schema();
        let mut eval = Evaluator::new(&schema);
        let mut mutated = instance.clone();
        let insert = Update::Insert {
            join: JoinChain::table("Car"),
            values: vec![
                (QualifiedAttr::new("Car", "cid"), Operand::Value(Value::Int(cid))),
                (QualifiedAttr::new("Car", "model"), Operand::Value(Value::str("m"))),
                (QualifiedAttr::new("Car", "year"), Operand::Value(Value::Int(2024))),
            ],
        };
        eval.exec_update(&insert, &mut mutated, &Env::new()).unwrap();
        prop_assert_eq!(mutated.rows(&"Car".into()).len(), instance.rows(&"Car".into()).len() + 1);
        prop_assert_eq!(mutated.rows(&"Part".into()).len(), instance.rows(&"Part".into()).len());
    }

    /// Updating an attribute never changes the number of rows, and every
    /// updated row holds the new value afterwards.
    #[test]
    fn update_preserves_cardinality(instance in instance_strategy(), cid in 0i64..5) {
        let schema = schema();
        let mut eval = Evaluator::new(&schema);
        let mut mutated = instance.clone();
        let update = Update::UpdateAttr {
            join: JoinChain::table("Part"),
            pred: Pred::eq_value(QualifiedAttr::new("Part", "cid"), Value::Int(cid)),
            attr: QualifiedAttr::new("Part", "amount"),
            value: Operand::Value(Value::Int(999)),
        };
        eval.exec_update(&update, &mut mutated, &Env::new()).unwrap();
        prop_assert_eq!(mutated.rows(&"Part".into()).len(), instance.rows(&"Part".into()).len());
        for row in mutated.rows(&"Part".into()) {
            if row[2] == Value::Int(cid) {
                prop_assert_eq!(&row[1], &Value::Int(999));
            }
        }
    }

    /// Deleting and re-running the same delete is idempotent.
    #[test]
    fn delete_is_idempotent(instance in instance_strategy(), cid in 0i64..5) {
        let schema = schema();
        let mut eval = Evaluator::new(&schema);
        let delete = Update::Delete {
            tables: vec!["Car".into(), "Part".into()],
            join: car_part_join(),
            pred: Pred::eq_value(QualifiedAttr::new("Car", "cid"), Value::Int(cid)),
        };
        let mut once = instance.clone();
        eval.exec_update(&delete, &mut once, &Env::new()).unwrap();
        let mut twice = once.clone();
        eval.exec_update(&delete, &mut twice, &Env::new()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// The canonical form of a relation is stable under row reordering, so
    /// query-result comparison is order-insensitive.
    #[test]
    fn canonical_rows_ignore_order(mut rows in proptest::collection::vec(car_strategy(), 0..6)) {
        let relation = dbir::Relation {
            columns: vec![
                QualifiedAttr::new("Car", "cid"),
                QualifiedAttr::new("Car", "model"),
                QualifiedAttr::new("Car", "year"),
            ],
            rows: rows.clone(),
        };
        rows.reverse();
        let reversed = dbir::Relation {
            columns: relation.columns.clone(),
            rows,
        };
        prop_assert!(relation.same_rows(&reversed));
    }
}
