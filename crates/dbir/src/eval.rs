//! An interpreter for database programs implementing the semantics of
//! Section 3.1 of the paper.
//!
//! The evaluator operates on in-memory [`Instance`]s and supports:
//!
//! * join-chain evaluation (nested-loop equi-joins),
//! * selection and projection,
//! * `ins` over a *join chain* — the paper's shorthand that inserts one tuple
//!   into every participating table, linking them with fresh unique
//!   identifiers (`UID0`, `UID1`, ... in Figure 4),
//! * `del([T1..Tn], J, φ)` — multi-table deletion driven by a join, and
//! * `upd(J, φ, a, v)` — attribute update driven by a join.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::collections::HashSet;

use crate::ast::{CmpOp, Function, FunctionBody, JoinChain, Operand, Pred, Query, Update};
use crate::error::{Error, Result};
use crate::instance::{Instance, Relation, Tuple};
use crate::schema::{QualifiedAttr, Schema, TableName};
use crate::value::Value;

/// Parameter bindings for one function invocation.
pub type Env = BTreeMap<String, Value>;

/// Binds positional arguments to a function's parameters.
///
/// # Errors
///
/// Returns [`Error::ArityMismatch`] if the argument count differs from the
/// parameter count, or [`Error::TypeMismatch`] if an argument does not
/// conform to the declared parameter type.
pub fn bind_args(function: &Function, args: &[Value]) -> Result<Env> {
    if args.len() != function.params.len() {
        return Err(Error::ArityMismatch {
            function: function.name.clone(),
            expected: function.params.len(),
            actual: args.len(),
        });
    }
    let mut env = Env::new();
    for (param, arg) in function.params.iter().zip(args) {
        if env.contains_key(&param.name) {
            return Err(Error::DuplicateParameter {
                function: function.name.clone(),
                parameter: param.name.clone(),
            });
        }
        if !arg.conforms_to(param.ty) {
            return Err(Error::TypeMismatch {
                context: format!("argument `{}` of `{}`", param.name, function.name),
                expected: param.ty.to_string(),
                actual: arg
                    .data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".to_string()),
            });
        }
        env.insert(param.name.clone(), *arg);
    }
    Ok(env)
}

/// Evaluates queries and executes updates against database instances.
///
/// The evaluator owns the counter used to mint fresh unique identifiers for
/// the insert-over-join shorthand, so a single evaluator should be used for
/// the whole lifetime of one program execution.
#[derive(Debug)]
pub struct Evaluator<'a> {
    schema: &'a Schema,
    next_uid: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for programs over `schema`.
    pub fn new(schema: &'a Schema) -> Evaluator<'a> {
        Evaluator {
            schema,
            next_uid: 0,
        }
    }

    /// Creates an evaluator whose fresh-identifier counter resumes at
    /// `next_uid`, as if the identifiers `UID0..UID(next_uid-1)` had already
    /// been minted. The bounded-testing engine uses this to resume execution
    /// from a snapshot taken mid-sequence.
    pub fn with_uid_counter(schema: &'a Schema, next_uid: u64) -> Evaluator<'a> {
        Evaluator { schema, next_uid }
    }

    /// The value the next minted unique identifier will carry. Together with
    /// an [`Instance`] this fully captures the execution state between two
    /// calls, so callers can snapshot and resume deterministically.
    pub fn uid_counter(&self) -> u64 {
        self.next_uid
    }

    /// The schema this evaluator resolves table and column layouts against.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    fn fresh_uid(&mut self) -> Value {
        let uid = self.next_uid;
        self.next_uid += 1;
        Value::Uid(uid)
    }

    /// Executes one function call (query or update).
    ///
    /// For update functions the instance is mutated and `None` is returned;
    /// for query functions the result relation is returned.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (unknown tables/attributes, arity or
    /// type mismatches).
    pub fn call(
        &mut self,
        function: &Function,
        args: &[Value],
        instance: &mut Instance,
    ) -> Result<Option<Relation>> {
        let env = bind_args(function, args)?;
        match &function.body {
            FunctionBody::Query(query) => {
                let rel = self.eval_query(query, instance, &env)?;
                Ok(Some(rel))
            }
            FunctionBody::Update(update) => {
                self.exec_update(update, instance, &env)?;
                Ok(None)
            }
        }
    }

    /// Evaluates a query against an instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the query references unknown tables or attributes.
    pub fn eval_query(
        &mut self,
        query: &Query,
        instance: &Instance,
        env: &Env,
    ) -> Result<Relation> {
        match query {
            Query::Join(chain) => self.eval_join(chain, instance),
            Query::Filter { pred, input } => {
                let rel = self.eval_query(input, instance, env)?;
                self.filter_relation(rel, pred, instance, env)
            }
            Query::Project { attrs, input } => {
                let rel = self.eval_query(input, instance, env)?;
                let mut indices = Vec::with_capacity(attrs.len());
                for attr in attrs {
                    let idx = rel
                        .column_index(attr)
                        .ok_or_else(|| Error::UnknownAttribute(attr.to_string()))?;
                    indices.push(idx);
                }
                let rows = rel
                    .rows
                    .iter()
                    .map(|row| indices.iter().map(|&i| row[i]).collect())
                    .collect();
                Ok(Relation {
                    columns: attrs.clone(),
                    rows,
                })
            }
        }
    }

    /// Filters a relation through `pred`.
    ///
    /// The predicate is lowered through the same two-step pipeline the
    /// compiled engine uses ([`prepare_pred_plan`] then
    /// [`instantiate_pred_plan`]), so the AST interpreter and [`RowsPlan`]
    /// execution cannot drift apart: indices are resolved and `IN`
    /// subqueries are evaluated once per filter call, ahead of the row loop.
    /// Note the deliberate semantics: because `IN` subqueries are hoisted,
    /// they are evaluated even when a short-circuiting `And`/`Or` would have
    /// skipped them for every row, so a failing subquery in a dead branch
    /// fails the query (on non-empty inputs) instead of being silently
    /// ignored.
    fn filter_relation(
        &mut self,
        rel: Relation,
        pred: &Pred,
        instance: &Instance,
        env: &Env,
    ) -> Result<Relation> {
        if rel.rows.is_empty() {
            return Ok(rel);
        }
        let plan = prepare_pred_plan(self.schema, pred, &rel.columns, env)?;
        let compiled = instantiate_pred_plan(&plan, instance)?;
        let Relation { columns, rows } = rel;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_compiled(&compiled, &row)? {
                kept.push(row);
            }
        }
        Ok(Relation {
            columns,
            rows: kept,
        })
    }

    /// Evaluates a join chain into a relation whose header is the
    /// concatenation of the participating tables' qualified columns.
    ///
    /// # Errors
    ///
    /// Returns an error if a table or join attribute is unknown.
    pub fn eval_join(&mut self, chain: &JoinChain, instance: &Instance) -> Result<Relation> {
        match chain {
            JoinChain::Table(name) => {
                let table = self
                    .schema
                    .table(name)
                    .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
                Ok(Relation {
                    columns: table.qualified_attrs(),
                    rows: instance.rows(name).to_vec(),
                })
            }
            JoinChain::Join {
                left,
                right,
                left_attr,
                right_attr,
            } => {
                let lrel = self.eval_join(left, instance)?;
                let rrel = self.eval_join(right, instance)?;
                let li = lrel
                    .column_index(left_attr)
                    .ok_or_else(|| Error::UnknownAttribute(left_attr.to_string()))?;
                let ri = rrel
                    .column_index(right_attr)
                    .ok_or_else(|| Error::UnknownAttribute(right_attr.to_string()))?;
                let mut columns = lrel.columns.clone();
                columns.extend(rrel.columns.iter().cloned());
                // Hash join: index the build (right) side on the join key,
                // probe with the left rows. Indices per key preserve right-row
                // order, so the output row order matches the nested loop this
                // replaces. NULL keys never match.
                let mut build: HashMap<&Value, Vec<usize>> = HashMap::new();
                for (i, rrow) in rrel.rows.iter().enumerate() {
                    if !rrow[ri].is_null() {
                        build.entry(&rrow[ri]).or_default().push(i);
                    }
                }
                let mut rows = Vec::new();
                for lrow in &lrel.rows {
                    if lrow[li].is_null() {
                        continue;
                    }
                    if let Some(matches) = build.get(&lrow[li]) {
                        for &i in matches {
                            let rrow = &rrel.rows[i];
                            let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                            row.extend(lrow.iter().cloned());
                            row.extend(rrow.iter().cloned());
                            rows.push(row);
                        }
                    }
                }
                Ok(Relation { columns, rows })
            }
        }
    }

    fn eval_operand(&self, operand: &Operand, env: &Env) -> Result<Value> {
        eval_operand_env(operand, env)
    }

    /// Executes an update statement (or sequence) against an instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the statement references unknown tables or
    /// attributes, or if a delete targets a table outside its join chain.
    pub fn exec_update(
        &mut self,
        update: &Update,
        instance: &mut Instance,
        env: &Env,
    ) -> Result<()> {
        match update {
            Update::Seq(list) => {
                for stmt in list {
                    self.exec_update(stmt, instance, env)?;
                }
                Ok(())
            }
            Update::Insert { join, values } => self.exec_insert(join, values, instance, env),
            Update::Delete { tables, join, pred } => {
                self.exec_delete(tables, join, pred, instance, env)
            }
            Update::UpdateAttr {
                join,
                pred,
                attr,
                value,
            } => self.exec_update_attr(join, pred, attr, value, instance, env),
        }
    }

    fn exec_insert(
        &mut self,
        join: &JoinChain,
        values: &[(QualifiedAttr, Operand)],
        instance: &mut Instance,
        env: &Env,
    ) -> Result<()> {
        let tables = join.tables();
        // Resolve explicit assignments.
        let mut assigned: BTreeMap<QualifiedAttr, Value> = BTreeMap::new();
        for (attr, operand) in values {
            if !join.contains_table(&attr.table) {
                return Err(Error::InvalidStatement(format!(
                    "insert assigns `{attr}` which is not in the target join chain"
                )));
            }
            assigned.insert(attr.clone(), self.eval_operand(operand, env)?);
        }
        // Columns linked by the chain's join conditions must receive the same
        // value: group them with a union-find over qualified attributes.
        let mut groups = UnionFind::new();
        for table_name in &tables {
            let table = self
                .schema
                .table(table_name)
                .ok_or_else(|| Error::UnknownTable(table_name.to_string()))?;
            for attr in table.qualified_attrs() {
                groups.add(attr);
            }
        }
        for_each_join_condition(join, &mut |left, right| {
            groups.union(left, right);
        });
        // Decide one value per group: an explicitly assigned value wins,
        // otherwise the group shares a fresh unique identifier.
        let mut group_values: BTreeMap<QualifiedAttr, Value> = BTreeMap::new();
        for (attr, value) in &assigned {
            let root = groups.find(attr);
            group_values.insert(root, *value);
        }
        for table_name in &tables {
            let table = self.schema.table(table_name).expect("validated above");
            let mut tuple = Tuple::with_capacity(table.columns.len());
            for column in &table.columns {
                let qattr = QualifiedAttr {
                    table: *table_name,
                    attr: column.name.clone(),
                };
                let root = groups.find(&qattr);
                let value = match group_values.get(&root) {
                    Some(v) => *v,
                    None => {
                        let fresh = self.fresh_uid();
                        group_values.insert(root, fresh);
                        fresh
                    }
                };
                tuple.push(value);
            }
            // Declared primary keys give inserts upsert semantics: an
            // existing row with the same key is replaced.
            if let Some(key_index) = table.primary_key_index() {
                let key_value = tuple[key_index];
                if !key_value.is_null() {
                    instance
                        .rows_mut(table_name)
                        .retain(|row| row[key_index] != key_value);
                }
            }
            instance.insert(table_name, tuple);
        }
        Ok(())
    }

    fn exec_delete(
        &mut self,
        tables: &[TableName],
        join: &JoinChain,
        pred: &Pred,
        instance: &mut Instance,
        env: &Env,
    ) -> Result<()> {
        for table in tables {
            if !join.contains_table(table) {
                return Err(Error::InvalidStatement(format!(
                    "delete targets `{table}` which is not in its join chain"
                )));
            }
        }
        let joined = self.eval_join(join, instance)?;
        let filtered = self.filter_relation(joined, pred, instance, env)?;
        for table_name in tables {
            let table = self
                .schema
                .table(table_name)
                .ok_or_else(|| Error::UnknownTable(table_name.to_string()))?;
            let attrs = table.qualified_attrs();
            let doomed: BTreeSet<Tuple> = filtered.project(&attrs).rows.into_iter().collect();
            instance
                .rows_mut(table_name)
                .retain(|row| !doomed.contains(row));
        }
        Ok(())
    }

    fn exec_update_attr(
        &mut self,
        join: &JoinChain,
        pred: &Pred,
        attr: &QualifiedAttr,
        value: &Operand,
        instance: &mut Instance,
        env: &Env,
    ) -> Result<()> {
        if !join.contains_table(&attr.table) {
            return Err(Error::InvalidStatement(format!(
                "update writes `{attr}` which is not in its join chain"
            )));
        }
        let table = self
            .schema
            .table(&attr.table)
            .ok_or_else(|| Error::UnknownTable(attr.table.to_string()))?;
        let column_index = table
            .column_index(&attr.attr)
            .ok_or_else(|| Error::UnknownAttribute(attr.to_string()))?;
        let joined = self.eval_join(join, instance)?;
        let filtered = self.filter_relation(joined, pred, instance, env)?;
        let attrs = table.qualified_attrs();
        let affected: BTreeSet<Tuple> = filtered.project(&attrs).rows.into_iter().collect();
        let new_value = self.eval_operand(value, env)?;
        for row in instance.rows_mut(&attr.table) {
            if affected.contains(row) {
                row[column_index] = new_value;
            }
        }
        Ok(())
    }
}

/// A query body compiled for repeated execution against changing instances.
///
/// The bounded-testing engine evaluates the *same* query calls millions of
/// times against small, ever-changing snapshots. Interpreting the AST each
/// time re-resolves tables, join keys and projection columns, and — worse —
/// rebuilds every intermediate relation header (two `String` clones per
/// column per call). A `RowsPlan` hoists all of that: structural resolution
/// happens once, execution touches rows only and returns bare tuples.
///
/// Semantics match the AST interpreter *error-occurrence-wise*: a plan
/// execution fails exactly when interpreting the query against the same
/// instance would fail. (Bounded testing compares outcomes error-blind, so
/// occurrence is the contract; the differential test in `tests/` holds the
/// two engines to it.) In particular the interpreter's gating is preserved:
/// filter-predicate errors — including `IN`-subquery errors — only fire when
/// the filtered relation is non-empty.
#[derive(Debug)]
pub(crate) enum RowsPlan {
    /// All rows of one table.
    Scan {
        /// The scanned table.
        table: TableName,
    },
    /// Hash equi-join of two sub-plans on pre-resolved key columns.
    Join {
        left: Box<RowsPlan>,
        right: Box<RowsPlan>,
        li: usize,
        ri: usize,
    },
    /// Selection; `pred` is `Err` when predicate compilation failed
    /// structurally — the error fires iff the input is non-empty, exactly
    /// like the interpreter's per-call predicate compilation.
    Filter {
        input: Box<RowsPlan>,
        pred: std::result::Result<FilterPred, Error>,
    },
    /// Projection onto pre-resolved column indices.
    Project {
        input: Box<RowsPlan>,
        indices: Vec<usize>,
    },
}

/// A filter predicate, split by whether it depends on the instance.
#[derive(Debug)]
pub(crate) enum FilterPred {
    /// No `IN` subquery anywhere: fully instantiated at preparation time,
    /// executions reuse it as-is.
    Static(CompiledPred),
    /// Contains `IN` subqueries, whose membership sets depend on the
    /// instance: re-instantiated (subqueries re-executed) per execution.
    Dynamic(PredPlan),
}

/// A predicate compiled structurally, with `IN` subqueries kept as
/// executable sub-plans (their row sets depend on the instance).
#[derive(Debug)]
pub(crate) enum PredPlan {
    Const(bool),
    CmpCols { lhs: usize, op: CmpOp, rhs: usize },
    CmpConst { lhs: usize, op: CmpOp, rhs: Value },
    In { attr: usize, sub: Box<RowsPlan> },
    And(Box<PredPlan>, Box<PredPlan>),
    Or(Box<PredPlan>, Box<PredPlan>),
    Not(Box<PredPlan>),
}

impl PredPlan {
    fn contains_in(&self) -> bool {
        match self {
            PredPlan::Const(_) | PredPlan::CmpCols { .. } | PredPlan::CmpConst { .. } => false,
            PredPlan::In { .. } => true,
            PredPlan::And(a, b) | PredPlan::Or(a, b) => a.contains_in() || b.contains_in(),
            PredPlan::Not(p) => p.contains_in(),
        }
    }
}

/// Compiles `query` (with parameters already bound in `env`) against the
/// schema, returning the plan and the query's output header.
///
/// # Errors
///
/// Returns the structural errors the interpreter would raise on *every*
/// execution: unknown tables, unknown join keys, unknown projection columns.
/// Filter-predicate errors are captured inside the plan instead (see
/// [`RowsPlan::Filter`]).
pub(crate) fn prepare_rows_plan(
    schema: &Schema,
    query: &Query,
    env: &Env,
) -> Result<(RowsPlan, Vec<QualifiedAttr>)> {
    match query {
        Query::Join(chain) => prepare_join_plan(schema, chain),
        Query::Filter { pred, input } => {
            let (input_plan, header) = prepare_rows_plan(schema, input, env)?;
            let pred_plan = prepare_pred_plan(schema, pred, &header, env).map(|plan| {
                if plan.contains_in() {
                    FilterPred::Dynamic(plan)
                } else {
                    // Instance-independent: instantiate once here. The only
                    // fallible instantiation step is `IN` execution, absent
                    // by construction.
                    FilterPred::Static(
                        instantiate_pred_plan(&plan, &Instance::default())
                            .expect("IN-free predicates instantiate infallibly"),
                    )
                }
            });
            Ok((
                RowsPlan::Filter {
                    input: Box::new(input_plan),
                    pred: pred_plan,
                },
                header,
            ))
        }
        Query::Project { attrs, input } => {
            let (input_plan, header) = prepare_rows_plan(schema, input, env)?;
            let mut indices = Vec::with_capacity(attrs.len());
            for attr in attrs {
                let idx = header
                    .iter()
                    .position(|c| c == attr)
                    .ok_or_else(|| Error::UnknownAttribute(attr.to_string()))?;
                indices.push(idx);
            }
            Ok((
                RowsPlan::Project {
                    input: Box::new(input_plan),
                    indices,
                },
                attrs.clone(),
            ))
        }
    }
}

fn prepare_join_plan(schema: &Schema, chain: &JoinChain) -> Result<(RowsPlan, Vec<QualifiedAttr>)> {
    match chain {
        JoinChain::Table(name) => {
            let table = schema
                .table(name)
                .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
            Ok((RowsPlan::Scan { table: *name }, table.qualified_attrs()))
        }
        JoinChain::Join {
            left,
            right,
            left_attr,
            right_attr,
        } => {
            let (lp, lh) = prepare_join_plan(schema, left)?;
            let (rp, rh) = prepare_join_plan(schema, right)?;
            let li = lh
                .iter()
                .position(|c| c == left_attr)
                .ok_or_else(|| Error::UnknownAttribute(left_attr.to_string()))?;
            let ri = rh
                .iter()
                .position(|c| c == right_attr)
                .ok_or_else(|| Error::UnknownAttribute(right_attr.to_string()))?;
            let mut header = lh;
            header.extend(rh);
            Ok((
                RowsPlan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    li,
                    ri,
                },
                header,
            ))
        }
    }
}

fn prepare_pred_plan(
    schema: &Schema,
    pred: &Pred,
    header: &[QualifiedAttr],
    env: &Env,
) -> std::result::Result<PredPlan, Error> {
    let lookup = |attr: &QualifiedAttr| -> Result<usize> {
        header
            .iter()
            .position(|c| c == attr)
            .ok_or_else(|| Error::UnknownAttribute(attr.to_string()))
    };
    Ok(match pred {
        Pred::True => PredPlan::Const(true),
        Pred::False => PredPlan::Const(false),
        Pred::CmpAttr { lhs, op, rhs } => PredPlan::CmpCols {
            lhs: lookup(lhs)?,
            op: *op,
            rhs: lookup(rhs)?,
        },
        Pred::CmpValue { lhs, op, rhs } => PredPlan::CmpConst {
            lhs: lookup(lhs)?,
            op: *op,
            rhs: match rhs {
                Operand::Value(v) => *v,
                Operand::Param(name) => env
                    .get(name)
                    .cloned()
                    .ok_or_else(|| Error::UnknownParameter(name.clone()))?,
            },
        },
        Pred::In { attr, query } => {
            let idx = lookup(attr)?;
            let (sub, sub_header) = prepare_rows_plan(schema, query, env)?;
            if sub_header.len() != 1 {
                return Err(Error::NonSingleColumnSubquery {
                    columns: sub_header.len(),
                });
            }
            PredPlan::In {
                attr: idx,
                sub: Box::new(sub),
            }
        }
        Pred::And(a, b) => PredPlan::And(
            Box::new(prepare_pred_plan(schema, a, header, env)?),
            Box::new(prepare_pred_plan(schema, b, header, env)?),
        ),
        Pred::Or(a, b) => PredPlan::Or(
            Box::new(prepare_pred_plan(schema, a, header, env)?),
            Box::new(prepare_pred_plan(schema, b, header, env)?),
        ),
        Pred::Not(p) => PredPlan::Not(Box::new(prepare_pred_plan(schema, p, header, env)?)),
    })
}

/// Executes a compiled plan against an instance, returning bare rows.
///
/// Scans borrow the instance's rows directly (`Cow::Borrowed`), so a
/// selective `Filter(Scan)` — the dominant query shape in bounded testing —
/// clones only the surviving rows instead of the whole table.
pub(crate) fn exec_rows_plan<'i>(
    plan: &RowsPlan,
    instance: &'i Instance,
) -> Result<Cow<'i, [Tuple]>> {
    match plan {
        RowsPlan::Scan { table } => Ok(Cow::Borrowed(instance.rows(table))),
        RowsPlan::Join {
            left,
            right,
            li,
            ri,
        } => {
            let lrows = exec_rows_plan(left, instance)?;
            let rrows = exec_rows_plan(right, instance)?;
            let mut build: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, rrow) in rrows.iter().enumerate() {
                if !rrow[*ri].is_null() {
                    build.entry(&rrow[*ri]).or_default().push(i);
                }
            }
            let mut rows = Vec::new();
            for lrow in lrows.iter() {
                if lrow[*li].is_null() {
                    continue;
                }
                if let Some(matches) = build.get(&lrow[*li]) {
                    for &i in matches {
                        let rrow = &rrows[i];
                        let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                        row.extend(lrow.iter().cloned());
                        row.extend(rrow.iter().cloned());
                        rows.push(row);
                    }
                }
            }
            Ok(Cow::Owned(rows))
        }
        RowsPlan::Filter { input, pred } => {
            let rows = exec_rows_plan(input, instance)?;
            if rows.is_empty() {
                return Ok(rows);
            }
            let pred = match pred {
                Ok(plan) => plan,
                Err(err) => return Err(err.clone()),
            };
            let instantiated;
            let compiled = match pred {
                FilterPred::Static(compiled) => compiled,
                FilterPred::Dynamic(plan) => {
                    instantiated = instantiate_pred_plan(plan, instance)?;
                    &instantiated
                }
            };
            let mut kept = Vec::new();
            match rows {
                // Owned input: move survivors, no clones.
                Cow::Owned(rows) => {
                    for row in rows {
                        if eval_compiled(compiled, &row)? {
                            kept.push(row);
                        }
                    }
                }
                // Borrowed input (a scan): clone only the survivors.
                Cow::Borrowed(rows) => {
                    for row in rows {
                        if eval_compiled(compiled, row)? {
                            kept.push(row.clone());
                        }
                    }
                }
            }
            Ok(Cow::Owned(kept))
        }
        RowsPlan::Project { input, indices } => {
            let rows = exec_rows_plan(input, instance)?;
            Ok(Cow::Owned(
                rows.iter()
                    .map(|row| indices.iter().map(|&i| row[i]).collect())
                    .collect(),
            ))
        }
    }
}

/// Materializes a structural predicate plan into a row-evaluable
/// [`CompiledPred`], executing `IN` subqueries against the instance once.
fn instantiate_pred_plan(plan: &PredPlan, instance: &Instance) -> Result<CompiledPred> {
    Ok(match plan {
        PredPlan::Const(b) => CompiledPred::Const(*b),
        PredPlan::CmpCols { lhs, op, rhs } => CompiledPred::CmpCols {
            lhs: *lhs,
            op: *op,
            rhs: *rhs,
        },
        PredPlan::CmpConst { lhs, op, rhs } => CompiledPred::CmpConst {
            lhs: *lhs,
            op: *op,
            rhs: *rhs,
        },
        PredPlan::In { attr, sub } => {
            let members: HashSet<Value> = exec_rows_plan(sub, instance)?
                .iter()
                .map(|row| row.last().cloned().expect("single-column subquery"))
                .collect();
            CompiledPred::In {
                attr: *attr,
                members,
            }
        }
        PredPlan::And(a, b) => CompiledPred::And(
            Box::new(instantiate_pred_plan(a, instance)?),
            Box::new(instantiate_pred_plan(b, instance)?),
        ),
        PredPlan::Or(a, b) => CompiledPred::Or(
            Box::new(instantiate_pred_plan(a, instance)?),
            Box::new(instantiate_pred_plan(b, instance)?),
        ),
        PredPlan::Not(p) => CompiledPred::Not(Box::new(instantiate_pred_plan(p, instance)?)),
    })
}

/// A predicate compiled against a fixed relation header: attribute references
/// are column indices, operands are evaluated values and `IN` subqueries are
/// materialized membership sets. Evaluating a compiled predicate touches no
/// environment, instance or header — only the row.
#[derive(Debug, Clone)]
pub(crate) enum CompiledPred {
    Const(bool),
    CmpCols {
        lhs: usize,
        op: CmpOp,
        rhs: usize,
    },
    CmpConst {
        lhs: usize,
        op: CmpOp,
        rhs: Value,
    },
    In {
        attr: usize,
        members: HashSet<Value>,
    },
    And(Box<CompiledPred>, Box<CompiledPred>),
    Or(Box<CompiledPred>, Box<CompiledPred>),
    Not(Box<CompiledPred>),
}

/// A query compiled against a schema and bound arguments, for repeated
/// execution against changing instances.
///
/// This is the public face of the internal `RowsPlan`: the
/// bounded-equivalence engine
/// uses the plan machinery internally, and benchmarks (plus future live
/// backends) can compile once and execute per instance without paying
/// name-resolution or header-building costs per call.
#[derive(Debug)]
pub struct CompiledQuery {
    plan: RowsPlan,
    header: Vec<QualifiedAttr>,
}

impl CompiledQuery {
    /// Compiles `query` (with parameters already bound in `env`) against
    /// `schema`.
    ///
    /// # Errors
    ///
    /// Returns the structural errors interpretation would raise on every
    /// execution (unknown tables, join keys or projection columns).
    pub fn compile(schema: &Schema, query: &Query, env: &Env) -> Result<CompiledQuery> {
        let (plan, header) = prepare_rows_plan(schema, query, env)?;
        Ok(CompiledQuery { plan, header })
    }

    /// The query's output header.
    pub fn header(&self) -> &[QualifiedAttr] {
        &self.header
    }

    /// Executes the compiled query, returning bare rows (in plan order, not
    /// canonicalized).
    ///
    /// # Errors
    ///
    /// Returns instance-dependent evaluation errors (filter-predicate and
    /// `IN`-subquery errors), matching the interpreter occurrence-wise.
    pub fn execute(&self, instance: &Instance) -> Result<Vec<Tuple>> {
        Ok(exec_rows_plan(&self.plan, instance)?.into_owned())
    }
}

/// An update statement compiled for repeated execution — the public wrapper
/// around the engine-internal `UpdatePlan`, mirroring [`CompiledQuery`].
///
/// Besides plain execution it exposes the *journaled* execution mode the
/// bounded-testing engine backtracks with: every row mutation records its
/// inverse in a [`Journal`], and [`Journal::rollback_to`] restores the
/// instance to any earlier mark in place — no snapshot clone, no restore
/// copy.
#[derive(Debug)]
pub struct CompiledUpdate {
    plan: UpdatePlan,
}

impl CompiledUpdate {
    /// Compiles `update` (with parameters already bound in `env`) against
    /// `schema`.
    ///
    /// # Errors
    ///
    /// Returns the structural errors interpretation would raise on every
    /// execution (see `UpdatePlan`).
    pub fn compile(schema: &Schema, update: &Update, env: &Env) -> Result<CompiledUpdate> {
        Ok(CompiledUpdate {
            plan: prepare_update_plan(schema, update, env)?,
        })
    }

    /// Executes the compiled update. `next_uid` is the fresh-identifier
    /// counter going in; the returned value is the counter after execution.
    ///
    /// # Errors
    ///
    /// Returns instance-dependent evaluation errors, matching the
    /// interpreter occurrence-wise. On failure the instance may retain the
    /// partial mutations of earlier statements, exactly as the interpreter
    /// leaves them.
    pub fn execute(&self, instance: &mut Instance, next_uid: u64) -> Result<u64> {
        exec_update_plan(&self.plan, instance, next_uid)
    }

    /// Like [`CompiledUpdate::execute`], but records the inverse of every
    /// row mutation in `journal`, so the caller can restore the instance to
    /// the pre-execution state with [`Journal::rollback_to`] — including
    /// after a failure, whose partial mutations are journaled too.
    pub fn execute_journaled(
        &self,
        instance: &mut Instance,
        next_uid: u64,
        journal: &mut Journal,
    ) -> Result<u64> {
        exec_update_plan_journaled(&self.plan, instance, next_uid, journal)
    }
}

/// Evaluates an operand against parameter bindings.
fn eval_operand_env(operand: &Operand, env: &Env) -> Result<Value> {
    match operand {
        Operand::Value(v) => Ok(*v),
        Operand::Param(name) => env
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownParameter(name.clone())),
    }
}

/// An update statement compiled for repeated execution against changing
/// instances — the update-side counterpart of [`RowsPlan`].
///
/// The bounded-testing engine executes the *same* (update, bound arguments)
/// pairs at every node of its prefix tree. Interpreting the AST each time
/// re-resolves tables, rebuilds the insert-over-join union-find (one
/// `BTreeMap` of cloned qualified attributes per execution) and re-evaluates
/// operands. An `UpdatePlan` hoists all of that to preparation time:
/// execution mints identifiers, builds tuples from pre-evaluated slots and
/// scans rows — no name resolution, no string clones, no per-execution
/// maps beyond the matched-row sets deletes and updates inherently need.
///
/// Semantics match [`Evaluator::exec_update`] **error-occurrence-wise** (the
/// bounded-testing contract, see [`RowsPlan`]): a plan execution fails
/// exactly when interpreting the statement against the same instance would
/// fail, and on success the instance mutation and the number (and order) of
/// minted fresh identifiers are identical. Structural errors — unknown
/// tables or columns, assignments outside the join chain, unbound operand
/// parameters — are raised at preparation time; the interpreter raises them
/// on every execution, so callers replay the prepared error on each use
/// (exactly what the engine's `PreparedUpdate::Failed` does).
/// Filter-predicate errors keep their instance-dependent gating: they fire
/// iff the joined input is non-empty, via the same [`FilterPred`] machinery
/// queries use.
#[derive(Debug)]
pub(crate) enum UpdatePlan {
    /// A sequence, executed in order, failing at the first failing statement.
    Seq(Vec<UpdatePlan>),
    /// An insert-over-join: one pre-resolved tuple template per chain table.
    Insert(InsertPlan),
    /// A join-driven multi-table delete.
    Delete(DeletePlan),
    /// A join-driven attribute update.
    UpdateAttr(UpdateAttrPlan),
}

/// Compiled form of [`Update::Insert`].
#[derive(Debug)]
pub(crate) struct InsertPlan {
    /// One target per chain table, in join-chain order (the interpreter's
    /// insertion — and identifier-minting — order).
    targets: Vec<InsertTarget>,
    /// How many distinct fresh identifiers one execution mints.
    fresh_uids: u64,
}

#[derive(Debug)]
struct InsertTarget {
    table: TableName,
    /// Declared primary key column (upsert semantics), if any.
    key_index: Option<usize>,
    /// One slot per column, in table layout order.
    slots: Vec<InsertSlot>,
}

/// Where one inserted column value comes from.
#[derive(Debug, Clone, Copy)]
enum InsertSlot {
    /// Fixed by the statement and its (already bound) arguments.
    Const(Value),
    /// The `g`-th fresh identifier minted by this statement. Group numbers
    /// follow the interpreter's lazy minting order — first encounter while
    /// walking tables and columns — so `Uid(base + g)` reproduces its
    /// payloads exactly.
    Fresh(u64),
}

/// Compiled form of [`Update::Delete`].
#[derive(Debug)]
pub(crate) struct DeletePlan {
    join: RowsPlan,
    pred: std::result::Result<FilterPred, Error>,
    /// Per deleted table: name plus the join-header indices of its columns,
    /// used to project matched join rows back onto table tuples.
    targets: Vec<(TableName, Vec<usize>)>,
}

/// Compiled form of [`Update::UpdateAttr`].
#[derive(Debug)]
pub(crate) struct UpdateAttrPlan {
    join: RowsPlan,
    pred: std::result::Result<FilterPred, Error>,
    table: TableName,
    /// Join-header indices of the table's columns.
    projection: Vec<usize>,
    /// The written column's index in the table layout.
    column: usize,
    /// The (pre-evaluated) value to write.
    value: Value,
}

/// Compiles `update` (with parameters already bound in `env`) against the
/// schema.
///
/// # Errors
///
/// Returns the structural errors the interpreter would raise on *every*
/// execution (see [`UpdatePlan`]). Filter-predicate errors are captured
/// inside the plan instead.
pub(crate) fn prepare_update_plan(
    schema: &Schema,
    update: &Update,
    env: &Env,
) -> Result<UpdatePlan> {
    match update {
        Update::Seq(list) => Ok(UpdatePlan::Seq(
            list.iter()
                .map(|stmt| prepare_update_plan(schema, stmt, env))
                .collect::<Result<_>>()?,
        )),
        Update::Insert { join, values } => prepare_insert_plan(schema, join, values, env),
        Update::Delete { tables, join, pred } => {
            for table in tables {
                if !join.contains_table(table) {
                    return Err(Error::InvalidStatement(format!(
                        "delete targets `{table}` which is not in its join chain"
                    )));
                }
            }
            let (join_plan, header) = prepare_join_plan(schema, join)?;
            let pred = prepare_filter(schema, pred, &header, env);
            let mut targets = Vec::with_capacity(tables.len());
            for table_name in tables {
                let table = schema
                    .table(table_name)
                    .ok_or_else(|| Error::UnknownTable(table_name.to_string()))?;
                targets.push((
                    *table_name,
                    header_indices(&table.qualified_attrs(), &header),
                ));
            }
            Ok(UpdatePlan::Delete(DeletePlan {
                join: join_plan,
                pred,
                targets,
            }))
        }
        Update::UpdateAttr {
            join,
            pred,
            attr,
            value,
        } => {
            if !join.contains_table(&attr.table) {
                return Err(Error::InvalidStatement(format!(
                    "update writes `{attr}` which is not in its join chain"
                )));
            }
            let table = schema
                .table(&attr.table)
                .ok_or_else(|| Error::UnknownTable(attr.table.to_string()))?;
            let column = table
                .column_index(&attr.attr)
                .ok_or_else(|| Error::UnknownAttribute(attr.to_string()))?;
            let (join_plan, header) = prepare_join_plan(schema, join)?;
            let pred = prepare_filter(schema, pred, &header, env);
            let projection = header_indices(&table.qualified_attrs(), &header);
            let value = eval_operand_env(value, env)?;
            Ok(UpdatePlan::UpdateAttr(UpdateAttrPlan {
                join: join_plan,
                pred,
                table: attr.table,
                projection,
                column,
                value,
            }))
        }
    }
}

/// Compiles a filter predicate with the standard static/dynamic split.
fn prepare_filter(
    schema: &Schema,
    pred: &Pred,
    header: &[QualifiedAttr],
    env: &Env,
) -> std::result::Result<FilterPred, Error> {
    prepare_pred_plan(schema, pred, header, env).map(|plan| {
        if plan.contains_in() {
            FilterPred::Dynamic(plan)
        } else {
            FilterPred::Static(
                instantiate_pred_plan(&plan, &Instance::default())
                    .expect("IN-free predicates instantiate infallibly"),
            )
        }
    })
}

/// The positions of a table's qualified columns in a join header.
///
/// Every requested column is present because the table was validated to be
/// part of the join chain (mirrors [`Relation::project`]'s first-position
/// lookup for duplicated headers).
fn header_indices(attrs: &[QualifiedAttr], header: &[QualifiedAttr]) -> Vec<usize> {
    attrs
        .iter()
        .map(|a| {
            header
                .iter()
                .position(|c| c == a)
                .expect("chain tables project onto the join header")
        })
        .collect()
}

fn prepare_insert_plan(
    schema: &Schema,
    join: &JoinChain,
    values: &[(QualifiedAttr, Operand)],
    env: &Env,
) -> Result<UpdatePlan> {
    // This mirrors `Evaluator::exec_insert` step for step; only the final
    // tuple materialization is deferred to execution time.
    let tables = join.tables();
    let mut assigned: BTreeMap<QualifiedAttr, Value> = BTreeMap::new();
    for (attr, operand) in values {
        if !join.contains_table(&attr.table) {
            return Err(Error::InvalidStatement(format!(
                "insert assigns `{attr}` which is not in the target join chain"
            )));
        }
        assigned.insert(attr.clone(), eval_operand_env(operand, env)?);
    }
    let mut groups = UnionFind::new();
    for table_name in &tables {
        let table = schema
            .table(table_name)
            .ok_or_else(|| Error::UnknownTable(table_name.to_string()))?;
        for attr in table.qualified_attrs() {
            groups.add(attr);
        }
    }
    for_each_join_condition(join, &mut |left, right| {
        groups.union(left, right);
    });
    let mut group_values: BTreeMap<QualifiedAttr, Value> = BTreeMap::new();
    for (attr, value) in &assigned {
        let root = groups.find(attr);
        group_values.insert(root, *value);
    }
    let mut fresh_groups: BTreeMap<QualifiedAttr, u64> = BTreeMap::new();
    let mut fresh_uids = 0u64;
    let mut targets = Vec::with_capacity(tables.len());
    for table_name in &tables {
        let table = schema.table(table_name).expect("validated above");
        let mut slots = Vec::with_capacity(table.columns.len());
        for column in &table.columns {
            let qattr = QualifiedAttr {
                table: *table_name,
                attr: column.name.clone(),
            };
            let root = groups.find(&qattr);
            let slot = match group_values.get(&root) {
                Some(value) => InsertSlot::Const(*value),
                None => InsertSlot::Fresh(*fresh_groups.entry(root).or_insert_with(|| {
                    let group = fresh_uids;
                    fresh_uids += 1;
                    group
                })),
            };
            slots.push(slot);
        }
        targets.push(InsertTarget {
            table: *table_name,
            key_index: table.primary_key_index(),
            slots,
        });
    }
    Ok(UpdatePlan::Insert(InsertPlan {
        targets,
        fresh_uids,
    }))
}

/// Executes a compiled update plan. `next_uid` is the evaluator's
/// fresh-identifier counter going in; the returned value is the counter
/// after execution, exactly as [`Evaluator::exec_update`] would have left
/// it.
pub(crate) fn exec_update_plan(
    plan: &UpdatePlan,
    instance: &mut Instance,
    next_uid: u64,
) -> Result<u64> {
    match plan {
        UpdatePlan::Seq(list) => {
            let mut uid = next_uid;
            for stmt in list {
                uid = exec_update_plan(stmt, instance, uid)?;
            }
            Ok(uid)
        }
        UpdatePlan::Insert(insert) => {
            for target in &insert.targets {
                let mut tuple = Tuple::with_capacity(target.slots.len());
                for slot in &target.slots {
                    tuple.push(match slot {
                        InsertSlot::Const(value) => *value,
                        InsertSlot::Fresh(group) => Value::Uid(next_uid + group),
                    });
                }
                if let Some(key_index) = target.key_index {
                    let key_value = tuple[key_index];
                    if !key_value.is_null() {
                        instance
                            .rows_mut(&target.table)
                            .retain(|row| row[key_index] != key_value);
                    }
                }
                instance.insert(&target.table, tuple);
            }
            Ok(next_uid + insert.fresh_uids)
        }
        UpdatePlan::Delete(delete) => {
            let doomed_sets = {
                let matched = matched_rows(&delete.join, &delete.pred, instance)?;
                delete
                    .targets
                    .iter()
                    .map(|(_, indices)| project_rows(&matched, indices))
                    .collect::<Vec<_>>()
            };
            for ((table, _), doomed) in delete.targets.iter().zip(doomed_sets) {
                if !doomed.is_empty() {
                    instance.rows_mut(table).retain(|row| !doomed.contains(row));
                }
            }
            Ok(next_uid)
        }
        UpdatePlan::UpdateAttr(update) => {
            let affected = {
                let matched = matched_rows(&update.join, &update.pred, instance)?;
                project_rows(&matched, &update.projection)
            };
            if !affected.is_empty() {
                for row in instance.rows_mut(&update.table) {
                    if affected.contains(row) {
                        row[update.column] = update.value;
                    }
                }
            }
            Ok(next_uid)
        }
    }
}

/// One recorded inverse: enough to undo a single mutation step of a
/// journaled update execution.
#[derive(Debug)]
enum UndoOp {
    /// One row was appended to `table`'s tail; undo pops it.
    Pushed { table: TableName },
    /// Rows were removed from `table`, recorded as `(original index, row)`
    /// in increasing index order; undo re-inserts them at those indices in
    /// the same order.
    Removed {
        table: TableName,
        rows: Vec<(usize, Tuple)>,
    },
    /// One column of several rows was overwritten, recorded as
    /// `(row index, old value)`; undo restores the old values.
    Cells {
        table: TableName,
        column: usize,
        cells: Vec<(usize, Value)>,
    },
}

/// An undo log for in-place update execution: every row mutation performed
/// by `exec_update_plan_journaled` appends its exact inverse, and
/// [`Journal::rollback_to`] replays the inverses to restore the instance to
/// any earlier mark — the bounded-testing engine's replacement for
/// clone-based backtracking.
///
/// # Correctness
///
/// Rollback replays inverses in strict LIFO order, so each inverse runs
/// against precisely the table layout its mutation produced; restoring it
/// re-establishes the layout the *previous* inverse expects, by induction
/// back to the mark. The one subtle case is `UndoOp::Removed`: removal
/// records `(index, row)` pairs in increasing original-index order, and
/// re-inserting at those indices *in the same increasing order* is exact —
/// each insertion shifts only positions at or above its index, which are
/// exactly the positions later pairs (with strictly larger indices) are
/// about to fill.
///
/// The journal also meters copy-on-write traffic: mutations go through
/// [`Instance::rows_mut_tracked`], so the bytes physically copied to
/// un-share a table (and the largest single such copy) are accounted where
/// the pre-COW engine charged a full snapshot clone per tree edge.
#[derive(Debug, Default)]
pub struct Journal {
    ops: Vec<UndoOp>,
    recorded: u64,
    cow_bytes: u64,
    cow_peak: usize,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// An opaque position in the log; pass to [`Journal::rollback_to`] to
    /// restore the instance to its state when the mark was taken.
    pub fn mark(&self) -> usize {
        self.ops.len()
    }

    /// Row-level inverse operations recorded so far (rows pushed, rows
    /// removed, cells overwritten), across the journal's whole lifetime.
    pub fn ops_recorded(&self) -> u64 {
        self.recorded
    }

    /// Drains the copy-on-write accounting accumulated since the last call:
    /// `(bytes physically copied, largest single copy)`.
    pub fn take_copy_stats(&mut self) -> (u64, usize) {
        let stats = (self.cow_bytes, self.cow_peak);
        self.cow_bytes = 0;
        self.cow_peak = 0;
        stats
    }

    /// Rolls the instance back to `mark`, undoing every mutation recorded
    /// after it (in reverse order). Returns the number of row-level inverse
    /// operations replayed.
    ///
    /// # Panics
    ///
    /// May panic (or silently corrupt state) if `instance` is not the
    /// instance the journal recorded against, or if it was mutated outside
    /// the journal since the mark.
    pub fn rollback_to(&mut self, mark: usize, instance: &mut Instance) -> u64 {
        let mut undone = 0u64;
        while self.ops.len() > mark {
            match self.ops.pop().expect("ops.len() > mark") {
                UndoOp::Pushed { table } => {
                    instance.rows_mut(&table).pop();
                    undone += 1;
                }
                UndoOp::Removed { table, rows } => {
                    undone += rows.len() as u64;
                    let live = instance.rows_mut(&table);
                    for (index, row) in rows {
                        live.insert(index, row);
                    }
                }
                UndoOp::Cells {
                    table,
                    column,
                    cells,
                } => {
                    undone += cells.len() as u64;
                    let live = instance.rows_mut(&table);
                    for (index, old) in cells {
                        live[index][column] = old;
                    }
                }
            }
        }
        undone
    }

    fn track_copy(&mut self, copied: usize) {
        self.cow_bytes += copied as u64;
        self.cow_peak = self.cow_peak.max(copied);
    }

    /// Order-preserving `retain` that records the removed rows.
    fn retain_rows(
        &mut self,
        instance: &mut Instance,
        table: &TableName,
        mut keep: impl FnMut(&Tuple) -> bool,
    ) {
        let (rows, copied) = instance.rows_mut_tracked(table);
        self.track_copy(copied);
        let mut removed: Vec<(usize, Tuple)> = Vec::new();
        let mut write = 0usize;
        for read in 0..rows.len() {
            if keep(&rows[read]) {
                if write != read {
                    rows.swap(write, read);
                }
                write += 1;
            } else {
                removed.push((read, std::mem::take(&mut rows[read])));
            }
        }
        if removed.is_empty() {
            return;
        }
        rows.truncate(write);
        self.recorded += removed.len() as u64;
        self.ops.push(UndoOp::Removed {
            table: *table,
            rows: removed,
        });
    }

    /// Appends one row, recording the push.
    fn push_row(&mut self, instance: &mut Instance, table: &TableName, row: Tuple) {
        let (rows, copied) = instance.rows_mut_tracked(table);
        self.track_copy(copied);
        rows.push(row);
        self.recorded += 1;
        self.ops.push(UndoOp::Pushed { table: *table });
    }

    /// Overwrites `column` with `value` on every row matching `hit`,
    /// recording the old cell values.
    fn update_cells(
        &mut self,
        instance: &mut Instance,
        table: &TableName,
        mut hit: impl FnMut(&Tuple) -> bool,
        column: usize,
        value: Value,
    ) {
        let (rows, copied) = instance.rows_mut_tracked(table);
        self.track_copy(copied);
        let mut cells: Vec<(usize, Value)> = Vec::new();
        for (index, row) in rows.iter_mut().enumerate() {
            if hit(row) {
                cells.push((index, row[column]));
                row[column] = value;
            }
        }
        if cells.is_empty() {
            return;
        }
        self.recorded += cells.len() as u64;
        self.ops.push(UndoOp::Cells {
            table: *table,
            column,
            cells,
        });
    }
}

/// [`exec_update_plan`] with inverse recording: mutates `instance` exactly
/// like the plain executor (same end state, same returned uid counter, same
/// error occurrences), additionally appending the inverse of every row
/// mutation to `journal`.
///
/// On failure the instance retains the partial mutations of earlier
/// statements — exactly as [`exec_update_plan`] leaves them — but those
/// mutations *are* journaled, so rolling back to the pre-call mark restores
/// the pre-call state precisely.
pub(crate) fn exec_update_plan_journaled(
    plan: &UpdatePlan,
    instance: &mut Instance,
    next_uid: u64,
    journal: &mut Journal,
) -> Result<u64> {
    match plan {
        UpdatePlan::Seq(list) => {
            let mut uid = next_uid;
            for stmt in list {
                uid = exec_update_plan_journaled(stmt, instance, uid, journal)?;
            }
            Ok(uid)
        }
        UpdatePlan::Insert(insert) => {
            for target in &insert.targets {
                let mut tuple = Tuple::with_capacity(target.slots.len());
                for slot in &target.slots {
                    tuple.push(match slot {
                        InsertSlot::Const(value) => *value,
                        InsertSlot::Fresh(group) => Value::Uid(next_uid + group),
                    });
                }
                if let Some(key_index) = target.key_index {
                    let key_value = tuple[key_index];
                    if !key_value.is_null() {
                        journal.retain_rows(instance, &target.table, |row| {
                            row[key_index] != key_value
                        });
                    }
                }
                journal.push_row(instance, &target.table, tuple);
            }
            Ok(next_uid + insert.fresh_uids)
        }
        UpdatePlan::Delete(delete) => {
            let doomed_sets = {
                let matched = matched_rows(&delete.join, &delete.pred, instance)?;
                delete
                    .targets
                    .iter()
                    .map(|(_, indices)| project_rows(&matched, indices))
                    .collect::<Vec<_>>()
            };
            for ((table, _), doomed) in delete.targets.iter().zip(doomed_sets) {
                if !doomed.is_empty() {
                    journal.retain_rows(instance, table, |row| !doomed.contains(row));
                }
            }
            Ok(next_uid)
        }
        UpdatePlan::UpdateAttr(update) => {
            let affected = {
                let matched = matched_rows(&update.join, &update.pred, instance)?;
                project_rows(&matched, &update.projection)
            };
            if !affected.is_empty() {
                journal.update_cells(
                    instance,
                    &update.table,
                    |row| affected.contains(row),
                    update.column,
                    update.value,
                );
            }
            Ok(next_uid)
        }
    }
}

/// Runs a compiled join and filter, returning the matching join rows. The
/// interpreter's gating is preserved: predicate errors (including `IN`
/// subquery errors) fire iff the joined input is non-empty.
fn matched_rows<'i>(
    join: &RowsPlan,
    pred: &std::result::Result<FilterPred, Error>,
    instance: &'i Instance,
) -> Result<Vec<Cow<'i, [Value]>>> {
    let rows = exec_rows_plan(join, instance)?;
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let pred = match pred {
        Ok(pred) => pred,
        Err(err) => return Err(err.clone()),
    };
    let instantiated;
    let compiled = match pred {
        FilterPred::Static(compiled) => compiled,
        FilterPred::Dynamic(plan) => {
            instantiated = instantiate_pred_plan(plan, instance)?;
            &instantiated
        }
    };
    let mut matched = Vec::new();
    match rows {
        Cow::Owned(rows) => {
            for row in rows {
                if eval_compiled(compiled, &row)? {
                    matched.push(Cow::Owned(row));
                }
            }
        }
        Cow::Borrowed(rows) => {
            for row in rows {
                if eval_compiled(compiled, row)? {
                    matched.push(Cow::Borrowed(row.as_slice()));
                }
            }
        }
    }
    Ok(matched)
}

/// Projects matched join rows onto a table's columns, deduplicating into the
/// set the interpreter's `BTreeSet<Tuple>` membership tests use.
fn project_rows(matched: &[Cow<'_, [Value]>], indices: &[usize]) -> BTreeSet<Tuple> {
    matched
        .iter()
        .map(|row| indices.iter().map(|&i| row[i]).collect())
        .collect()
}

fn eval_compiled(pred: &CompiledPred, row: &[Value]) -> Result<bool> {
    match pred {
        CompiledPred::Const(b) => Ok(*b),
        CompiledPred::CmpCols { lhs, op, rhs } => compare(&row[*lhs], *op, &row[*rhs]),
        CompiledPred::CmpConst { lhs, op, rhs } => compare(&row[*lhs], *op, rhs),
        CompiledPred::In { attr, members } => Ok(members.contains(&row[*attr])),
        CompiledPred::And(a, b) => Ok(eval_compiled(a, row)? && eval_compiled(b, row)?),
        CompiledPred::Or(a, b) => Ok(eval_compiled(a, row)? || eval_compiled(b, row)?),
        CompiledPred::Not(p) => Ok(!eval_compiled(p, row)?),
    }
}

/// Compares two values under the given operator.
///
/// Equality and disequality are defined across all value types (distinct
/// variants simply compare unequal, so e.g. `Int(5) = Str("a")` is false).
/// Ordering comparisons are only defined between values of the *same*
/// runtime type — the derived order on [`Value`] would otherwise quietly
/// rank variants by declaration order (`Int(5) < Str("a")`), which no
/// database semantics sanctions — and raise
/// [`Error::MixedTypeOrdering`] otherwise. `NULL` has no type and therefore
/// orders against nothing, not even itself.
fn compare(lhs: &Value, op: CmpOp, rhs: &Value) -> Result<bool> {
    match op {
        CmpOp::Eq => Ok(lhs == rhs),
        CmpOp::Ne => Ok(lhs != rhs),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (lhs.data_type(), rhs.data_type()) {
            (Some(a), Some(b)) if a == b => Ok(match op {
                CmpOp::Lt => lhs < rhs,
                CmpOp::Le => lhs <= rhs,
                CmpOp::Gt => lhs > rhs,
                CmpOp::Ge => lhs >= rhs,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            }),
            (a, b) => Err(Error::MixedTypeOrdering {
                lhs: a.map(|t| t.to_string()).unwrap_or_else(|| "null".into()),
                rhs: b.map(|t| t.to_string()).unwrap_or_else(|| "null".into()),
            }),
        },
    }
}

fn for_each_join_condition(chain: &JoinChain, f: &mut impl FnMut(&QualifiedAttr, &QualifiedAttr)) {
    if let JoinChain::Join {
        left,
        right,
        left_attr,
        right_attr,
    } = chain
    {
        for_each_join_condition(left, f);
        for_each_join_condition(right, f);
        f(left_attr, right_attr);
    }
}

/// A small union-find over qualified attributes, used to propagate shared
/// insert values along join conditions.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<QualifiedAttr, QualifiedAttr>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind::default()
    }

    fn add(&mut self, attr: QualifiedAttr) {
        self.parent.entry(attr.clone()).or_insert(attr);
    }

    fn find(&mut self, attr: &QualifiedAttr) -> QualifiedAttr {
        self.add(attr.clone());
        let parent = self.parent[attr].clone();
        if &parent == attr {
            return parent;
        }
        let root = self.find(&parent);
        self.parent.insert(attr.clone(), root.clone());
        root
    }

    fn union(&mut self, a: &QualifiedAttr, b: &QualifiedAttr) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Param;
    use crate::value::DataType;

    fn car_schema() -> Schema {
        Schema::parse(
            "Car(cid: int, model: string, year: int)\n\
             Part(name: string, amount: int, cid: int)",
        )
        .unwrap()
    }

    fn example_instance(schema: &Schema) -> Instance {
        let mut instance = Instance::empty(schema);
        instance.insert(
            &"Car".into(),
            vec![Value::Int(1), Value::str("M1"), Value::Int(2016)],
        );
        instance.insert(
            &"Car".into(),
            vec![Value::Int(2), Value::str("M2"), Value::Int(2018)],
        );
        instance.insert(
            &"Part".into(),
            vec![Value::str("tire"), Value::Int(10), Value::Int(1)],
        );
        instance.insert(
            &"Part".into(),
            vec![Value::str("brake"), Value::Int(20), Value::Int(1)],
        );
        instance.insert(
            &"Part".into(),
            vec![Value::str("tire"), Value::Int(20), Value::Int(2)],
        );
        instance.insert(
            &"Part".into(),
            vec![Value::str("brake"), Value::Int(30), Value::Int(2)],
        );
        instance
    }

    fn car_part_join() -> JoinChain {
        JoinChain::table("Car").join(
            JoinChain::table("Part"),
            QualifiedAttr::new("Car", "cid"),
            QualifiedAttr::new("Part", "cid"),
        )
    }

    #[test]
    fn join_evaluation_matches_example_31() {
        let schema = car_schema();
        let instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let rel = eval.eval_join(&car_part_join(), &instance).unwrap();
        assert_eq!(rel.columns.len(), 6);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn delete_example_31() {
        // del([Car, Part], Car ⋈ Part, model = M1) removes car 1 and its parts.
        let schema = car_schema();
        let mut instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let del = Update::Delete {
            tables: vec!["Car".into(), "Part".into()],
            join: car_part_join(),
            pred: Pred::eq_value(QualifiedAttr::new("Car", "model"), Value::str("M1")),
        };
        eval.exec_update(&del, &mut instance, &Env::new()).unwrap();
        assert_eq!(instance.rows(&"Car".into()).len(), 1);
        assert_eq!(instance.rows(&"Part".into()).len(), 2);
        assert_eq!(instance.rows(&"Car".into())[0][0], Value::Int(2));
    }

    #[test]
    fn update_example_31() {
        // upd(Car ⋈ Part, model = M2 ∧ name = tire, amount, 30)
        let schema = car_schema();
        let mut instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let upd = Update::UpdateAttr {
            join: car_part_join(),
            pred: Pred::eq_value(QualifiedAttr::new("Car", "model"), Value::str("M2")).and(
                Pred::eq_value(QualifiedAttr::new("Part", "name"), Value::str("tire")),
            ),
            attr: QualifiedAttr::new("Part", "amount"),
            value: Operand::Value(Value::Int(30)),
        };
        eval.exec_update(&upd, &mut instance, &Env::new()).unwrap();
        let parts = instance.rows(&"Part".into());
        let tire2 = parts
            .iter()
            .find(|r| r[0] == Value::str("tire") && r[2] == Value::Int(2))
            .unwrap();
        assert_eq!(tire2[1], Value::Int(30));
        // Other rows untouched.
        let tire1 = parts
            .iter()
            .find(|r| r[0] == Value::str("tire") && r[2] == Value::Int(1))
            .unwrap();
        assert_eq!(tire1[1], Value::Int(10));
    }

    #[test]
    fn single_table_insert_uses_assigned_values() {
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let ins = Update::Insert {
            join: JoinChain::table("Car"),
            values: vec![
                (QualifiedAttr::new("Car", "cid"), Value::Int(7).into()),
                (QualifiedAttr::new("Car", "model"), Value::str("M7").into()),
                (QualifiedAttr::new("Car", "year"), Value::Int(2020).into()),
            ],
        };
        eval.exec_update(&ins, &mut instance, &Env::new()).unwrap();
        assert_eq!(
            instance.rows(&"Car".into()),
            &[vec![Value::Int(7), Value::str("M7"), Value::Int(2020)]]
        );
    }

    #[test]
    fn insert_over_join_links_tables_with_shared_uid() {
        // The motivating example: inserting into Picture ⋈ Instructor must
        // store the same fresh identifier in Instructor.PicId and
        // Picture.PicId.
        let schema = Schema::parse(
            "Instructor(InstId: int, IName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let chain = JoinChain::table("Picture").join(
            JoinChain::table("Instructor"),
            QualifiedAttr::new("Picture", "PicId"),
            QualifiedAttr::new("Instructor", "PicId"),
        );
        let ins = Update::Insert {
            join: chain,
            values: vec![
                (
                    QualifiedAttr::new("Instructor", "InstId"),
                    Value::Int(1).into(),
                ),
                (
                    QualifiedAttr::new("Instructor", "IName"),
                    Value::str("Ada").into(),
                ),
                (
                    QualifiedAttr::new("Picture", "Pic"),
                    Value::bytes(vec![1, 2, 3]).into(),
                ),
            ],
        };
        eval.exec_update(&ins, &mut instance, &Env::new()).unwrap();
        let pics = instance.rows(&"Picture".into());
        let insts = instance.rows(&"Instructor".into());
        assert_eq!(pics.len(), 1);
        assert_eq!(insts.len(), 1);
        // Shared identifier between Picture.PicId and Instructor.PicId.
        assert_eq!(pics[0][0], insts[0][2]);
        assert!(matches!(pics[0][0], Value::Uid(_)));
        assert_eq!(pics[0][1], Value::bytes(vec![1, 2, 3]));
        assert_eq!(insts[0][1], Value::str("Ada"));
    }

    #[test]
    fn primary_key_insert_replaces_existing_row() {
        let schema = Schema::parse("User(pk uid: int, name: string)").unwrap();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let add = |name: &str| Update::Insert {
            join: JoinChain::table("User"),
            values: vec![
                (QualifiedAttr::new("User", "uid"), Value::Int(1).into()),
                (QualifiedAttr::new("User", "name"), Value::str(name).into()),
            ],
        };
        eval.exec_update(&add("ada"), &mut instance, &Env::new())
            .unwrap();
        eval.exec_update(&add("grace"), &mut instance, &Env::new())
            .unwrap();
        assert_eq!(
            instance.rows(&"User".into()),
            &[vec![Value::Int(1), Value::str("grace")]]
        );
        // A different key inserts a second row.
        let other = Update::Insert {
            join: JoinChain::table("User"),
            values: vec![
                (QualifiedAttr::new("User", "uid"), Value::Int(2).into()),
                (QualifiedAttr::new("User", "name"), Value::str("bob").into()),
            ],
        };
        eval.exec_update(&other, &mut instance, &Env::new())
            .unwrap();
        assert_eq!(instance.rows(&"User".into()).len(), 2);
    }

    #[test]
    fn tables_without_keys_keep_multiset_semantics() {
        let schema = Schema::parse("Log(code: int, message: string)").unwrap();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let add = Update::Insert {
            join: JoinChain::table("Log"),
            values: vec![
                (QualifiedAttr::new("Log", "code"), Value::Int(1).into()),
                (QualifiedAttr::new("Log", "message"), Value::str("x").into()),
            ],
        };
        eval.exec_update(&add, &mut instance, &Env::new()).unwrap();
        eval.exec_update(&add, &mut instance, &Env::new()).unwrap();
        assert_eq!(instance.rows(&"Log".into()).len(), 2);
    }

    #[test]
    fn insert_assigning_attr_outside_chain_is_rejected() {
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let ins = Update::Insert {
            join: JoinChain::table("Car"),
            values: vec![(QualifiedAttr::new("Part", "name"), Value::str("x").into())],
        };
        let err = eval.exec_update(&ins, &mut instance, &Env::new());
        assert!(matches!(err, Err(Error::InvalidStatement(_))));
    }

    #[test]
    fn query_with_param_filter() {
        let schema = car_schema();
        let instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let query = Query::select(
            vec![QualifiedAttr::new("Part", "name")],
            Pred::eq_value(QualifiedAttr::new("Part", "cid"), Operand::param("c")),
            JoinChain::table("Part"),
        );
        let mut env = Env::new();
        env.insert("c".to_string(), Value::Int(1));
        let rel = eval.eval_query(&query, &instance, &env).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn in_predicate_membership() {
        let schema = car_schema();
        let instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        // Parts whose cid appears among cars newer than 2017.
        let sub = Query::select(
            vec![QualifiedAttr::new("Car", "cid")],
            Pred::CmpValue {
                lhs: QualifiedAttr::new("Car", "year"),
                op: CmpOp::Gt,
                rhs: Value::Int(2017).into(),
            },
            JoinChain::table("Car"),
        );
        let query = Query::select(
            vec![QualifiedAttr::new("Part", "name")],
            Pred::In {
                attr: QualifiedAttr::new("Part", "cid"),
                query: Box::new(sub),
            },
            JoinChain::table("Part"),
        );
        let rel = eval.eval_query(&query, &instance, &Env::new()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn call_binds_arguments_and_checks_types() {
        let schema = car_schema();
        let mut instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let f = Function::query(
            "getParts",
            vec![Param::new("c", DataType::Int)],
            Query::select(
                vec![QualifiedAttr::new("Part", "name")],
                Pred::eq_value(QualifiedAttr::new("Part", "cid"), Operand::param("c")),
                JoinChain::table("Part"),
            ),
        );
        let result = eval.call(&f, &[Value::Int(2)], &mut instance).unwrap();
        assert_eq!(result.unwrap().len(), 2);

        let err = eval.call(&f, &[Value::str("oops")], &mut instance);
        assert!(matches!(err, Err(Error::TypeMismatch { .. })));
        let err = eval.call(&f, &[], &mut instance);
        assert!(matches!(err, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        instance.insert(
            &"Car".into(),
            vec![Value::Null, Value::str("M"), Value::Int(2000)],
        );
        instance.insert(
            &"Part".into(),
            vec![Value::str("tire"), Value::Int(1), Value::Null],
        );
        let mut eval = Evaluator::new(&schema);
        let rel = eval.eval_join(&car_part_join(), &instance).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn in_subquery_with_multiple_columns_is_rejected() {
        // The old evaluator compared the needle against `row.first()`,
        // silently truncating a multi-column subquery to its first column.
        let schema = car_schema();
        let instance = example_instance(&schema);
        let mut eval = Evaluator::new(&schema);
        let wide_sub = Query::select(
            vec![
                QualifiedAttr::new("Car", "cid"),
                QualifiedAttr::new("Car", "model"),
            ],
            Pred::True,
            JoinChain::table("Car"),
        );
        let query = Query::select(
            vec![QualifiedAttr::new("Part", "name")],
            Pred::In {
                attr: QualifiedAttr::new("Part", "cid"),
                query: Box::new(wide_sub),
            },
            JoinChain::table("Part"),
        );
        let err = eval.eval_query(&query, &instance, &Env::new());
        assert_eq!(err, Err(Error::NonSingleColumnSubquery { columns: 2 }));
    }

    #[test]
    fn mixed_type_ordering_is_an_error() {
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        instance.insert(
            &"Car".into(),
            vec![Value::Int(1), Value::str("M1"), Value::Int(2016)],
        );
        let mut eval = Evaluator::new(&schema);
        // `model < 5` compares a string column against an integer: under the
        // derived Value order this was quietly `false` (Str sorts after Int);
        // it must now be a typed evaluation error.
        let query = Query::select(
            vec![QualifiedAttr::new("Car", "cid")],
            Pred::CmpValue {
                lhs: QualifiedAttr::new("Car", "model"),
                op: CmpOp::Lt,
                rhs: Value::Int(5).into(),
            },
            JoinChain::table("Car"),
        );
        let err = eval.eval_query(&query, &instance, &Env::new());
        assert!(
            matches!(err, Err(Error::MixedTypeOrdering { .. })),
            "{err:?}"
        );
        // Equality across types stays total (and false).
        let eq_query = Query::select(
            vec![QualifiedAttr::new("Car", "cid")],
            Pred::eq_value(QualifiedAttr::new("Car", "model"), Value::Int(5)),
            JoinChain::table("Car"),
        );
        let rel = eval.eval_query(&eq_query, &instance, &Env::new()).unwrap();
        assert!(rel.is_empty());
        // Same-type ordering still works.
        let lt_query = Query::select(
            vec![QualifiedAttr::new("Car", "cid")],
            Pred::CmpValue {
                lhs: QualifiedAttr::new("Car", "year"),
                op: CmpOp::Lt,
                rhs: Value::Int(2020).into(),
            },
            JoinChain::table("Car"),
        );
        let rel = eval.eval_query(&lt_query, &instance, &Env::new()).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn duplicate_parameter_names_are_rejected() {
        let f = Function::query(
            "dup",
            vec![
                Param::new("x", DataType::Int),
                Param::new("x", DataType::Int),
            ],
            Query::select(vec![QualifiedAttr::new("Car", "cid")], Pred::True, {
                JoinChain::table("Car")
            }),
        );
        let err = bind_args(&f, &[Value::Int(1), Value::Int(2)]);
        assert_eq!(
            err,
            Err(Error::DuplicateParameter {
                function: "dup".into(),
                parameter: "x".into(),
            })
        );
    }

    #[test]
    fn hash_join_preserves_nested_loop_row_order() {
        // Duplicate keys on both sides: the output must enumerate left rows
        // in order, each matched with right rows in their original order.
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        for (cid, model) in [(1, "A1"), (2, "B"), (1, "A2")] {
            instance.insert(
                &"Car".into(),
                vec![Value::Int(cid), Value::str(model), Value::Int(2020)],
            );
        }
        for (name, cid) in [("p1", 1), ("p2", 1)] {
            instance.insert(
                &"Part".into(),
                vec![Value::str(name), Value::Int(0), Value::Int(cid)],
            );
        }
        let mut eval = Evaluator::new(&schema);
        let rel = eval.eval_join(&car_part_join(), &instance).unwrap();
        let pairs: Vec<(String, String)> = rel
            .rows
            .iter()
            .map(|r| match (&r[1], &r[3]) {
                (Value::Str(model), Value::Str(part)) => {
                    (model.as_str().to_string(), part.as_str().to_string())
                }
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("A1".into(), "p1".into()),
                ("A1".into(), "p2".into()),
                ("A2".into(), "p1".into()),
                ("A2".into(), "p2".into()),
            ]
        );
    }

    #[test]
    fn delete_on_empty_instance_is_noop() {
        let schema = car_schema();
        let mut instance = Instance::empty(&schema);
        let mut eval = Evaluator::new(&schema);
        let del = Update::Delete {
            tables: vec!["Car".into()],
            join: JoinChain::table("Car"),
            pred: Pred::True,
        };
        eval.exec_update(&del, &mut instance, &Env::new()).unwrap();
        assert!(instance.is_empty());
    }
}
