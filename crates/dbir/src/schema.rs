//! Relational schemas: tables, typed attributes and foreign keys.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::intern::{intern_str, Sym};
use crate::value::DataType;

/// The name of a table.
///
/// A lightweight newtype so table and attribute names cannot be confused
/// with each other or with arbitrary strings. The payload is interned (see
/// [`crate::intern`]), which makes `TableName` a `Copy` type: instance
/// snapshots copy their `BTreeMap<TableName, _>` keys at every node of the
/// bounded-testing search tree, and with an interned name that copy is a
/// `u32` instead of a heap-allocated `String` clone.
///
/// Like [`Value`](crate::value::Value), ordering is implemented manually so
/// names compare by *content*, not by interner symbol number — `Instance`
/// iteration order, canonical row order and `Display` output must not
/// depend on interning insertion order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableName(Sym);

impl TableName {
    /// Creates a table name (interning the payload).
    pub fn new(name: impl AsRef<str>) -> TableName {
        TableName(intern_str(name.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for TableName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Resolve the payload: `TableName(Sym(3))` would be useless in test
        // failures and must never leak into anything user-visible.
        write!(f, "TableName({:?})", self.as_str())
    }
}

impl Ord for TableName {
    fn cmp(&self, other: &TableName) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for TableName {
    fn partial_cmp(&self, other: &TableName) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for TableName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for TableName {
    fn from(s: &str) -> TableName {
        TableName::new(s)
    }
}

impl From<String> for TableName {
    fn from(s: String) -> TableName {
        TableName::new(s)
    }
}

/// The name of a column within a table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(pub String);

impl AttrName {
    /// Creates an attribute name.
    pub fn new(name: impl Into<String>) -> AttrName {
        AttrName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> AttrName {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> AttrName {
        AttrName(s)
    }
}

/// A table-qualified attribute `Table.attr`.
///
/// Value correspondences (crate `migrator`) map qualified attributes of the
/// source schema to qualified attributes of the target schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedAttr {
    /// The table the attribute belongs to.
    pub table: TableName,
    /// The attribute name within that table.
    pub attr: AttrName,
}

impl QualifiedAttr {
    /// Creates a qualified attribute from table and column names.
    pub fn new(table: impl Into<TableName>, attr: impl Into<AttrName>) -> QualifiedAttr {
        QualifiedAttr {
            table: table.into(),
            attr: attr.into(),
        }
    }
}

impl fmt::Display for QualifiedAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.attr)
    }
}

/// A single column declaration inside a [`TableDef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: AttrName,
    /// Column type.
    pub ty: DataType,
}

/// A table definition: an ordered list of typed columns, optionally with a
/// declared primary key.
///
/// When a primary key is declared, inserting a tuple whose key equals an
/// existing row's key *replaces* that row (upsert semantics) — the behaviour
/// of the object-relational mappers the paper's real-world benchmarks are
/// extracted from. Tables without a declared key keep plain multiset insert
/// semantics, as in the paper's formal language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: TableName,
    /// Ordered columns.
    pub columns: Vec<ColumnDef>,
    /// The primary-key column, if declared.
    pub primary_key: Option<AttrName>,
}

impl TableDef {
    /// Creates a table definition from `(column, type)` pairs, without a
    /// primary key.
    pub fn new(
        name: impl Into<TableName>,
        columns: impl IntoIterator<Item = (impl Into<AttrName>, DataType)>,
    ) -> TableDef {
        TableDef {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| ColumnDef {
                    name: name.into(),
                    ty,
                })
                .collect(),
            primary_key: None,
        }
    }

    /// Declares `key` as the table's primary key.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist (table definitions are static
    /// data, so this indicates a bug at the definition site).
    pub fn with_primary_key(mut self, key: impl Into<AttrName>) -> TableDef {
        let key = key.into();
        assert!(
            self.column_index(&key).is_some(),
            "primary key `{key}` is not a column of `{}`",
            self.name
        );
        self.primary_key = Some(key);
        self
    }

    /// The index of the primary-key column, if one is declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.primary_key
            .as_ref()
            .and_then(|key| self.column_index(key))
    }

    /// Returns the index of a column, if present.
    pub fn column_index(&self, attr: &AttrName) -> Option<usize> {
        self.columns.iter().position(|c| &c.name == attr)
    }

    /// Returns the type of a column, if present.
    pub fn column_type(&self, attr: &AttrName) -> Option<DataType> {
        self.columns.iter().find(|c| &c.name == attr).map(|c| c.ty)
    }

    /// Returns all column names as qualified attributes.
    pub fn qualified_attrs(&self) -> Vec<QualifiedAttr> {
        self.columns
            .iter()
            .map(|c| QualifiedAttr {
                table: self.name,
                attr: c.name.clone(),
            })
            .collect()
    }
}

/// A foreign-key declaration: `from.attr` references `to.attr`.
///
/// Foreign keys (together with identically named columns) determine which
/// pairs of tables are considered joinable when the synthesizer builds the
/// target join graph (Section 5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ForeignKey {
    /// Referencing attribute.
    pub from: QualifiedAttr,
    /// Referenced attribute.
    pub to: QualifiedAttr,
}

/// A relational schema: a collection of tables plus foreign keys.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    tables: Vec<TableDef>,
    foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Creates a schema from table definitions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Schema`] if a table or column name is duplicated.
    pub fn from_tables(tables: impl IntoIterator<Item = TableDef>) -> Result<Schema> {
        let mut schema = Schema::new();
        for table in tables {
            schema.add_table(table)?;
        }
        Ok(schema)
    }

    /// Adds a table to the schema.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Schema`] if the table already exists or declares a
    /// duplicate column.
    pub fn add_table(&mut self, table: TableDef) -> Result<()> {
        if self.tables.iter().any(|t| t.name == table.name) {
            return Err(Error::Schema(format!("duplicate table `{}`", table.name)));
        }
        let mut seen = BTreeMap::new();
        for column in &table.columns {
            if seen.insert(column.name.clone(), ()).is_some() {
                return Err(Error::Schema(format!(
                    "duplicate column `{}` in table `{}`",
                    column.name, table.name
                )));
            }
        }
        self.tables.push(table);
        Ok(())
    }

    /// Declares a foreign key.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist in the schema.
    pub fn add_foreign_key(&mut self, from: QualifiedAttr, to: QualifiedAttr) -> Result<()> {
        for endpoint in [&from, &to] {
            if self.attr_type(endpoint).is_none() {
                return Err(Error::UnknownAttribute(endpoint.to_string()));
            }
        }
        self.foreign_keys.push(ForeignKey { from, to });
        Ok(())
    }

    /// Returns all tables in declaration order.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Returns all declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &TableName) -> Option<&TableDef> {
        self.tables.iter().find(|t| &t.name == name)
    }

    /// Returns the type of a qualified attribute, if it exists.
    pub fn attr_type(&self, attr: &QualifiedAttr) -> Option<DataType> {
        self.table(&attr.table)?.column_type(&attr.attr)
    }

    /// Returns `true` if the qualified attribute exists in this schema.
    pub fn has_attr(&self, attr: &QualifiedAttr) -> bool {
        self.attr_type(attr).is_some()
    }

    /// Returns all qualified attributes of all tables.
    pub fn all_attrs(&self) -> Vec<QualifiedAttr> {
        self.tables
            .iter()
            .flat_map(|t| t.qualified_attrs())
            .collect()
    }

    /// Total number of attributes across all tables (the "Attrs" column of
    /// Table 1 in the paper).
    pub fn attr_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Number of tables (the "Tables" column of Table 1 in the paper).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Resolves a possibly-unqualified attribute name against a set of
    /// candidate tables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAttribute`] if the name does not occur in any
    /// candidate table, or if it is ambiguous (occurs in several tables and
    /// was not qualified).
    pub fn resolve_attr(
        &self,
        name: &str,
        candidate_tables: &[TableName],
    ) -> Result<QualifiedAttr> {
        if let Some((table, attr)) = name.split_once('.') {
            let qattr = QualifiedAttr::new(table, attr);
            if self.has_attr(&qattr) {
                return Ok(qattr);
            }
            return Err(Error::UnknownAttribute(name.to_string()));
        }
        let attr = AttrName::new(name);
        let mut matches = Vec::new();
        for table_name in candidate_tables {
            if let Some(table) = self.table(table_name) {
                if table.column_index(&attr).is_some() {
                    matches.push(QualifiedAttr {
                        table: *table_name,
                        attr: attr.clone(),
                    });
                }
            }
        }
        match matches.len() {
            1 => Ok(matches.pop().expect("length checked")),
            0 => Err(Error::UnknownAttribute(name.to_string())),
            _ => Err(Error::UnknownAttribute(format!(
                "ambiguous attribute `{name}`"
            ))),
        }
    }

    /// Returns the attributes on which two tables can be equi-joined.
    ///
    /// Two tables are joinable if they share an identically named column of
    /// compatible type (natural join) or a foreign key links them.
    pub fn join_attrs(
        &self,
        left: &TableName,
        right: &TableName,
    ) -> Vec<(QualifiedAttr, QualifiedAttr)> {
        let mut result = Vec::new();
        let (Some(lt), Some(rt)) = (self.table(left), self.table(right)) else {
            return result;
        };
        for lc in &lt.columns {
            for rc in &rt.columns {
                if lc.name == rc.name && lc.ty.compatible_with(rc.ty) {
                    result.push((
                        QualifiedAttr {
                            table: *left,
                            attr: lc.name.clone(),
                        },
                        QualifiedAttr {
                            table: *right,
                            attr: rc.name.clone(),
                        },
                    ));
                }
            }
        }
        for fk in &self.foreign_keys {
            let fwd = &fk.from.table == left && &fk.to.table == right;
            let bwd = &fk.from.table == right && &fk.to.table == left;
            if fwd {
                let pair = (fk.from.clone(), fk.to.clone());
                if !result.contains(&pair) {
                    result.push(pair);
                }
            } else if bwd {
                let pair = (fk.to.clone(), fk.from.clone());
                if !result.contains(&pair) {
                    result.push(pair);
                }
            }
        }
        result
    }

    /// Returns `true` if two distinct tables can be equi-joined.
    pub fn joinable(&self, left: &TableName, right: &TableName) -> bool {
        left != right && !self.join_attrs(left, right).is_empty()
    }

    /// Parses a schema from a compact textual form:
    ///
    /// ```text
    /// Instructor(InstId: int, IName: string, IPic: binary)
    /// TA(TaId: int, TName: string, TPic: binary)
    /// fk Instructor.InstId -> Class.InstId
    /// ```
    ///
    /// Each line declares either a table or (prefixed with `fk`) a foreign
    /// key. Blank lines and `--` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a parse or schema error describing the offending line.
    pub fn parse(text: &str) -> Result<Schema> {
        let mut schema = Schema::new();
        let mut fk_lines = Vec::new();
        for (line_no, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with("--") {
                continue;
            }
            if let Some(rest) = line.strip_prefix("fk ") {
                fk_lines.push((line_no + 1, rest.trim().to_string()));
                continue;
            }
            let table = parse_table_decl(line, line_no + 1)?;
            schema.add_table(table)?;
        }
        for (line_no, decl) in fk_lines {
            let (from, to) = decl.split_once("->").ok_or_else(|| Error::Parse {
                line: line_no,
                column: 1,
                message: "expected `From.attr -> To.attr` in foreign key".to_string(),
            })?;
            let parse_endpoint = |s: &str| -> Result<QualifiedAttr> {
                let (t, a) = s.trim().split_once('.').ok_or_else(|| Error::Parse {
                    line: line_no,
                    column: 1,
                    message: format!("expected qualified attribute, found `{}`", s.trim()),
                })?;
                Ok(QualifiedAttr::new(t.trim(), a.trim()))
            };
            schema.add_foreign_key(parse_endpoint(from)?, parse_endpoint(to)?)?;
        }
        Ok(schema)
    }
}

fn parse_table_decl(line: &str, line_no: usize) -> Result<TableDef> {
    let open = line.find('(').ok_or_else(|| Error::Parse {
        line: line_no,
        column: 1,
        message: "expected `(` in table declaration".to_string(),
    })?;
    if !line.ends_with(')') {
        return Err(Error::Parse {
            line: line_no,
            column: line.len(),
            message: "expected `)` at end of table declaration".to_string(),
        });
    }
    let name = line[..open].trim();
    if name.is_empty() {
        return Err(Error::Parse {
            line: line_no,
            column: 1,
            message: "missing table name".to_string(),
        });
    }
    let body = &line[open + 1..line.len() - 1];
    let mut columns = Vec::new();
    let mut primary_key: Option<String> = None;
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (col, ty) = part.split_once(':').ok_or_else(|| Error::Parse {
            line: line_no,
            column: 1,
            message: format!("expected `name: type` in column declaration, found `{part}`"),
        })?;
        let ty = DataType::from_keyword(ty.trim()).ok_or_else(|| Error::Parse {
            line: line_no,
            column: 1,
            message: format!("unknown type `{}`", ty.trim()),
        })?;
        let mut col = col.trim();
        // A `pk ` prefix marks the primary-key column.
        if let Some(rest) = col.strip_prefix("pk ") {
            let rest = rest.trim();
            if primary_key.is_some() {
                return Err(Error::Parse {
                    line: line_no,
                    column: 1,
                    message: format!("table `{name}` declares more than one primary key"),
                });
            }
            primary_key = Some(rest.to_string());
            col = rest;
        }
        columns.push((col.to_string(), ty));
    }
    let table = TableDef::new(name, columns);
    Ok(match primary_key {
        Some(key) => table.with_primary_key(key),
        None => table,
    })
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for table in &self.tables {
            write!(f, "{}(", table.name)?;
            for (i, col) in table.columns.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                if table.primary_key.as_ref() == Some(&col.name) {
                    f.write_str("pk ")?;
                }
                write!(f, "{}: {}", col.name, col.ty)?;
            }
            writeln!(f, ")")?;
        }
        for fk in &self.foreign_keys {
            writeln!(f, "fk {} -> {}", fk.from, fk.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course_schema() -> Schema {
        Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap()
    }

    #[test]
    fn parse_course_schema() {
        let schema = course_schema();
        assert_eq!(schema.table_count(), 3);
        assert_eq!(schema.attr_count(), 9);
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("Instructor", "IPic")),
            Some(DataType::Binary)
        );
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("Instructor", "Missing")),
            None
        );
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let mut schema = course_schema();
        let result = schema.add_table(TableDef::new("Class", [("X", DataType::Int)]));
        assert!(matches!(result, Err(Error::Schema(_))));
    }

    #[test]
    fn duplicate_column_is_rejected() {
        let mut schema = Schema::new();
        let result = schema.add_table(TableDef::new(
            "T",
            [("a", DataType::Int), ("a", DataType::Int)],
        ));
        assert!(matches!(result, Err(Error::Schema(_))));
    }

    #[test]
    fn natural_join_attrs() {
        let schema = course_schema();
        let attrs = schema.join_attrs(&"Class".into(), &"Instructor".into());
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].0, QualifiedAttr::new("Class", "InstId"));
        assert_eq!(attrs[0].1, QualifiedAttr::new("Instructor", "InstId"));
        assert!(schema.joinable(&"Class".into(), &"TA".into()));
        assert!(!schema.joinable(&"Instructor".into(), &"TA".into()));
    }

    #[test]
    fn foreign_key_makes_tables_joinable() {
        let mut schema = Schema::parse(
            "Picture(PicId: id, Pic: binary)\n\
             Instructor(InstId: int, IName: string, PicRef: id)",
        )
        .unwrap();
        assert!(!schema.joinable(&"Picture".into(), &"Instructor".into()));
        schema
            .add_foreign_key(
                QualifiedAttr::new("Instructor", "PicRef"),
                QualifiedAttr::new("Picture", "PicId"),
            )
            .unwrap();
        assert!(schema.joinable(&"Picture".into(), &"Instructor".into()));
        let attrs = schema.join_attrs(&"Instructor".into(), &"Picture".into());
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn foreign_key_unknown_endpoint_is_rejected() {
        let mut schema = course_schema();
        let err = schema.add_foreign_key(
            QualifiedAttr::new("Class", "Nope"),
            QualifiedAttr::new("Instructor", "InstId"),
        );
        assert!(matches!(err, Err(Error::UnknownAttribute(_))));
    }

    #[test]
    fn resolve_unqualified_attr() {
        let schema = course_schema();
        let tables = vec![TableName::new("Instructor"), TableName::new("TA")];
        let resolved = schema.resolve_attr("IName", &tables).unwrap();
        assert_eq!(resolved, QualifiedAttr::new("Instructor", "IName"));
    }

    #[test]
    fn resolve_ambiguous_attr_fails() {
        let schema = course_schema();
        let tables = vec![TableName::new("Class"), TableName::new("Instructor")];
        let err = schema.resolve_attr("InstId", &tables);
        assert!(err.is_err());
    }

    #[test]
    fn resolve_qualified_attr() {
        let schema = course_schema();
        let resolved = schema.resolve_attr("Class.InstId", &[]).unwrap();
        assert_eq!(resolved, QualifiedAttr::new("Class", "InstId"));
    }

    #[test]
    fn parse_with_fk_and_comments() {
        let schema = Schema::parse(
            "-- a comment\n\
             A(x: int, y: string)\n\
             \n\
             B(x: int, z: string)\n\
             fk B.x -> A.x",
        )
        .unwrap();
        assert_eq!(schema.foreign_keys().len(), 1);
        assert!(schema.joinable(&"A".into(), &"B".into()));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let schema = course_schema();
        let reparsed = Schema::parse(&schema.to_string()).unwrap();
        assert_eq!(schema, reparsed);
    }

    #[test]
    fn primary_key_parse_and_display_roundtrip() {
        let schema = Schema::parse("User(pk uid: int, name: string)").unwrap();
        let table = schema.table(&"User".into()).unwrap();
        assert_eq!(table.primary_key, Some(AttrName::new("uid")));
        assert_eq!(table.primary_key_index(), Some(0));
        let reparsed = Schema::parse(&schema.to_string()).unwrap();
        assert_eq!(schema, reparsed);
    }

    #[test]
    fn duplicate_primary_keys_are_rejected() {
        let err = Schema::parse("User(pk uid: int, pk name: string)");
        assert!(matches!(err, Err(Error::Parse { .. })));
    }

    #[test]
    #[should_panic(expected = "is not a column")]
    fn with_primary_key_requires_existing_column() {
        let _ = TableDef::new("T", [("a", DataType::Int)]).with_primary_key("missing");
    }

    #[test]
    fn table_names_are_copy_and_order_by_content() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TableName>();
        // Intern in an order that differs from lexicographic order, so a
        // symbol-number comparison would give the wrong answer.
        let z = TableName::new("zz-tablename-probe");
        let a = TableName::new("aa-tablename-probe");
        assert!(a < z);
        assert_eq!(a, TableName::new("aa-tablename-probe"));
        assert_eq!(format!("{a:?}"), "TableName(\"aa-tablename-probe\")");
    }

    #[test]
    fn parse_errors_report_line() {
        let err = Schema::parse("A(x: int)\nBroken").unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
