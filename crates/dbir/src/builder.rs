//! Ergonomic builders for constructing programs directly in Rust.
//!
//! The benchmark suite generates many CRUD-style functions (add/delete/get/
//! set per entity); these helpers remove the boilerplate of spelling out
//! parameters and qualified attributes by hand.

use crate::ast::{Function, JoinChain, Operand, Param, Pred, Program, Query, Update};
use crate::error::{Error, Result};
use crate::schema::{AttrName, QualifiedAttr, Schema, TableName};

/// A builder for [`Program`]s over a fixed schema.
#[derive(Debug)]
pub struct ProgramBuilder<'a> {
    schema: &'a Schema,
    functions: Vec<Function>,
}

impl<'a> ProgramBuilder<'a> {
    /// Creates a builder for programs over `schema`.
    pub fn new(schema: &'a Schema) -> ProgramBuilder<'a> {
        ProgramBuilder {
            schema,
            functions: Vec::new(),
        }
    }

    /// Adds an arbitrary pre-built function.
    pub fn push(&mut self, function: Function) -> &mut Self {
        self.functions.push(function);
        self
    }

    fn table(&self, table: &str) -> Result<&crate::schema::TableDef> {
        self.schema
            .table(&TableName::new(table))
            .ok_or_else(|| Error::UnknownTable(table.to_string()))
    }

    fn qattr(&self, table: &str, attr: &str) -> Result<QualifiedAttr> {
        let qattr = QualifiedAttr::new(table, attr);
        if self.schema.has_attr(&qattr) {
            Ok(qattr)
        } else {
            Err(Error::UnknownAttribute(qattr.to_string()))
        }
    }

    /// Adds an update function `name(c1, ..., cn)` inserting one row into
    /// `table` with one parameter per column.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn insert_all(&mut self, name: &str, table: &str) -> Result<&mut Self> {
        let def = self.table(table)?;
        let params: Vec<Param> = def
            .columns
            .iter()
            .map(|c| Param::new(c.name.as_str(), c.ty))
            .collect();
        let values: Vec<(QualifiedAttr, Operand)> = def
            .columns
            .iter()
            .map(|c| {
                (
                    QualifiedAttr {
                        table: def.name,
                        attr: c.name.clone(),
                    },
                    Operand::param(c.name.as_str()),
                )
            })
            .collect();
        let update = Update::Insert {
            join: JoinChain::Table(def.name),
            values,
        };
        self.functions.push(Function::update(name, params, update));
        Ok(self)
    }

    /// Adds an update function `name(key)` deleting the rows of `table`
    /// whose `key_attr` equals the parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if the table or key attribute does not exist.
    pub fn delete_by(&mut self, name: &str, table: &str, key_attr: &str) -> Result<&mut Self> {
        let def = self.table(table)?;
        let key = self.qattr(table, key_attr)?;
        let key_ty = def
            .column_type(&AttrName::new(key_attr))
            .ok_or_else(|| Error::UnknownAttribute(key.to_string()))?;
        let update = Update::Delete {
            tables: vec![def.name],
            join: JoinChain::Table(def.name),
            pred: Pred::eq_value(key, Operand::param(key_attr)),
        };
        self.functions.push(Function::update(
            name,
            vec![Param::new(key_attr, key_ty)],
            update,
        ));
        Ok(self)
    }

    /// Adds an update function `name(key, value)` setting `set_attr` on the
    /// rows of `table` whose `key_attr` equals the first parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if the table or either attribute does not exist.
    pub fn update_by(
        &mut self,
        name: &str,
        table: &str,
        key_attr: &str,
        set_attr: &str,
    ) -> Result<&mut Self> {
        let def = self.table(table)?;
        let key = self.qattr(table, key_attr)?;
        let target = self.qattr(table, set_attr)?;
        let key_ty = def
            .column_type(&AttrName::new(key_attr))
            .ok_or_else(|| Error::UnknownAttribute(key.to_string()))?;
        let set_ty = def
            .column_type(&AttrName::new(set_attr))
            .ok_or_else(|| Error::UnknownAttribute(target.to_string()))?;
        let value_param = format!("new_{set_attr}");
        let update = Update::UpdateAttr {
            join: JoinChain::Table(def.name),
            pred: Pred::eq_value(key, Operand::param(key_attr)),
            attr: target,
            value: Operand::param(value_param.clone()),
        };
        self.functions.push(Function::update(
            name,
            vec![
                Param::new(key_attr, key_ty),
                Param::new(value_param, set_ty),
            ],
            update,
        ));
        Ok(self)
    }

    /// Adds a query function `name(key)` projecting `projected` from the
    /// rows of `table` whose `key_attr` equals the parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if the table or any attribute does not exist.
    pub fn select_by(
        &mut self,
        name: &str,
        table: &str,
        key_attr: &str,
        projected: &[&str],
    ) -> Result<&mut Self> {
        let def = self.table(table)?;
        let key = self.qattr(table, key_attr)?;
        let key_ty = def
            .column_type(&AttrName::new(key_attr))
            .ok_or_else(|| Error::UnknownAttribute(key.to_string()))?;
        let attrs: Result<Vec<QualifiedAttr>> = projected
            .iter()
            .map(|attr| self.qattr(table, attr))
            .collect();
        let query = Query::select(
            attrs?,
            Pred::eq_value(key, Operand::param(key_attr)),
            JoinChain::Table(def.name),
        );
        self.functions.push(Function::query(
            name,
            vec![Param::new(key_attr, key_ty)],
            query,
        ));
        Ok(self)
    }

    /// Adds a query function `name(key)` that projects `projected` from a
    /// join of `tables` (natural joins resolved through the schema in the
    /// given order), filtering on `key_attr = key`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tables are not pairwise joinable in the given
    /// order or an attribute does not exist.
    pub fn select_join_by(
        &mut self,
        name: &str,
        tables: &[&str],
        key_attr: (&str, &str),
        projected: &[(&str, &str)],
    ) -> Result<&mut Self> {
        let chain = self.natural_chain(tables)?;
        let key = self.qattr(key_attr.0, key_attr.1)?;
        let key_ty = self
            .schema
            .attr_type(&key)
            .ok_or_else(|| Error::UnknownAttribute(key.to_string()))?;
        let attrs: Result<Vec<QualifiedAttr>> =
            projected.iter().map(|(t, a)| self.qattr(t, a)).collect();
        let query = Query::select(
            attrs?,
            Pred::eq_value(key, Operand::param(key_attr.1)),
            chain,
        );
        self.functions.push(Function::query(
            name,
            vec![Param::new(key_attr.1, key_ty)],
            query,
        ));
        Ok(self)
    }

    /// Builds a natural join chain over the given tables in order.
    ///
    /// # Errors
    ///
    /// Returns an error if consecutive tables cannot be joined.
    pub fn natural_chain(&self, tables: &[&str]) -> Result<JoinChain> {
        let mut iter = tables.iter();
        let first = iter
            .next()
            .ok_or_else(|| Error::InvalidStatement("empty join chain".to_string()))?;
        self.table(first)?;
        let mut chain = JoinChain::table(*first);
        for table in iter {
            self.table(table)?;
            let right = TableName::new(*table);
            let mut found = None;
            for left in chain.tables() {
                if let Some(pair) = self.schema.join_attrs(&left, &right).into_iter().next() {
                    found = Some(pair);
                    break;
                }
            }
            let (left_attr, right_attr) = found.ok_or_else(|| {
                Error::InvalidStatement(format!("cannot naturally join `{table}` into the chain"))
            })?;
            chain = chain.join(JoinChain::table(*table), left_attr, right_attr);
        }
        Ok(chain)
    }

    /// Finishes the builder, validating the program against the schema.
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation found.
    pub fn build(self) -> Result<Program> {
        let program = Program::new(self.functions);
        program.validate(self.schema)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::TestConfig;
    use crate::invocation::{run, Call, InvocationSequence};
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::parse(
            "User(uid: int, name: string, email: string)\n\
             Post(pid: int, uid: int, title: string)",
        )
        .unwrap()
    }

    #[test]
    fn crud_builder_produces_runnable_program() {
        let schema = schema();
        let mut builder = ProgramBuilder::new(&schema);
        builder.insert_all("addUser", "User").unwrap();
        builder.delete_by("deleteUser", "User", "uid").unwrap();
        builder
            .update_by("renameUser", "User", "uid", "name")
            .unwrap();
        builder
            .select_by("getUser", "User", "uid", &["name", "email"])
            .unwrap();
        let program = builder.build().unwrap();
        assert_eq!(program.functions.len(), 4);

        let seq = InvocationSequence::new(
            vec![
                Call::new(
                    "addUser",
                    vec![Value::Int(1), Value::str("ada"), Value::str("a@x")],
                ),
                Call::new("renameUser", vec![Value::Int(1), Value::str("grace")]),
            ],
            Call::new("getUser", vec![Value::Int(1)]),
        );
        let result = run(&program, &schema, &seq).unwrap();
        assert_eq!(
            result.rows,
            vec![vec![Value::str("grace"), Value::str("a@x")]]
        );
    }

    #[test]
    fn select_join_by_builds_two_table_query() {
        let schema = schema();
        let mut builder = ProgramBuilder::new(&schema);
        builder.insert_all("addUser", "User").unwrap();
        builder.insert_all("addPost", "Post").unwrap();
        builder
            .select_join_by(
                "postsOf",
                &["User", "Post"],
                ("User", "uid"),
                &[("Post", "title")],
            )
            .unwrap();
        let program = builder.build().unwrap();

        let seq = InvocationSequence::new(
            vec![
                Call::new(
                    "addUser",
                    vec![Value::Int(1), Value::str("ada"), Value::str("a@x")],
                ),
                Call::new(
                    "addPost",
                    vec![Value::Int(10), Value::Int(1), Value::str("hello")],
                ),
            ],
            Call::new("postsOf", vec![Value::Int(1)]),
        );
        let result = run(&program, &schema, &seq).unwrap();
        assert_eq!(result.rows, vec![vec![Value::str("hello")]]);
    }

    #[test]
    fn unknown_table_errors() {
        let schema = schema();
        let mut builder = ProgramBuilder::new(&schema);
        assert!(builder.insert_all("f", "Ghost").is_err());
        assert!(builder.delete_by("f", "User", "ghost").is_err());
        assert!(builder.select_by("f", "User", "uid", &["ghost"]).is_err());
    }

    #[test]
    fn natural_chain_requires_joinable_tables() {
        let schema = Schema::parse("A(x: int)\nB(y: int)").unwrap();
        let builder = ProgramBuilder::new(&schema);
        assert!(builder.natural_chain(&["A", "B"]).is_err());
        assert!(builder.natural_chain(&[]).is_err());
    }

    #[test]
    fn builder_program_is_self_equivalent() {
        let schema = schema();
        let mut builder = ProgramBuilder::new(&schema);
        builder.insert_all("addUser", "User").unwrap();
        builder
            .select_by("getUser", "User", "uid", &["name"])
            .unwrap();
        let program = builder.build().unwrap();
        let report = crate::equiv::compare_programs(
            &program,
            &schema,
            &program,
            &schema,
            &TestConfig::default(),
        );
        assert!(report.equivalent);
    }
}
