//! A hand-written lexer and recursive-descent parser for the concrete
//! syntax of database programs.
//!
//! The syntax mirrors the paper's examples (Figure 2):
//!
//! ```text
//! update addInstructor(id: int, name: string, pic: binary)
//!     INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
//! update deleteInstructor(id: int)
//!     DELETE Instructor FROM Instructor WHERE InstId = id;
//! query getInstructorInfo(id: int)
//!     SELECT IName, IPic FROM Instructor WHERE InstId = id;
//! ```
//!
//! Unqualified attribute names are resolved against the tables of the
//! enclosing statement's join chain using the schema. Natural joins
//! (`A JOIN B` without `ON`) are resolved to an equi-join on the first
//! shared column or declared foreign key.

use crate::ast::{
    CmpOp, Function, FunctionBody, JoinChain, Operand, Param, Pred, Program, Query, Update,
};
use crate::error::{Error, Result};
use crate::schema::{Schema, TableName};
use crate::value::{DataType, Value};

/// Parses a full program against `schema`.
///
/// # Errors
///
/// Returns [`Error::Parse`] for syntax errors (with line/column information)
/// and resolution errors for unknown tables, attributes or types.
pub fn parse_program(text: &str, schema: &Schema) -> Result<Program> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        schema,
        current_params: Vec::new(),
    };
    let program = parser.parse_program()?;
    program.validate(schema)?;
    Ok(program)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum TokenKind {
    Ident(String),
    Int(i64),
    Str(String),
    Bytes(Vec<u8>),
    LParen,
    RParen,
    Comma,
    Colon,
    Semi,
    Dot,
    Star,
    Cmp(CmpOp),
    Eof,
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: TokenKind,
    line: usize,
    column: usize,
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = text.chars().peekable();

    macro_rules! push {
        ($kind:expr, $line:expr, $col:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $line,
                column: $col,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col) = (line, column);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '-' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'-') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            column = 1;
                            break;
                        }
                    }
                } else if chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let mut digits = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() {
                            digits.push(d);
                            chars.next();
                            column += 1;
                        } else {
                            break;
                        }
                    }
                    let value: i64 = digits.parse().map_err(|_| Error::Parse {
                        line: tok_line,
                        column: tok_col,
                        message: format!("invalid integer literal `-{digits}`"),
                    })?;
                    push!(TokenKind::Int(-value), tok_line, tok_col);
                } else {
                    return Err(Error::Parse {
                        line: tok_line,
                        column: tok_col,
                        message: "unexpected `-`".to_string(),
                    });
                }
            }
            '(' => {
                chars.next();
                column += 1;
                push!(TokenKind::LParen, tok_line, tok_col);
            }
            ')' => {
                chars.next();
                column += 1;
                push!(TokenKind::RParen, tok_line, tok_col);
            }
            ',' => {
                chars.next();
                column += 1;
                push!(TokenKind::Comma, tok_line, tok_col);
            }
            ':' => {
                chars.next();
                column += 1;
                push!(TokenKind::Colon, tok_line, tok_col);
            }
            ';' => {
                chars.next();
                column += 1;
                push!(TokenKind::Semi, tok_line, tok_col);
            }
            '.' => {
                chars.next();
                column += 1;
                push!(TokenKind::Dot, tok_line, tok_col);
            }
            '*' => {
                chars.next();
                column += 1;
                push!(TokenKind::Star, tok_line, tok_col);
            }
            '=' => {
                chars.next();
                column += 1;
                push!(TokenKind::Cmp(CmpOp::Eq), tok_line, tok_col);
            }
            '!' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    column += 1;
                    push!(TokenKind::Cmp(CmpOp::Ne), tok_line, tok_col);
                } else {
                    return Err(Error::Parse {
                        line: tok_line,
                        column: tok_col,
                        message: "expected `=` after `!`".to_string(),
                    });
                }
            }
            '<' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    column += 1;
                    push!(TokenKind::Cmp(CmpOp::Le), tok_line, tok_col);
                } else if chars.peek() == Some(&'>') {
                    chars.next();
                    column += 1;
                    push!(TokenKind::Cmp(CmpOp::Ne), tok_line, tok_col);
                } else {
                    push!(TokenKind::Cmp(CmpOp::Lt), tok_line, tok_col);
                }
            }
            '>' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    column += 1;
                    push!(TokenKind::Cmp(CmpOp::Ge), tok_line, tok_col);
                } else {
                    push!(TokenKind::Cmp(CmpOp::Gt), tok_line, tok_col);
                }
            }
            '"' => {
                chars.next();
                column += 1;
                let mut value = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    column += 1;
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                        column = 1;
                    }
                    value.push(c);
                }
                if !closed {
                    return Err(Error::Parse {
                        line: tok_line,
                        column: tok_col,
                        message: "unterminated string literal".to_string(),
                    });
                }
                push!(TokenKind::Str(value), tok_line, tok_col);
            }
            c if c.is_ascii_digit() => {
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() {
                        digits.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                if let Some(hex) = digits.strip_prefix("0x") {
                    let mut bytes = Vec::new();
                    let mut iter = hex.as_bytes().chunks(2);
                    for chunk in iter.by_ref() {
                        let s = std::str::from_utf8(chunk).expect("ascii");
                        let byte = u8::from_str_radix(s, 16).map_err(|_| Error::Parse {
                            line: tok_line,
                            column: tok_col,
                            message: format!("invalid hex literal `{digits}`"),
                        })?;
                        bytes.push(byte);
                    }
                    push!(TokenKind::Bytes(bytes), tok_line, tok_col);
                } else {
                    let value: i64 = digits.parse().map_err(|_| Error::Parse {
                        line: tok_line,
                        column: tok_col,
                        message: format!("invalid integer literal `{digits}`"),
                    })?;
                    push!(TokenKind::Int(value), tok_line, tok_col);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Ident(ident), tok_line, tok_col);
            }
            other => {
                return Err(Error::Parse {
                    line: tok_line,
                    column: tok_col,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column,
    });
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    schema: &'a Schema,
    /// Parameter names of the function currently being parsed: inside
    /// predicates, these shadow identically named columns on the right-hand
    /// side of comparisons.
    current_params: Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let token = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> Error {
        let token = self.peek();
        Error::Parse {
            line: token.line,
            column: token.column,
            message: message.into(),
        }
    }

    fn is_keyword(&self, token: &Token, keyword: &str) -> bool {
        matches!(&token.kind, TokenKind::Ident(name) if name.eq_ignore_ascii_case(keyword))
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        self.is_keyword(self.peek(), keyword)
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        if self.at_keyword(keyword) {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn expect(&mut self, kind: &TokenKind, description: &str) -> Result<()> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {description}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    /// Returns `true` if the upcoming tokens start a new function
    /// declaration (`update name (` or `query name (`), which disambiguates
    /// a declaration from an `UPDATE ... SET` statement.
    fn at_function_decl(&self) -> bool {
        (self.at_keyword("update") || self.at_keyword("query"))
            && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            && matches!(self.peek_at(2).kind, TokenKind::LParen)
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut functions = Vec::new();
        while !self.at_eof() {
            functions.push(self.parse_function()?);
        }
        Ok(Program::new(functions))
    }

    fn parse_function(&mut self) -> Result<Function> {
        let is_query = if self.at_keyword("query") {
            true
        } else if self.at_keyword("update") {
            false
        } else {
            return Err(self.error("expected `update` or `query`"));
        };
        self.advance();
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let params = self.parse_params()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        self.current_params = params.iter().map(|p| p.name.clone()).collect();
        let body = if is_query {
            FunctionBody::Query(self.parse_select()?)
        } else {
            FunctionBody::Update(self.parse_update_body()?)
        };
        self.current_params.clear();
        Ok(Function { name, params, body })
    }

    fn parse_params(&mut self) -> Result<Vec<Param>> {
        let mut params = Vec::new();
        if matches!(self.peek().kind, TokenKind::RParen) {
            return Ok(params);
        }
        loop {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let ty_name = self.expect_ident()?;
            let ty = DataType::from_keyword(&ty_name)
                .ok_or_else(|| self.error(format!("unknown type `{ty_name}`")))?;
            params.push(Param::new(name, ty));
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(params)
    }

    fn parse_select(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        // Projection list: raw names resolved once the join chain is known.
        let mut raw_attrs: Vec<String> = Vec::new();
        let mut star = false;
        if matches!(self.peek().kind, TokenKind::Star) {
            self.advance();
            star = true;
        } else {
            loop {
                raw_attrs.push(self.parse_attr_name()?);
                if matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect_keyword("from")?;
        let join = self.parse_join_chain()?;
        let tables = join.tables();
        let pred = if self.at_keyword("where") {
            self.advance();
            self.parse_pred(&tables)?
        } else {
            Pred::True
        };
        if matches!(self.peek().kind, TokenKind::Semi) {
            self.advance();
        }
        let base = Query::Filter {
            pred,
            input: Box::new(Query::Join(join.clone())),
        };
        if star {
            return Ok(base);
        }
        let mut attrs = Vec::new();
        for raw in raw_attrs {
            attrs.push(self.schema.resolve_attr(&raw, &tables)?);
        }
        Ok(Query::Project {
            attrs,
            input: Box::new(base),
        })
    }

    fn parse_update_body(&mut self) -> Result<Update> {
        let mut statements = Vec::new();
        loop {
            if self.at_eof() || self.at_function_decl() {
                break;
            }
            if self.at_keyword("insert") {
                statements.push(self.parse_insert()?);
            } else if self.at_keyword("delete") {
                statements.push(self.parse_delete()?);
            } else if self.at_keyword("update") {
                statements.push(self.parse_update_stmt()?);
            } else {
                return Err(self.error("expected `INSERT`, `DELETE` or `UPDATE` statement"));
            }
        }
        if statements.is_empty() {
            return Err(self.error("update function has an empty body"));
        }
        if statements.len() == 1 {
            Ok(statements.pop().expect("length checked"))
        } else {
            Ok(Update::Seq(statements))
        }
    }

    fn parse_insert(&mut self) -> Result<Update> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let join = self.parse_join_chain()?;
        let tables = join.tables();
        self.expect_keyword("values")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut values = Vec::new();
        if !matches!(self.peek().kind, TokenKind::RParen) {
            loop {
                let raw = self.parse_attr_name()?;
                let attr = self.schema.resolve_attr(&raw, &tables)?;
                self.expect(&TokenKind::Colon, "`:`")?;
                let operand = self.parse_operand()?;
                values.push((attr, operand));
                if matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Update::Insert { join, values })
    }

    fn parse_delete(&mut self) -> Result<Update> {
        self.expect_keyword("delete")?;
        let mut tables: Vec<TableName> = Vec::new();
        loop {
            let name = self.expect_ident()?;
            tables.push(TableName::new(name));
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect_keyword("from")?;
        let join = self.parse_join_chain()?;
        let chain_tables = join.tables();
        let pred = if self.at_keyword("where") {
            self.advance();
            self.parse_pred(&chain_tables)?
        } else {
            Pred::True
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Update::Delete { tables, join, pred })
    }

    fn parse_update_stmt(&mut self) -> Result<Update> {
        self.expect_keyword("update")?;
        let join = self.parse_join_chain()?;
        let tables = join.tables();
        self.expect_keyword("set")?;
        let raw = self.parse_attr_name()?;
        let attr = self.schema.resolve_attr(&raw, &tables)?;
        match self.peek().kind {
            TokenKind::Cmp(CmpOp::Eq) => {
                self.advance();
            }
            _ => return Err(self.error("expected `=` in SET clause")),
        }
        let value = self.parse_operand()?;
        let pred = if self.at_keyword("where") {
            self.advance();
            self.parse_pred(&tables)?
        } else {
            Pred::True
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Update::UpdateAttr {
            join,
            pred,
            attr,
            value,
        })
    }

    fn parse_join_chain(&mut self) -> Result<JoinChain> {
        let first = self.expect_ident()?;
        let mut chain = JoinChain::table(first);
        while self.at_keyword("join") {
            self.advance();
            let right_name = self.expect_ident()?;
            let right = JoinChain::table(right_name.clone());
            if self.at_keyword("on") {
                self.advance();
                let lhs_raw = self.parse_attr_name()?;
                match self.peek().kind {
                    TokenKind::Cmp(CmpOp::Eq) => {
                        self.advance();
                    }
                    _ => return Err(self.error("expected `=` in ON clause")),
                }
                let rhs_raw = self.parse_attr_name()?;
                let mut left_tables = chain.tables();
                let right_tables = vec![TableName::new(right_name.clone())];
                // The ON clause may list the attributes in either order.
                let (left_attr, right_attr) = {
                    let lhs_left = self.schema.resolve_attr(&lhs_raw, &left_tables);
                    let rhs_right = self.schema.resolve_attr(&rhs_raw, &right_tables);
                    match (lhs_left, rhs_right) {
                        (Ok(l), Ok(r)) => (l, r),
                        _ => {
                            let l = self.schema.resolve_attr(&rhs_raw, &left_tables)?;
                            let r = self.schema.resolve_attr(&lhs_raw, &right_tables)?;
                            (l, r)
                        }
                    }
                };
                left_tables.push(TableName::new(right_name));
                chain = chain.join(right, left_attr, right_attr);
            } else {
                // Natural join: use the first shared column / foreign key
                // between the new table and any table already in the chain.
                let right_table = TableName::new(right_name.clone());
                let mut found = None;
                for left_table in chain.tables() {
                    let pairs = self.schema.join_attrs(&left_table, &right_table);
                    if let Some(pair) = pairs.into_iter().next() {
                        found = Some(pair);
                        break;
                    }
                }
                let (left_attr, right_attr) = found.ok_or_else(|| {
                    self.error(format!(
                        "no shared column or foreign key to naturally join `{right_name}`"
                    ))
                })?;
                chain = chain.join(right, left_attr, right_attr);
            }
        }
        Ok(chain)
    }

    fn parse_attr_name(&mut self) -> Result<String> {
        let first = self.expect_ident()?;
        if matches!(self.peek().kind, TokenKind::Dot) {
            self.advance();
            let second = self.expect_ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Operand::Value(Value::Int(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Operand::Value(Value::str(s)))
            }
            TokenKind::Bytes(b) => {
                self.advance();
                Ok(Operand::Value(Value::bytes(b)))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if name.eq_ignore_ascii_case("true") {
                    Ok(Operand::Value(Value::Bool(true)))
                } else if name.eq_ignore_ascii_case("false") {
                    Ok(Operand::Value(Value::Bool(false)))
                } else if name.eq_ignore_ascii_case("null") {
                    Ok(Operand::Value(Value::Null))
                } else {
                    Ok(Operand::Param(name))
                }
            }
            _ => Err(self.error("expected value or parameter")),
        }
    }

    fn parse_pred(&mut self, tables: &[TableName]) -> Result<Pred> {
        self.parse_or(tables)
    }

    fn parse_or(&mut self, tables: &[TableName]) -> Result<Pred> {
        let mut lhs = self.parse_and(tables)?;
        while self.at_keyword("or") {
            self.advance();
            let rhs = self.parse_and(tables)?;
            lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, tables: &[TableName]) -> Result<Pred> {
        let mut lhs = self.parse_unary(tables)?;
        while self.at_keyword("and") {
            self.advance();
            let rhs = self.parse_unary(tables)?;
            lhs = Pred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, tables: &[TableName]) -> Result<Pred> {
        if self.at_keyword("not") {
            self.advance();
            let inner = self.parse_unary(tables)?;
            return Ok(Pred::Not(Box::new(inner)));
        }
        if self.at_keyword("true") {
            self.advance();
            return Ok(Pred::True);
        }
        if self.at_keyword("false") {
            self.advance();
            return Ok(Pred::False);
        }
        if matches!(self.peek().kind, TokenKind::LParen) {
            self.advance();
            let inner = self.parse_pred(tables)?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        // Atom: attr op operand | attr op attr | attr IN (SELECT ...)
        let raw = self.parse_attr_name()?;
        let lhs = self.schema.resolve_attr(&raw, tables)?;
        if self.at_keyword("in") {
            self.advance();
            self.expect(&TokenKind::LParen, "`(`")?;
            let query = self.parse_select()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Pred::In {
                attr: lhs,
                query: Box::new(query),
            });
        }
        let op = match self.peek().kind {
            TokenKind::Cmp(op) => {
                self.advance();
                op
            }
            _ => return Err(self.error("expected comparison operator")),
        };
        // Right-hand side: an attribute if it resolves, otherwise an operand.
        if let TokenKind::Ident(name) = self.peek().kind.clone() {
            let is_value_keyword = name.eq_ignore_ascii_case("true")
                || name.eq_ignore_ascii_case("false")
                || name.eq_ignore_ascii_case("null");
            // Function parameters shadow identically named columns on the
            // right-hand side of a comparison: `WHERE cid = cid` compares the
            // column with the *parameter* `cid`.
            let is_parameter = self.current_params.contains(&name);
            if !is_value_keyword && !is_parameter {
                let qualified = matches!(self.peek_at(1).kind, TokenKind::Dot);
                let raw_rhs = if qualified {
                    format!(
                        "{}.{}",
                        name,
                        match &self.peek_at(2).kind {
                            TokenKind::Ident(second) => second.clone(),
                            _ => String::new(),
                        }
                    )
                } else {
                    name.clone()
                };
                if let Ok(rhs) = self.schema.resolve_attr(&raw_rhs, tables) {
                    // Consume the tokens that formed the attribute.
                    self.advance();
                    if qualified {
                        self.advance();
                        self.advance();
                    }
                    return Ok(Pred::CmpAttr { lhs, op, rhs });
                }
            }
        }
        let rhs = self.parse_operand()?;
        Ok(Pred::CmpValue { lhs, op, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::program_to_string;
    use crate::schema::QualifiedAttr;

    fn course_schema() -> Schema {
        Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap()
    }

    #[test]
    fn parses_figure_2_program() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            update addTA(id: int, name: string, pic: binary)
                INSERT INTO TA VALUES (TaId: id, TName: name, TPic: pic);
            update deleteTA(id: int)
                DELETE TA FROM TA WHERE TaId = id;
            query getTAInfo(id: int)
                SELECT TName, TPic FROM TA WHERE TaId = id;
            "#,
            &schema,
        )
        .unwrap();
        assert_eq!(program.functions.len(), 6);
        assert_eq!(program.queries().count(), 2);
        assert_eq!(program.updates().count(), 4);
    }

    #[test]
    fn parses_multi_statement_update_function() {
        let schema = Schema::parse(
            "Instructor(InstId: int, IName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name);
                INSERT INTO Picture VALUES (Pic: pic);
            "#,
            &schema,
        )
        .unwrap();
        match &program.functions[0].body {
            FunctionBody::Update(Update::Seq(stmts)) => assert_eq!(stmts.len(), 2),
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn parses_join_with_on_and_natural_join() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            query classInstructors(cid: int)
                SELECT IName FROM Class JOIN Instructor ON Class.InstId = Instructor.InstId
                WHERE ClassId = cid;
            query classTAs(cid: int)
                SELECT TName FROM Class JOIN TA WHERE ClassId = cid;
            "#,
            &schema,
        )
        .unwrap();
        for function in &program.functions {
            match &function.body {
                FunctionBody::Query(q) => assert_eq!(q.join_chain().len(), 2),
                _ => panic!("expected query"),
            }
        }
    }

    #[test]
    fn parses_update_statement_with_set() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            update renameInstructor(id: int, newName: string)
                UPDATE Instructor SET IName = newName WHERE InstId = id;
            "#,
            &schema,
        )
        .unwrap();
        match &program.functions[0].body {
            FunctionBody::Update(Update::UpdateAttr { attr, .. }) => {
                assert_eq!(attr, &QualifiedAttr::new("Instructor", "IName"));
            }
            other => panic!("expected update statement, got {other:?}"),
        }
    }

    #[test]
    fn parses_delete_of_multiple_tables() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            update removeClassStaff(cid: int)
                DELETE Class, Instructor FROM Class JOIN Instructor WHERE ClassId = cid;
            "#,
            &schema,
        )
        .unwrap();
        match &program.functions[0].body {
            FunctionBody::Update(Update::Delete { tables, .. }) => assert_eq!(tables.len(), 2),
            other => panic!("expected delete, got {other:?}"),
        }
    }

    #[test]
    fn parses_complex_predicates() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            query weird(id: int)
                SELECT IName FROM Instructor
                WHERE (InstId = id OR InstId = 0) AND NOT (IName = "bob");
            "#,
            &schema,
        )
        .unwrap();
        assert_eq!(program.functions.len(), 1);
    }

    #[test]
    fn parses_in_subquery() {
        let schema = course_schema();
        let program = parse_program(
            r#"
            query taughtBy(name: string)
                SELECT ClassId FROM Class
                WHERE Class.InstId IN (SELECT Instructor.InstId FROM Instructor WHERE IName = name);
            "#,
            &schema,
        )
        .unwrap();
        assert_eq!(program.functions.len(), 1);
    }

    #[test]
    fn reports_unknown_attribute() {
        let schema = course_schema();
        let err = parse_program("query q(id: int) SELECT Nope FROM Instructor;", &schema);
        assert!(matches!(err, Err(Error::UnknownAttribute(_))));
    }

    #[test]
    fn reports_syntax_error_with_position() {
        let schema = course_schema();
        let err = parse_program("query q(id: int) SELECT FROM;", &schema).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn pretty_printed_programs_reparse() {
        let schema = course_schema();
        let original = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
            update deleteInstructor(id: int)
                DELETE Instructor FROM Instructor WHERE InstId = id;
            query getInstructorInfo(id: int)
                SELECT IName, IPic FROM Instructor WHERE InstId = id;
            "#,
            &schema,
        )
        .unwrap();
        let printed = program_to_string(&original);
        let reparsed = parse_program(&printed, &schema).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn empty_update_body_is_rejected() {
        let schema = course_schema();
        let err = parse_program("update broken(id: int)", &schema);
        assert!(err.is_err());
    }

    #[test]
    fn parameters_shadow_columns_in_predicates() {
        let schema = Schema::parse("T(a: int, b: int)").unwrap();
        // `a` on the right-hand side is the parameter, not the column.
        let program =
            parse_program("query q(a: int) SELECT b FROM T WHERE a = a;", &schema).unwrap();
        match &program.functions[0].body {
            FunctionBody::Query(query) => {
                let attrs_in_pred: Vec<_> = query.attrs();
                assert!(attrs_in_pred.contains(&QualifiedAttr::new("T", "a")));
                assert_eq!(query.params(), vec!["a".to_string()]);
            }
            other => panic!("expected query, got {other:?}"),
        }
        // Without a matching parameter the identifier is the column.
        let program =
            parse_program("query q2(x: int) SELECT b FROM T WHERE a = b;", &schema).unwrap();
        match &program.functions[0].body {
            FunctionBody::Query(query) => assert!(query.params().is_empty()),
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn negative_integers_and_comments() {
        let schema = Schema::parse("T(a: int)").unwrap();
        let program = parse_program(
            "-- leading comment\nquery q() SELECT a FROM T WHERE a = -3;",
            &schema,
        )
        .unwrap();
        assert_eq!(program.functions.len(), 1);
    }
}
