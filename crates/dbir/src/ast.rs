//! Abstract syntax of database programs (Figure 5 of the paper).
//!
//! A [`Program`] is a list of [`Function`]s; each function is either a
//! *query* (a relational-algebra expression over projection, selection and
//! equi-joins) or an *update* (a sequence of insert / delete / update
//! statements). Function parameters may appear wherever values are expected.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{Error, Result};
use crate::schema::{QualifiedAttr, Schema, TableName};
use crate::value::{DataType, Value};

/// A function parameter: a name and its declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (e.g. `id`).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, ty: DataType) -> Param {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// An operand of a predicate, insert value, or update value: either a
/// literal constant or a reference to a function parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// A literal value.
    Value(Value),
    /// A reference to an enclosing function parameter.
    Param(String),
}

impl Operand {
    /// Convenience constructor for a parameter reference.
    pub fn param(name: impl Into<String>) -> Operand {
        Operand::Param(name.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Param(p) => f.write_str(p),
        }
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Operand {
        Operand::Value(v)
    }
}

/// Comparison operators usable inside predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The concrete-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A join chain: either a single table or a nested equi-join
/// `J1 a1⋈a2 J2` (Figure 5, `Join`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoinChain {
    /// A base table.
    Table(TableName),
    /// An equi-join of two join chains on `left_attr = right_attr`.
    Join {
        /// Left operand.
        left: Box<JoinChain>,
        /// Right operand.
        right: Box<JoinChain>,
        /// Attribute from the left operand.
        left_attr: QualifiedAttr,
        /// Attribute from the right operand.
        right_attr: QualifiedAttr,
    },
}

impl JoinChain {
    /// Creates a join chain over a single table.
    pub fn table(name: impl Into<TableName>) -> JoinChain {
        JoinChain::Table(name.into())
    }

    /// Joins `self` with `right` on `left_attr = right_attr`.
    pub fn join(
        self,
        right: JoinChain,
        left_attr: QualifiedAttr,
        right_attr: QualifiedAttr,
    ) -> JoinChain {
        JoinChain::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_attr,
            right_attr,
        }
    }

    /// All tables participating in the chain, left to right.
    pub fn tables(&self) -> Vec<TableName> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<TableName>) {
        match self {
            JoinChain::Table(t) => out.push(*t),
            JoinChain::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Returns `true` if the chain mentions the given table.
    pub fn contains_table(&self, table: &TableName) -> bool {
        self.tables().iter().any(|t| t == table)
    }

    /// All qualified attributes available from this chain (the union of the
    /// columns of all participating tables), resolved against `schema`.
    pub fn attrs(&self, schema: &Schema) -> Vec<QualifiedAttr> {
        self.tables()
            .iter()
            .filter_map(|t| schema.table(t))
            .flat_map(|t| t.qualified_attrs())
            .collect()
    }

    /// The attributes mentioned in the equality conditions of the chain.
    pub fn join_condition_attrs(&self) -> Vec<QualifiedAttr> {
        let mut out = Vec::new();
        self.collect_condition_attrs(&mut out);
        out
    }

    fn collect_condition_attrs(&self, out: &mut Vec<QualifiedAttr>) {
        if let JoinChain::Join {
            left,
            right,
            left_attr,
            right_attr,
        } = self
        {
            left.collect_condition_attrs(out);
            right.collect_condition_attrs(out);
            out.push(left_attr.clone());
            out.push(right_attr.clone());
        }
    }

    /// The number of base tables in the chain.
    pub fn len(&self) -> usize {
        self.tables().len()
    }

    /// Returns `true` if the chain is a single table.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl From<TableName> for JoinChain {
    fn from(t: TableName) -> JoinChain {
        JoinChain::Table(t)
    }
}

/// A boolean predicate over join-chain attributes, constants and parameters
/// (Figure 5, `Pred`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pred {
    /// The always-true predicate.
    True,
    /// The always-false predicate.
    False,
    /// Attribute compared with another attribute: `a op b`.
    CmpAttr {
        /// Left attribute.
        lhs: QualifiedAttr,
        /// Comparison operator.
        op: CmpOp,
        /// Right attribute.
        rhs: QualifiedAttr,
    },
    /// Attribute compared with a constant or parameter: `a op v`.
    CmpValue {
        /// Attribute.
        lhs: QualifiedAttr,
        /// Comparison operator.
        op: CmpOp,
        /// Constant or parameter.
        rhs: Operand,
    },
    /// Membership of an attribute in the result of a sub-query: `a ∈ Q`.
    In {
        /// Attribute whose value is tested.
        attr: QualifiedAttr,
        /// Sub-query; must project a single column.
        query: Box<Query>,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Builds `lhs = rhs` where `rhs` is an operand.
    pub fn eq_value(lhs: QualifiedAttr, rhs: impl Into<Operand>) -> Pred {
        Pred::CmpValue {
            lhs,
            op: CmpOp::Eq,
            rhs: rhs.into(),
        }
    }

    /// Builds `lhs = rhs` between two attributes.
    pub fn eq_attr(lhs: QualifiedAttr, rhs: QualifiedAttr) -> Pred {
        Pred::CmpAttr {
            lhs,
            op: CmpOp::Eq,
            rhs,
        }
    }

    /// Conjunction helper that avoids introducing `True` operands.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// All attributes mentioned by the predicate (not descending into
    /// sub-query join chains, which are reported separately).
    pub fn attrs(&self) -> Vec<QualifiedAttr> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Vec<QualifiedAttr>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::CmpAttr { lhs, rhs, .. } => {
                out.push(lhs.clone());
                out.push(rhs.clone());
            }
            Pred::CmpValue { lhs, .. } => out.push(lhs.clone()),
            Pred::In { attr, query } => {
                out.push(attr.clone());
                out.extend(query.attrs());
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Pred::Not(p) => p.collect_attrs(out),
        }
    }

    /// All parameters referenced by the predicate.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::CmpAttr { .. } => {}
            Pred::CmpValue { rhs, .. } => {
                if let Operand::Param(p) = rhs {
                    out.push(p.clone());
                }
            }
            Pred::In { query, .. } => out.extend(query.params()),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Pred::Not(p) => p.collect_params(out),
        }
    }
}

/// A query: a relational-algebra expression (Figure 5, `Query`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Query {
    /// Projection `Π_{attrs}(input)`.
    Project {
        /// Projected attributes, in output order.
        attrs: Vec<QualifiedAttr>,
        /// Input query.
        input: Box<Query>,
    },
    /// Selection `σ_{pred}(input)`.
    Filter {
        /// Filter predicate.
        pred: Pred,
        /// Input query.
        input: Box<Query>,
    },
    /// A join chain used directly as a query.
    Join(JoinChain),
}

impl Query {
    /// Convenience constructor for `Π_attrs(σ_pred(J))`, the most common
    /// query shape in the benchmarks.
    pub fn select(attrs: Vec<QualifiedAttr>, pred: Pred, join: JoinChain) -> Query {
        Query::Project {
            attrs,
            input: Box::new(Query::Filter {
                pred,
                input: Box::new(Query::Join(join)),
            }),
        }
    }

    /// The join chain at the leaf of the query, if the query has the standard
    /// `Π(σ(J))` / `σ(J)` / `J` shape.
    pub fn join_chain(&self) -> &JoinChain {
        match self {
            Query::Project { input, .. } | Query::Filter { input, .. } => input.join_chain(),
            Query::Join(j) => j,
        }
    }

    /// All attributes referenced by the query (projections, predicates and
    /// join conditions).
    pub fn attrs(&self) -> Vec<QualifiedAttr> {
        match self {
            Query::Project { attrs, input } => {
                let mut out = attrs.clone();
                out.extend(input.attrs());
                out
            }
            Query::Filter { pred, input } => {
                let mut out = pred.attrs();
                out.extend(input.attrs());
                out
            }
            Query::Join(j) => j.join_condition_attrs(),
        }
    }

    /// All parameters referenced by the query.
    pub fn params(&self) -> Vec<String> {
        match self {
            Query::Project { input, .. } => input.params(),
            Query::Filter { pred, input } => {
                let mut out = pred.params();
                out.extend(input.params());
                out
            }
            Query::Join(_) => Vec::new(),
        }
    }

    /// The attributes produced by the query (its output columns).
    pub fn output_attrs(&self, schema: &Schema) -> Vec<QualifiedAttr> {
        match self {
            Query::Project { attrs, .. } => attrs.clone(),
            Query::Filter { input, .. } => input.output_attrs(schema),
            Query::Join(j) => j.attrs(schema),
        }
    }
}

/// An update statement or sequence of update statements (Figure 5, `Update`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Update {
    /// `ins(J, {a1: v1, ..., an: vn})`.
    ///
    /// When `join` is a chain of several tables this is the paper's
    /// shorthand for inserting one tuple into each participating table with
    /// fresh unique identifiers linking them (Section 3.1).
    Insert {
        /// Target table or join chain.
        join: JoinChain,
        /// Attribute/value assignments.
        values: Vec<(QualifiedAttr, Operand)>,
    },
    /// `del([T1..Tn], J, pred)`: delete from the listed tables every tuple
    /// that occurs in a row of `σ_pred(J)`.
    Delete {
        /// Tables tuples are removed from; must be a subset of `join`'s tables.
        tables: Vec<TableName>,
        /// Join chain defining the candidate rows.
        join: JoinChain,
        /// Selection predicate.
        pred: Pred,
    },
    /// `upd(J, pred, attr, value)`: set `attr` to `value` for every tuple of
    /// `attr`'s table occurring in a row of `σ_pred(J)`.
    UpdateAttr {
        /// Join chain defining the candidate rows.
        join: JoinChain,
        /// Selection predicate.
        pred: Pred,
        /// Attribute being written.
        attr: QualifiedAttr,
        /// New value.
        value: Operand,
    },
    /// Sequential composition `U1; U2`.
    Seq(Vec<Update>),
}

impl Update {
    /// Flattens nested [`Update::Seq`] constructs into a single statement
    /// list.
    pub fn statements(&self) -> Vec<&Update> {
        match self {
            Update::Seq(list) => list.iter().flat_map(|u| u.statements()).collect(),
            other => vec![other],
        }
    }

    /// All attributes referenced by the statement (insert targets,
    /// predicates, join conditions, updated attributes).
    pub fn attrs(&self) -> Vec<QualifiedAttr> {
        match self {
            Update::Insert { join, values } => {
                let mut out: Vec<QualifiedAttr> = values.iter().map(|(a, _)| a.clone()).collect();
                out.extend(join.join_condition_attrs());
                out
            }
            Update::Delete { join, pred, .. } => {
                let mut out = pred.attrs();
                out.extend(join.join_condition_attrs());
                out
            }
            Update::UpdateAttr {
                join, pred, attr, ..
            } => {
                let mut out = pred.attrs();
                out.push(attr.clone());
                out.extend(join.join_condition_attrs());
                out
            }
            Update::Seq(list) => list.iter().flat_map(|u| u.attrs()).collect(),
        }
    }

    /// All parameters referenced by the statement.
    pub fn params(&self) -> Vec<String> {
        match self {
            Update::Insert { values, .. } => values
                .iter()
                .filter_map(|(_, op)| match op {
                    Operand::Param(p) => Some(p.clone()),
                    Operand::Value(_) => None,
                })
                .collect(),
            Update::Delete { pred, .. } => pred.params(),
            Update::UpdateAttr { pred, value, .. } => {
                let mut out = pred.params();
                if let Operand::Param(p) = value {
                    out.push(p.clone());
                }
                out
            }
            Update::Seq(list) => list.iter().flat_map(|u| u.params()).collect(),
        }
    }

    /// The tables touched (read or written) by the statement.
    pub fn tables(&self) -> Vec<TableName> {
        match self {
            Update::Insert { join, .. } => join.tables(),
            Update::Delete { tables, join, .. } => {
                let mut out = join.tables();
                out.extend(tables.iter().cloned());
                out
            }
            Update::UpdateAttr { join, attr, .. } => {
                let mut out = join.tables();
                out.push(attr.table);
                out
            }
            Update::Seq(list) => list.iter().flat_map(|u| u.tables()).collect(),
        }
    }
}

/// The body of a function: either a query or an update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionBody {
    /// A read-only query function.
    Query(Query),
    /// A state-mutating update function.
    Update(Update),
}

impl FunctionBody {
    /// Returns `true` if this is a query body.
    pub fn is_query(&self) -> bool {
        matches!(self, FunctionBody::Query(_))
    }
}

/// A named function with typed parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Ordered parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: FunctionBody,
}

impl Function {
    /// Creates a query function.
    pub fn query(name: impl Into<String>, params: Vec<Param>, query: Query) -> Function {
        Function {
            name: name.into(),
            params,
            body: FunctionBody::Query(query),
        }
    }

    /// Creates an update function.
    pub fn update(name: impl Into<String>, params: Vec<Param>, update: Update) -> Function {
        Function {
            name: name.into(),
            params,
            body: FunctionBody::Update(update),
        }
    }

    /// Returns `true` if this is a query function.
    pub fn is_query(&self) -> bool {
        self.body.is_query()
    }

    /// All attributes referenced by the function body.
    pub fn attrs(&self) -> Vec<QualifiedAttr> {
        match &self.body {
            FunctionBody::Query(q) => q.attrs(),
            FunctionBody::Update(u) => u.attrs(),
        }
    }

    /// The tables touched by the function body.
    pub fn tables(&self) -> Vec<TableName> {
        match &self.body {
            FunctionBody::Query(q) => q.join_chain().tables(),
            FunctionBody::Update(u) => u.tables(),
        }
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A database program: a collection of query and update functions over a
/// single schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The functions, in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates a program from a list of functions.
    pub fn new(functions: Vec<Function>) -> Program {
        Program { functions }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// All query functions.
    pub fn queries(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.is_query())
    }

    /// All update functions.
    pub fn updates(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| !f.is_query())
    }

    /// The set of attributes referenced anywhere in the program.
    pub fn referenced_attrs(&self) -> BTreeSet<QualifiedAttr> {
        self.functions.iter().flat_map(|f| f.attrs()).collect()
    }

    /// The set of attributes referenced by *query* functions.  These are the
    /// attributes for which the value-correspondence MaxSAT encoding emits
    /// the "necessary condition for equivalence" hard constraint (§4.2).
    pub fn queried_attrs(&self) -> BTreeSet<QualifiedAttr> {
        self.queries().flat_map(|f| f.attrs()).collect()
    }

    /// Checks the program is well-formed with respect to `schema`:
    /// every referenced table and attribute exists, every referenced
    /// parameter is declared, delete table lists are subsets of their join
    /// chains, and function names are unique.
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation found.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let mut names = BTreeSet::new();
        for function in &self.functions {
            if !names.insert(function.name.clone()) {
                return Err(Error::Schema(format!(
                    "duplicate function `{}`",
                    function.name
                )));
            }
            for table in function.tables() {
                if schema.table(&table).is_none() {
                    return Err(Error::UnknownTable(table.to_string()));
                }
            }
            for attr in function.attrs() {
                if !schema.has_attr(&attr) {
                    return Err(Error::UnknownAttribute(attr.to_string()));
                }
            }
            let declared: BTreeSet<&str> =
                function.params.iter().map(|p| p.name.as_str()).collect();
            let used: Vec<String> = match &function.body {
                FunctionBody::Query(q) => q.params(),
                FunctionBody::Update(u) => u.params(),
            };
            for param in used {
                if !declared.contains(param.as_str()) {
                    return Err(Error::UnknownParameter(format!(
                        "{} (in function `{}`)",
                        param, function.name
                    )));
                }
            }
            if let FunctionBody::Update(update) = &function.body {
                for stmt in update.statements() {
                    if let Update::Delete { tables, join, .. } = stmt {
                        if tables.is_empty() {
                            return Err(Error::InvalidStatement(format!(
                                "delete in `{}` lists no tables",
                                function.name
                            )));
                        }
                        for table in tables {
                            if !join.contains_table(table) {
                                return Err(Error::InvalidStatement(format!(
                                    "delete in `{}` targets `{}` which is not in its join chain",
                                    function.name, table
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::parse(
            "Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap()
    }

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    #[test]
    fn join_chain_tables_and_attrs() {
        let s = schema();
        let chain = JoinChain::table("Instructor").join(
            JoinChain::table("TA"),
            qa("Instructor", "InstId"),
            qa("TA", "TaId"),
        );
        assert_eq!(chain.len(), 2);
        assert!(chain.contains_table(&"TA".into()));
        assert!(!chain.contains_table(&"Picture".into()));
        assert_eq!(chain.attrs(&s).len(), 6);
        assert_eq!(chain.join_condition_attrs().len(), 2);
    }

    #[test]
    fn query_attr_collection() {
        let q = Query::select(
            vec![qa("Instructor", "IName")],
            Pred::eq_value(qa("Instructor", "InstId"), Operand::param("id")),
            JoinChain::table("Instructor"),
        );
        let attrs = q.attrs();
        assert!(attrs.contains(&qa("Instructor", "IName")));
        assert!(attrs.contains(&qa("Instructor", "InstId")));
        assert_eq!(q.params(), vec!["id".to_string()]);
        assert_eq!(q.join_chain(), &JoinChain::table("Instructor"));
    }

    #[test]
    fn update_statement_flattening() {
        let ins = Update::Insert {
            join: JoinChain::table("Instructor"),
            values: vec![(qa("Instructor", "InstId"), Operand::param("id"))],
        };
        let del = Update::Delete {
            tables: vec!["Instructor".into()],
            join: JoinChain::table("Instructor"),
            pred: Pred::True,
        };
        let seq = Update::Seq(vec![ins.clone(), Update::Seq(vec![del.clone()])]);
        assert_eq!(seq.statements().len(), 2);
        assert_eq!(seq.params(), vec!["id".to_string()]);
    }

    #[test]
    fn program_queried_attrs_only_counts_queries() {
        let program = Program::new(vec![
            Function::update(
                "addI",
                vec![Param::new("id", DataType::Int)],
                Update::Insert {
                    join: JoinChain::table("Instructor"),
                    values: vec![(qa("Instructor", "InstId"), Operand::param("id"))],
                },
            ),
            Function::query(
                "getI",
                vec![Param::new("id", DataType::Int)],
                Query::select(
                    vec![qa("Instructor", "IName")],
                    Pred::eq_value(qa("Instructor", "InstId"), Operand::param("id")),
                    JoinChain::table("Instructor"),
                ),
            ),
        ]);
        let queried = program.queried_attrs();
        assert!(queried.contains(&qa("Instructor", "IName")));
        assert!(queried.contains(&qa("Instructor", "InstId")));
        let referenced = program.referenced_attrs();
        assert!(referenced.len() >= queried.len());
    }

    #[test]
    fn validate_accepts_well_formed_program() {
        let program = Program::new(vec![Function::query(
            "getI",
            vec![Param::new("id", DataType::Int)],
            Query::select(
                vec![qa("Instructor", "IName")],
                Pred::eq_value(qa("Instructor", "InstId"), Operand::param("id")),
                JoinChain::table("Instructor"),
            ),
        )]);
        assert!(program.validate(&schema()).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_attr() {
        let program = Program::new(vec![Function::query(
            "getI",
            vec![],
            Query::select(
                vec![qa("Instructor", "Nope")],
                Pred::True,
                JoinChain::table("Instructor"),
            ),
        )]);
        assert!(matches!(
            program.validate(&schema()),
            Err(Error::UnknownAttribute(_))
        ));
    }

    #[test]
    fn validate_rejects_undeclared_param() {
        let program = Program::new(vec![Function::query(
            "getI",
            vec![],
            Query::select(
                vec![qa("Instructor", "IName")],
                Pred::eq_value(qa("Instructor", "InstId"), Operand::param("id")),
                JoinChain::table("Instructor"),
            ),
        )]);
        assert!(matches!(
            program.validate(&schema()),
            Err(Error::UnknownParameter(_))
        ));
    }

    #[test]
    fn validate_rejects_delete_outside_join() {
        let program = Program::new(vec![Function::update(
            "delI",
            vec![],
            Update::Delete {
                tables: vec!["TA".into()],
                join: JoinChain::table("Instructor"),
                pred: Pred::True,
            },
        )]);
        assert!(matches!(
            program.validate(&schema()),
            Err(Error::InvalidStatement(_))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_function_names() {
        let f = Function::update(
            "f",
            vec![],
            Update::Insert {
                join: JoinChain::table("Instructor"),
                values: vec![],
            },
        );
        let program = Program::new(vec![f.clone(), f]);
        assert!(program.validate(&schema()).is_err());
    }
}
