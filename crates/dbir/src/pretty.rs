//! Pretty-printing of database programs in the crate's concrete syntax.
//!
//! The output of [`program_to_string`] can be parsed back by
//! [`crate::parser::parse_program`], which the round-trip tests rely on.

use std::fmt::Write as _;

use crate::ast::{Function, FunctionBody, JoinChain, Pred, Program, Query, Update};

/// Renders a join chain as `T1 JOIN T2 ON a = b JOIN ...`.
pub fn join_to_string(join: &JoinChain) -> String {
    match join {
        JoinChain::Table(t) => t.to_string(),
        JoinChain::Join {
            left,
            right,
            left_attr,
            right_attr,
        } => format!(
            "{} JOIN {} ON {} = {}",
            join_to_string(left),
            join_to_string(right),
            left_attr,
            right_attr
        ),
    }
}

/// Renders a predicate.
pub fn pred_to_string(pred: &Pred) -> String {
    match pred {
        Pred::True => "TRUE".to_string(),
        Pred::False => "FALSE".to_string(),
        Pred::CmpAttr { lhs, op, rhs } => format!("{lhs} {op} {rhs}"),
        Pred::CmpValue { lhs, op, rhs } => format!("{lhs} {op} {rhs}"),
        Pred::In { attr, query } => format!("{attr} IN ({})", query_to_string(query)),
        Pred::And(a, b) => format!("({} AND {})", pred_to_string(a), pred_to_string(b)),
        Pred::Or(a, b) => format!("({} OR {})", pred_to_string(a), pred_to_string(b)),
        Pred::Not(p) => format!("NOT ({})", pred_to_string(p)),
    }
}

/// Renders a query as a `SELECT` statement.
pub fn query_to_string(query: &Query) -> String {
    // Decompose the standard Π(σ(J)) shape; fall back to nested rendering
    // for other shapes.
    let (attrs, pred, join) = decompose(query);
    let mut out = String::new();
    out.push_str("SELECT ");
    match attrs {
        Some(attrs) => {
            for (i, attr) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{attr}");
            }
        }
        None => out.push('*'),
    }
    let _ = write!(out, " FROM {}", join_to_string(join));
    if let Some(pred) = pred {
        if pred != &Pred::True {
            let _ = write!(out, " WHERE {}", pred_to_string(pred));
        }
    }
    out
}

fn decompose(
    query: &Query,
) -> (
    Option<&[crate::schema::QualifiedAttr]>,
    Option<&Pred>,
    &JoinChain,
) {
    match query {
        Query::Project { attrs, input } => {
            let (_, pred, join) = decompose(input);
            (Some(attrs), pred, join)
        }
        Query::Filter { pred, input } => {
            let (attrs, _, join) = decompose(input);
            (attrs, Some(pred), join)
        }
        Query::Join(join) => (None, None, join),
    }
}

/// Renders an update statement (or sequence) as one `INSERT` / `DELETE` /
/// `UPDATE` statement per line.
pub fn update_to_string(update: &Update) -> String {
    let mut out = String::new();
    for stmt in update.statements() {
        match stmt {
            Update::Insert { join, values } => {
                let _ = write!(out, "INSERT INTO {} VALUES (", join_to_string(join));
                for (i, (attr, value)) in values.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{attr}: {value}");
                }
                out.push_str(");\n");
            }
            Update::Delete { tables, join, pred } => {
                out.push_str("DELETE ");
                for (i, table) in tables.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{table}");
                }
                let _ = write!(out, " FROM {}", join_to_string(join));
                if pred != &Pred::True {
                    let _ = write!(out, " WHERE {}", pred_to_string(pred));
                }
                out.push_str(";\n");
            }
            Update::UpdateAttr {
                join,
                pred,
                attr,
                value,
            } => {
                let _ = write!(out, "UPDATE {} SET {attr} = {value}", join_to_string(join));
                if pred != &Pred::True {
                    let _ = write!(out, " WHERE {}", pred_to_string(pred));
                }
                out.push_str(";\n");
            }
            Update::Seq(_) => unreachable!("statements() flattens sequences"),
        }
    }
    out
}

/// Renders a full function declaration.
pub fn function_to_string(function: &Function) -> String {
    let mut out = String::new();
    let kind = if function.is_query() {
        "query"
    } else {
        "update"
    };
    let _ = write!(out, "{kind} {}(", function.name);
    for (i, param) in function.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", param.name, param.ty);
    }
    out.push_str(")\n");
    match &function.body {
        FunctionBody::Query(query) => {
            let _ = writeln!(out, "    {};", query_to_string(query));
        }
        FunctionBody::Update(update) => {
            for line in update_to_string(update).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    out
}

/// Renders a whole program.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for function in &program.functions {
        out.push_str(&function_to_string(function));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Operand, Param};
    use crate::schema::QualifiedAttr;
    use crate::value::{DataType, Value};

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    #[test]
    fn renders_select() {
        let q = Query::select(
            vec![qa("User", "name")],
            Pred::eq_value(qa("User", "uid"), Operand::param("id")),
            JoinChain::table("User"),
        );
        assert_eq!(
            query_to_string(&q),
            "SELECT User.name FROM User WHERE User.uid = id"
        );
    }

    #[test]
    fn renders_join_chain() {
        let chain = JoinChain::table("A").join(JoinChain::table("B"), qa("A", "x"), qa("B", "x"));
        assert_eq!(join_to_string(&chain), "A JOIN B ON A.x = B.x");
    }

    #[test]
    fn renders_insert_delete_update() {
        let seq = Update::Seq(vec![
            Update::Insert {
                join: JoinChain::table("User"),
                values: vec![(qa("User", "uid"), Operand::Value(Value::Int(1)))],
            },
            Update::Delete {
                tables: vec!["User".into()],
                join: JoinChain::table("User"),
                pred: Pred::eq_value(qa("User", "uid"), Operand::param("id")),
            },
            Update::UpdateAttr {
                join: JoinChain::table("User"),
                pred: Pred::True,
                attr: qa("User", "name"),
                value: Operand::Value(Value::str("x")),
            },
        ]);
        let text = update_to_string(&seq);
        assert!(text.contains("INSERT INTO User VALUES (User.uid: 1);"));
        assert!(text.contains("DELETE User FROM User WHERE User.uid = id;"));
        assert!(text.contains("UPDATE User SET User.name = \"x\";"));
    }

    #[test]
    fn renders_function_and_program() {
        let f = Function::query(
            "getUser",
            vec![Param::new("id", DataType::Int)],
            Query::select(
                vec![qa("User", "name")],
                Pred::eq_value(qa("User", "uid"), Operand::param("id")),
                JoinChain::table("User"),
            ),
        );
        let text = function_to_string(&f);
        assert!(text.starts_with("query getUser(id: int)"));
        let program = Program::new(vec![f]);
        assert!(program_to_string(&program).contains("SELECT User.name"));
    }

    #[test]
    fn renders_nested_predicates() {
        let p = Pred::Not(Box::new(
            Pred::eq_value(qa("T", "a"), Operand::Value(Value::Int(1)))
                .and(Pred::eq_value(qa("T", "b"), Operand::Value(Value::Int(2)))),
        ));
        let text = pred_to_string(&p);
        assert!(text.contains("NOT"));
        assert!(text.contains("AND"));
    }
}
