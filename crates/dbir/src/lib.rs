//! # dbir — database-program intermediate representation and engine
//!
//! This crate provides every substrate the Migrator synthesizer (crate
//! [`migrator`](https://example.org/migrator)) needs to reason about
//! database programs:
//!
//! * [`schema`] — relational schemas (tables, typed attributes, foreign keys),
//! * [`ast`] — the database-program language of the paper's Figure 5
//!   (query functions built from projection/selection/join, update functions
//!   built from insert/delete/update statements),
//! * [`value`] — runtime values and data types (string/binary payloads are
//!   interned, see [`intern`], so values are `Copy` and instance snapshots
//!   are allocation-light),
//! * [`instance`] — in-memory database instances (multisets of tuples),
//! * [`eval`] — an interpreter implementing the paper's semantics, including
//!   the insert-over-join shorthand with fresh unique identifiers,
//!   multi-table deletion and join updates,
//! * [`invocation`] — invocation sequences `(f1,σ1);…;(fk,σk)` and program
//!   execution from the empty instance,
//! * [`equiv`] — bounded equivalence checking and minimum-failing-input
//!   search by exhaustive testing in increasing sequence length,
//! * [`parser`] / [`pretty`] — a small concrete syntax mirroring the paper's
//!   examples (Figure 2) so programs can be written as text,
//! * [`builder`] — ergonomic Rust builders for schemas and programs.
//!
//! ## Quick example
//!
//! ```
//! use dbir::parser::parse_program;
//! use dbir::schema::Schema;
//!
//! let schema = Schema::parse(
//!     "Instructor(InstId: int, IName: string, IPic: binary)",
//! ).unwrap();
//! let program = parse_program(
//!     r#"
//!     update addInstructor(id: int, name: string, pic: binary)
//!         INSERT INTO Instructor VALUES (InstId: id, IName: name, IPic: pic);
//!     query getInstructor(id: int)
//!         SELECT IName, IPic FROM Instructor WHERE InstId = id;
//!     "#,
//!     &schema,
//! ).unwrap();
//! assert_eq!(program.functions.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod builder;
pub mod equiv;
pub mod error;
pub mod eval;
pub mod instance;
pub mod intern;
pub mod invocation;
pub mod parser;
pub mod pretty;
pub mod schema;
pub mod value;

pub use ast::{Function, FunctionBody, JoinChain, Param, Pred, Program, Query, Update};
pub use error::{Error, Result};
pub use instance::{Instance, Relation, Tuple};
pub use intern::{Blob, Sym};
pub use invocation::{Call, InvocationSequence};
pub use schema::{AttrName, ForeignKey, QualifiedAttr, Schema, TableDef, TableName};
pub use value::{DataType, Value};
