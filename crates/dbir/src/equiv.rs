//! Bounded equivalence checking and minimum-failing-input search.
//!
//! The paper checks candidate programs against the original by *bounded
//! exhaustive testing*: invocation sequences are generated from a small seed
//! set of constants in increasing order of length, and the first sequence on
//! which the two programs disagree is, by construction, a **minimum failing
//! input** (Section 5, "Generating minimum failing inputs").
//!
//! This module implements that procedure twice:
//!
//! * [`compare_programs`] — the production engine. It walks the tree of
//!   update-call prefixes depth-first with **in-place backtracking**: each
//!   side keeps one working [`Instance`], update calls execute directly on
//!   it while recording their inverses in an undo-log [`Journal`], and
//!   backtracking rolls the journal back instead of restoring a cloned
//!   snapshot. Each update call in the tree is thus executed **once**
//!   instead of once per sequence that extends it — `O(kᴸ)` update
//!   executions instead of the naive `O(L·kᴸ·|Q|)` — and, unlike the
//!   earlier snapshot-per-node engine, without deep-cloning the instance at
//!   every node. True snapshots survive only where a state must outlive the
//!   walk ([`PrefixCache`] entries, parallel stub-replay roots), and those
//!   are cheap because [`Instance`] is copy-on-write: cloning bumps
//!   per-table `Arc`s, and only the first mutation of a shared table pays a
//!   physical copy. Sequences are still enumerated depth-by-depth
//!   (iterative deepening), so the first counterexample remains a minimum
//!   failing input. Prefixes on which *both* programs have already failed
//!   are counted arithmetically and never descended — every sequence
//!   through them trivially agrees.
//! * [`compare_programs_naive`] — the original odometer that materializes and
//!   replays every sequence from scratch. It is retained as an executable
//!   reference semantics: a differential property test asserts the two
//!   engines produce identical [`EquivalenceReport`]s (same counterexample,
//!   same minimality, same `sequences_tested`) on random programs.
//!
//! On top of prefix sharing, a [`SourceOracle`] memoizes the *source*
//! program's outcome per invocation sequence. During synthesis the source is
//! fixed while many candidates are checked against it, so across a synthesis
//! run each sequence is interpreted on the source at most once. The oracle
//! is `Sync` (lock-striped outcome cache, `RwLock`-guarded call interning),
//! so that single at-most-once guarantee spans *all* worker threads.
//!
//! The prefix-shared walk itself is parallel: within one (query plan, depth)
//! subtree, the tree is partitioned into update-call *stub prefixes* whose
//! subtrees are searched by worker threads (budgeted by the in-tree
//! [`parpool`] shim). Determinism is preserved by construction — stub
//! subtrees are merged in enumeration order and the **lowest-index**
//! counterexample wins, so the reported counterexample and the
//! `sequences_tested` count are byte-identical to the single-threaded
//! trajectory at any thread count. When [`TestConfig::max_sequences`] is set
//! the engine stays sequential (the cap is a global budget that cannot be
//! split without changing what it measures), and tiny subtrees are searched
//! inline because fork-join overhead would dominate.
//!
//! **Undo-log correctness.** The in-place walk is equivalent to the
//! snapshot walk because (a) the journaled executor
//! (`exec_update_plan_journaled`) performs byte-for-byte the same
//! mutations, in the same order, with the same error occurrences, as the
//! plain executor it mirrors — it only *additionally* records inverses —
//! and (b) rolling the journal back to a mark restores the instance
//! exactly (see [`Journal`] for the inductive argument, including the
//! failing-statement case where partial mutations are journaled and undone
//! on the spot). A differential property test pins the in-place engine
//! against clone-and-restore on random programs: identical end instances
//! and identical [`EquivalenceReport`]s.
//!
//! Both engines apply a *relevance-closure* optimization: when testing a
//! particular query function, only update functions whose (transitive) table
//! footprint can influence that query in either program are considered.
//! Updates outside the closure cannot change the query's result in either
//! program, so omitting them preserves both soundness and minimality of the
//! search at a given bound.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use parpool::{CancelToken, StopCtx};

use crate::ast::{Function, FunctionBody, Program};
use crate::error::Error;
use crate::eval::{
    bind_args, exec_rows_plan, exec_update_plan_journaled, prepare_rows_plan, prepare_update_plan,
    Journal, RowsPlan, UpdatePlan,
};
use crate::instance::Instance;
use crate::invocation::{
    observe, resolve_query, resolve_update, Call, InvocationSequence, Outcome,
};
use crate::schema::{Schema, TableName};
use crate::value::{DataType, Value};

/// Configuration of the bounded testing procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct TestConfig {
    /// Maximum number of update calls preceding the final query.
    pub max_updates: usize,
    /// Seed constants used for integer parameters.
    pub int_seeds: Vec<i64>,
    /// Seed constants used for string parameters.
    pub string_seeds: Vec<String>,
    /// Seed constants used for binary parameters.
    pub binary_seeds: Vec<Vec<u8>>,
    /// Seed constants used for boolean parameters.
    pub bool_seeds: Vec<bool>,
    /// Seed constants used for identifier parameters. These are minted as
    /// [`Value::Uid`] payloads (see [`TestConfig::seeds`]), so they should
    /// cover the identifiers the evaluator generates for the first few
    /// inserts: `0, 1, …`. Unsigned on purpose: the evaluator's uid counter
    /// starts at zero, so a negative seed could never match anything.
    pub id_seeds: Vec<u64>,
    /// Maximum number of argument combinations explored per function
    /// (`None` for no cap).  Combinations are enumerated deterministically,
    /// so the cap keeps very wide functions tractable.
    pub max_arg_combinations: Option<usize>,
    /// If `true`, restrict the update functions considered for a given query
    /// to the relevance closure described in the module documentation.
    pub cluster_by_tables: bool,
    /// Hard cap on the total number of invocation sequences executed
    /// (`None` for no cap).
    pub max_sequences: Option<usize>,
}

impl Default for TestConfig {
    fn default() -> TestConfig {
        TestConfig {
            max_updates: 2,
            int_seeds: vec![0, 1],
            string_seeds: vec!["A".to_string(), "B".to_string()],
            binary_seeds: vec![vec![0xaa], vec![0xbb]],
            bool_seeds: vec![true, false],
            id_seeds: vec![0, 1],
            max_arg_combinations: Some(16),
            cluster_by_tables: true,
            max_sequences: None,
        }
    }
}

impl TestConfig {
    /// A configuration with a deeper bound (three preceding updates), used
    /// as the final verification pass. The argument-combination cap is kept
    /// small because the sequence space grows cubically in it.
    pub fn thorough() -> TestConfig {
        TestConfig {
            max_updates: 3,
            int_seeds: vec![0, 1, 2],
            max_arg_combinations: Some(8),
            ..TestConfig::default()
        }
    }

    /// A shallow configuration (a single preceding update) used for quick
    /// screening of obviously wrong candidates.
    pub fn quick() -> TestConfig {
        TestConfig {
            max_updates: 1,
            ..TestConfig::default()
        }
    }

    /// The seed values available for a parameter of type `ty`.
    ///
    /// Identifier parameters are seeded as [`Value::Uid`], **not**
    /// [`Value::Int`]: the evaluator mints `Value::Uid(n)` for surrogate
    /// keys, and equality across variants is strict
    /// (`Value::Int(n) != Value::Uid(n)`). Seeding `Int` here would make
    /// every Id-keyed lookup a guaranteed miss, so candidates disagreeing
    /// only on Id-keyed queries would be indistinguishable — an unsound
    /// acceptance. This method is the single place where the testing side
    /// of the Uid/Int equality domain is decided.
    pub fn seeds(&self, ty: DataType) -> Vec<Value> {
        match ty {
            DataType::Int => self.int_seeds.iter().map(|&v| Value::Int(v)).collect(),
            DataType::String => self.string_seeds.iter().map(Value::str).collect(),
            DataType::Binary => self.binary_seeds.iter().map(Value::bytes).collect(),
            DataType::Bool => self.bool_seeds.iter().map(|&b| Value::Bool(b)).collect(),
            DataType::Id => self.id_seeds.iter().map(|&v| Value::Uid(v)).collect(),
        }
    }

    /// All argument combinations (Cartesian product of per-parameter seeds)
    /// for `function`, capped at [`TestConfig::max_arg_combinations`].
    pub fn arg_combinations(&self, function: &Function) -> Vec<Vec<Value>> {
        let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
        for param in &function.params {
            let seeds = self.seeds(param.ty);
            let mut next = Vec::with_capacity(combos.len() * seeds.len().max(1));
            for combo in &combos {
                for seed in &seeds {
                    let mut extended = combo.clone();
                    extended.push(*seed);
                    next.push(extended);
                }
            }
            combos = next;
            if let Some(cap) = self.max_arg_combinations {
                if combos.len() > cap {
                    combos.truncate(cap);
                }
            }
        }
        combos
    }
}

/// The result of a bounded equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// `true` if no failing input was found within the bound.
    pub equivalent: bool,
    /// The minimum failing input, if one was found.
    pub counterexample: Option<InvocationSequence>,
    /// Number of invocation sequences executed.
    pub sequences_tested: usize,
    /// `true` if the search enumerated **every** sequence within the
    /// configured depth bound. When `equivalent` is `true` but this is
    /// `false`, the check stopped at [`TestConfig::max_sequences`] and the
    /// verdict is *optimistic*, not evidence of equivalence up to the bound.
    /// Always `false` when a counterexample was found (the search stops
    /// early by design).
    pub bound_exhausted: bool,
    /// `true` if the check was abandoned because the caller's
    /// [`CancelToken`] fired (see [`compare_with_oracle_cancel`]). A
    /// cancelled report carries **no verdict**: `equivalent` is `false` and
    /// `counterexample` is `None`, and `sequences_tested` reflects only the
    /// work done before the interruption. Always `false` for the
    /// non-cancellable entry points.
    pub cancelled: bool,
}

/// Per-check phase accounting for one bounded equivalence check, filled by
/// [`compare_with_oracle_profiled`].
///
/// The profile travels *next to* the [`EquivalenceReport`], never inside it:
/// the report is compared structurally by the engine-differential tests and
/// must stay free of wall-clock noise.
///
/// Determinism: `plans_compiled` is identical at any thread count (plan
/// compilation happens once per check, before the parallel walk).
/// `snapshots_taken` and `snapshot_bytes_copied` are **scheduling-dependent**
/// on the uncached path — parallel stub tasks replay their stub prefixes
/// from the empty roots, so higher thread counts take strictly more
/// snapshots. `undo_frames` and `undo_ops_rolled_back` are deterministic
/// whenever a [`PrefixCache`] is supplied (every production path): the
/// walk's per-root work is a pure function of the candidate, and the
/// index-ordered merge absorbs exactly the roots the sequential walk would
/// have visited. On the uncached stub-partitioned path they inherit the
/// snapshot counters' scheduling dependence. All `*_time` fields are
/// wall-clock. Only thread-count-independent counters may be compared
/// across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckProfile {
    /// Time spent compiling update/query plans for the check.
    pub plan_compile_time: Duration,
    /// Number of update/query plan compilations performed.
    pub plans_compiled: u64,
    /// Time spent walking the prefix-shared search tree (includes nested
    /// oracle interpretation and snapshot copying).
    pub dfs_time: Duration,
    /// Time spent cloning instance snapshots inside the walk. COW clones
    /// only — the in-place walk takes no per-node clones.
    pub snapshot_time: Duration,
    /// Number of instance snapshots cloned (scheduling-dependent on the
    /// uncached path). Snapshots are COW-cheap: the physical cost is in
    /// `snapshot_bytes_copied`, not in this count.
    pub snapshots_taken: u64,
    /// Heap bytes **physically copied** for snapshots: per-clone pointer
    /// overhead plus the copy-on-write table copies triggered by mutating a
    /// shared instance. (Before the COW representation this field counted
    /// the full logical heap of every clone.)
    pub snapshot_bytes_copied: u64,
    /// Update-prefix states served from the cross-candidate [`PrefixCache`]
    /// instead of re-executed. Deterministic at any thread count: every
    /// lookup happens on the check's calling thread, between parallel
    /// sections (see [`PrefixCache`]).
    pub prefix_cache_hits: u64,
    /// Update calls executed in place with their inverses journaled (one
    /// frame per journaled execution). Deterministic at any thread count
    /// when a [`PrefixCache`] is supplied.
    pub undo_frames: u64,
    /// Row-level inverse operations replayed while backtracking (rows
    /// un-pushed, rows re-inserted, cells restored). Deterministic under
    /// the same condition as `undo_frames`.
    pub undo_ops_rolled_back: u64,
}

impl CheckProfile {
    /// Adds another profile's times and counters into this one.
    pub fn merge(&mut self, other: &CheckProfile) {
        self.plan_compile_time += other.plan_compile_time;
        self.plans_compiled += other.plans_compiled;
        self.dfs_time += other.dfs_time;
        self.snapshot_time += other.snapshot_time;
        self.snapshots_taken += other.snapshots_taken;
        self.snapshot_bytes_copied += other.snapshot_bytes_copied;
        self.prefix_cache_hits += other.prefix_cache_hits;
        self.undo_frames += other.undo_frames;
        self.undo_ops_rolled_back += other.undo_ops_rolled_back;
    }
}

/// Locally accumulated snapshot and undo-log accounting for one walk: the
/// physical-copy high-water mark plus clone/journal counters, folded into
/// the caller's [`CheckProfile`] (and the process-wide peak) once per
/// subtree instead of per node. Clones are clocked only when `timed` is
/// set, so unprofiled checks pay no clock reads on the hot path.
#[derive(Debug, Clone, Copy, Default)]
struct SnapStats {
    peak: usize,
    taken: u64,
    bytes: u64,
    nanos: u64,
    frames: u64,
    undone: u64,
    timed: bool,
}

impl SnapStats {
    fn fresh(&self) -> SnapStats {
        SnapStats {
            timed: self.timed,
            ..SnapStats::default()
        }
    }

    fn absorb(&mut self, other: &SnapStats) {
        self.peak = self.peak.max(other.peak);
        self.taken += other.taken;
        self.bytes += other.bytes;
        self.nanos += other.nanos;
        self.frames += other.frames;
        self.undone += other.undone;
    }
}

/// A minimal FNV-1a hasher for the oracle's interned-id keys.
///
/// The cache is probed once per tested sequence — millions of times per
/// check — with keys that are a handful of `u32`s, exactly the shape FNV is
/// good at. (DoS-resistant hashing is pointless here: keys are internal
/// interned ids, not attacker-controlled input.)
#[derive(Debug, Clone)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// One stripe of the oracle's outcome cache: interned call-id sequence →
/// shared outcome.
type OutcomeShard = Mutex<HashMap<Box<[u32]>, Arc<Outcome>, FnvBuild>>;

/// Memoizes the source program's observable outcome per invocation sequence.
///
/// During sketch completion the source program is fixed while many candidate
/// programs are checked against it, and every check replays largely the same
/// invocation sequences on the source side. Threading one oracle through all
/// checks of a synthesis run means each sequence is interpreted on the
/// source at most once; subsequent candidates only pay for their own (target)
/// side.
///
/// Internally every distinct [`Call`] is interned to a `u32`, and the cache
/// key is the sequence of interned ids. A sequence — the interpreter being
/// deterministic — completely determines the outcome for a fixed program
/// and schema, so it is sound to share one oracle across different
/// [`TestConfig`]s (e.g. the testing and verification passes).
///
/// The oracle is `Sync`: the outcome cache is striped across
/// `SourceOracle::SHARDS` mutexes keyed by an FNV hash of the interned
/// sequence, call interning sits behind a read-mostly `RwLock`, and cached
/// outcomes are handed out as `Arc`s so the hot comparison path never clones
/// row sets. Workers racing on the same uncached sequence may compute it
/// twice (the computation happens outside the shard lock on purpose — it
/// interprets a program); both arrive at the same deterministic outcome, so
/// the duplicate work is bounded waste, never unsoundness.
#[derive(Debug)]
pub struct SourceOracle<'p> {
    program: &'p Program,
    schema: &'p Schema,
    /// Interning table: one id per distinct call ever seen.
    call_ids: RwLock<HashMap<Call, u32>>,
    /// Outcomes keyed by interned call-id sequences (updates ++ query),
    /// striped to keep shard-lock hold times at hash-probe length.
    shards: Vec<OutcomeShard>,
    hits: AtomicUsize,
    entries: AtomicUsize,
    capacity: usize,
    /// Wall-clock nanoseconds spent interpreting the source program on
    /// cache misses, across all workers. Includes duplicate computations by
    /// racing workers, so this is total CPU spent in the oracle, not a span
    /// of wall time.
    compute_nanos: AtomicU64,
    computes: AtomicUsize,
}

impl<'p> SourceOracle<'p> {
    /// Default cap on cached sequences; beyond it lookups still work but new
    /// outcomes are recomputed instead of stored.
    const DEFAULT_CAPACITY: usize = 4_000_000;

    /// Number of cache stripes. Comfortably above any realistic worker
    /// count, so two workers rarely contend on one shard lock.
    const SHARDS: usize = 32;

    /// Creates an oracle for `program` over `schema` with an empty cache.
    pub fn new(program: &'p Program, schema: &'p Schema) -> SourceOracle<'p> {
        SourceOracle {
            program,
            schema,
            call_ids: RwLock::new(HashMap::new()),
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            hits: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            capacity: Self::DEFAULT_CAPACITY,
            compute_nanos: AtomicU64::new(0),
            computes: AtomicUsize::new(0),
        }
    }

    /// The source program the oracle answers for.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The schema the source program runs over.
    pub fn schema(&self) -> &'p Schema {
        self.schema
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total CPU time spent interpreting the source program on cache
    /// misses, summed across all workers (racing workers may compute the
    /// same sequence twice; both computations are counted).
    pub fn compute_time(&self) -> Duration {
        Duration::from_nanos(self.compute_nanos.load(Ordering::Relaxed))
    }

    /// Number of source interpretations performed (cache misses, including
    /// duplicates by racing workers).
    pub fn computes(&self) -> usize {
        self.computes.load(Ordering::Relaxed)
    }

    /// Number of distinct sequences currently cached.
    pub fn cached_sequences(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("oracle shard poisoned").len())
            .sum()
    }

    /// The interned id of `call`, assigning a fresh one on first sight.
    fn intern(&self, call: &Call) -> u32 {
        if let Some(&id) = self
            .call_ids
            .read()
            .expect("oracle intern table poisoned")
            .get(call)
        {
            return id;
        }
        let mut map = self.call_ids.write().expect("oracle intern table poisoned");
        let next = map.len();
        *map.entry(call.clone())
            .or_insert_with(|| u32::try_from(next).expect("more than u32::MAX distinct calls"))
    }

    /// The shard index for an interned key.
    fn shard_of(key: &[u32]) -> usize {
        use std::hash::Hasher as _;
        let mut hasher = FnvHasher::default();
        for &id in key {
            hasher.write(&id.to_le_bytes());
        }
        (hasher.finish() as usize) % Self::SHARDS
    }

    /// The source outcome for `sequence`, interpreting the source program at
    /// most once per distinct sequence.
    pub fn observe(&self, sequence: &InvocationSequence) -> Outcome {
        let mut key = Vec::with_capacity(sequence.updates.len() + 1);
        for call in &sequence.updates {
            key.push(self.intern(call));
        }
        key.push(self.intern(&sequence.query));
        (*self.outcome(&key, || observe(self.program, self.schema, sequence))).clone()
    }

    /// The cached outcome for the interned key, computing (and caching) it
    /// with `compute` on a miss.
    fn outcome(&self, key: &[u32], compute: impl FnOnce() -> Outcome) -> Arc<Outcome> {
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(hit) = shard.lock().expect("oracle shard poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Interpret outside the lock: this is the expensive part, and
        // holding the shard across it would serialize unrelated misses.
        // The clock reads cost two syscalls per *miss*, against a full
        // program interpretation — noise.
        let compute_start = Instant::now();
        let outcome = Arc::new(compute());
        self.compute_nanos.fetch_add(
            u64::try_from(compute_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.computes.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock().expect("oracle shard poisoned");
        match guard.get(key) {
            // A racing worker finished the same sequence first; adopt its
            // entry so every caller shares one allocation.
            Some(existing) => Arc::clone(existing),
            None => {
                if self.entries.load(Ordering::Relaxed) < self.capacity {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    guard.insert(key.to_vec().into_boxed_slice(), Arc::clone(&outcome));
                }
                outcome
            }
        }
    }
}

/// Per-query execution plan shared by both engines: the query calls to
/// observe and the update calls eligible to precede them.
struct QueryPlan {
    query_calls: Vec<Call>,
    update_calls: Vec<Call>,
}

/// Builds one [`QueryPlan`] per source query function.
fn build_plans(source: &Program, target: &Program, config: &TestConfig) -> Vec<QueryPlan> {
    let mut plans = Vec::new();
    for query in source.queries() {
        let query_calls: Vec<Call> = config
            .arg_combinations(query)
            .into_iter()
            .map(|args| Call::new(query.name.clone(), args))
            .collect();
        let updates: Vec<&Function> = if config.cluster_by_tables {
            relevant_updates(query, source, target)
        } else {
            source.updates().collect()
        };
        let update_calls: Vec<Call> = updates
            .iter()
            .flat_map(|u| {
                config
                    .arg_combinations(u)
                    .into_iter()
                    .map(|args| Call::new(u.name.clone(), args))
            })
            .collect();
        plans.push(QueryPlan {
            query_calls,
            update_calls,
        });
    }
    plans
}

/// Computes the relevance closure for one query function: the set of update
/// functions whose table footprint (in either program) can transitively
/// influence the query's tables.
fn relevant_updates<'p>(
    query: &Function,
    source: &'p Program,
    target: &Program,
) -> Vec<&'p Function> {
    let target_query_tables: Vec<TableName> = target
        .function(&query.name)
        .map(|f| f.tables())
        .unwrap_or_default();
    let mut reachable: BTreeSet<TableName> = query.tables().into_iter().collect();
    reachable.extend(target_query_tables);

    let footprint = |name: &str| -> BTreeSet<TableName> {
        let mut tables = BTreeSet::new();
        if let Some(f) = source.function(name) {
            tables.extend(f.tables());
        }
        if let Some(f) = target.function(name) {
            tables.extend(f.tables());
        }
        tables
    };

    let update_names: Vec<String> = source.updates().map(|f| f.name.clone()).collect();
    let mut selected: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for name in &update_names {
            if selected.contains(name) {
                continue;
            }
            let tables = footprint(name);
            if tables.iter().any(|t| reachable.contains(t)) {
                selected.insert(name.clone());
                for table in tables {
                    reachable.insert(table);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    source
        .updates()
        .filter(|f| selected.contains(&f.name))
        .collect()
}

/// Searches for a **minimum failing input** distinguishing `source` (over
/// `source_schema`) from `target` (over `target_schema`).
///
/// Sequences are enumerated in increasing number of update calls, so the
/// first counterexample returned has minimal length among all sequences
/// expressible with the configured seed constants.
///
/// Returns `None` if the two programs agree on every sequence within the
/// bound.
pub fn find_failing_input(
    source: &Program,
    source_schema: &Schema,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> Option<InvocationSequence> {
    compare_programs(source, source_schema, target, target_schema, config).counterexample
}

/// Runs the bounded equivalence check and reports the outcome together with
/// the number of sequences executed.
///
/// This is the prefix-shared engine (see the module documentation); it
/// produces reports identical to [`compare_programs_naive`].
pub fn compare_programs(
    source: &Program,
    source_schema: &Schema,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> EquivalenceReport {
    let oracle = SourceOracle::new(source, source_schema);
    compare_with_oracle(&oracle, target, target_schema, config)
}

/// High-water mark (bytes) of the largest single **physical copy** performed
/// for a snapshot, process-wide: either a COW clone's pointer overhead or
/// one copy-on-write table copy. A cheap allocation proxy the benchmark
/// harness records next to wall times: structural sharing shrinks exactly
/// this number, so regressions in snapshot cost show up even when wall time
/// is noisy. (Before the COW representation this tracked the full logical
/// heap of the largest clone — shared rows are no longer double-counted.)
static SNAPSHOT_PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The largest single physical snapshot copy (bytes) since the last
/// [`reset_snapshot_peak`].
pub fn snapshot_peak_bytes() -> usize {
    SNAPSHOT_PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the snapshot high-water mark (call between benchmark runs).
pub fn reset_snapshot_peak() {
    SNAPSHOT_PEAK_BYTES.store(0, Ordering::Relaxed);
}

/// The execution state of one program after some update prefix: either a
/// live snapshot (instance plus the evaluator's fresh-identifier counter) or
/// the error the prefix failed with. A failed prefix stays failed for every
/// extension, mirroring how a straight-line replay stops at the first error.
#[derive(Debug, Clone)]
enum ExecState {
    Live(Instance, u64),
    Failed(Error),
}

/// Longest update-prefix length kept by [`PrefixCache`]. Level-1 and
/// level-2 prefixes cover the dominant share of re-executed update calls
/// (fanout `k` gives `k + k²` cacheable nodes per subtree) while keeping the
/// cache's footprint quadratic, not exponential, in the fanout.
const PREFIX_CACHE_DEPTH: usize = 2;

/// Hard cap on cached prefix states. Insertions beyond it are skipped (the
/// computed state is still returned), which keeps eviction deterministic —
/// entries are only ever added, in a deterministic order, never dropped.
const PREFIX_CACHE_CAPACITY: usize = 1 << 17;

/// Cross-candidate cache of update-prefix execution states, keyed by the
/// *semantic identity* of the prefix — the oracle-interned update calls
/// paired with the interned bodies of the functions they invoke — rather
/// than by candidate.
///
/// During sketch completion the bounded-testing engine re-executes the same
/// short update prefixes for every candidate: the source program never
/// changes, and successive candidates usually differ in only a few update
/// functions. One `PrefixCache` per sketch run lets every check reuse the
/// executed states of prefixes whose calls *and* function bodies it has
/// seen before — typically the entire source side after the first
/// candidate, plus every target prefix not touching a changed hole —
/// instead of re-running them from the empty instance.
///
/// All access is sequential: the cache is handed down as `&mut` and
/// consulted only on the check's calling thread, between parallel sections
/// (see [`compare_with_oracle_profiled`]). [`PrefixCache::hits`] is
/// therefore byte-identical at any thread count, unlike the
/// scheduling-dependent snapshot counters.
#[derive(Debug, Default)]
pub struct PrefixCache {
    /// Interned function bodies: pretty-printed text → id. Two functions
    /// share an id exactly when they are structurally identical, so a body
    /// id in a prefix key is an exact fingerprint, not a lossy hash.
    bodies: HashMap<String, u32, FnvBuild>,
    /// Prefix key → the state after executing that prefix from the empty
    /// instance.
    states: HashMap<PrefixKey, Arc<ExecState>, FnvBuild>,
    hits: u64,
}

/// A prefix-cache key: `(is_target_side, [(call id, body id), ..])` — the
/// candidate-invariant semantics of one update prefix.
type PrefixKey = (bool, Box<[(u32, u32)]>);

impl PrefixCache {
    /// An empty cache.
    pub fn new() -> PrefixCache {
        PrefixCache::default()
    }

    /// Update-prefix states served from the cache so far, across all checks
    /// that shared this cache. Deterministic at any thread count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of distinct prefix states currently cached.
    pub fn cached_states(&self) -> usize {
        self.states.len()
    }

    /// The interned id of `name`'s body in `program`. A program with no
    /// such function gets a reserved per-name id — such calls fail
    /// identically for every candidate, so sharing their entries is sound.
    fn intern_function(&mut self, program: &Program, name: &str) -> u32 {
        let text = match program.function(name) {
            Some(function) => crate::pretty::function_to_string(function),
            None => format!("<missing: {name}>"),
        };
        let next = self.bodies.len();
        *self.bodies.entry(text).or_insert_with(|| {
            u32::try_from(next).expect("more than u32::MAX distinct function bodies")
        })
    }

    /// The cached state for `key`, computing (and, capacity permitting,
    /// caching) it on a miss.
    fn resolve(&mut self, key: PrefixKey, compute: impl FnOnce() -> ExecState) -> Arc<ExecState> {
        if let Some(state) = self.states.get(&key) {
            self.hits += 1;
            return Arc::clone(state);
        }
        let state = Arc::new(compute());
        if self.states.len() < PREFIX_CACHE_CAPACITY {
            self.states.insert(key, Arc::clone(&state));
        }
        state
    }
}

/// The cache key of an update-call prefix on one side: each step pairs the
/// oracle-interned call with the interned body of the function it invokes,
/// so the key changes exactly when the prefix's semantics can.
fn prefix_key(
    target_side: bool,
    path: &[usize],
    update_ids: &[u32],
    body_ids: &[u32],
) -> PrefixKey {
    (
        target_side,
        path.iter().map(|&i| (update_ids[i], body_ids[i])).collect(),
    )
}

/// Result of walking one (plan, depth) subtree.
enum Search {
    /// Every sequence in the subtree was covered and agreed.
    Exhausted,
    /// The programs disagreed on this sequence.
    Counterexample(InvocationSequence),
    /// The [`TestConfig::max_sequences`] budget ran out mid-subtree.
    CapHit,
    /// The caller's [`CancelToken`] fired mid-subtree; the walk unwound
    /// without a verdict.
    Cancelled,
    /// A parallel stub task bailed out because a lower-index stub already
    /// holds a stopping result (a counterexample or a token cancellation).
    /// Never observed by the index-ordered merge: an abort implies a
    /// stopping result at a strictly lower index, so the merge returns
    /// before reaching an aborted slot.
    Aborted,
}

/// One plan's calls, pre-resolved and pre-bound against one program.
///
/// Function resolution, query/update kind checks, argument binding and
/// update-plan compilation are deterministic per (program, call), so doing
/// them once per check — instead of once per tested sequence — preserves
/// behaviour exactly: a call that would fail to resolve, bind or compile
/// simply fails every sequence it appears in, with an error a straight-line
/// replay would also report on every one of those sequences.
enum PreparedUpdate {
    /// A compiled update plan: structural resolution and operand evaluation
    /// already done, execution touches rows only (see [`UpdatePlan`]).
    Ready(UpdatePlan),
    Failed(Error),
}

enum PreparedQuery {
    /// A compiled rows-plan: structural resolution already done, execution
    /// touches rows only (see [`RowsPlan`]).
    Ready(RowsPlan),
    Failed(Error),
}

struct PreparedPlan {
    /// Interned oracle ids, parallel to `QueryPlan::update_calls`.
    update_ids: Vec<u32>,
    /// Interned oracle ids, parallel to `QueryPlan::query_calls`.
    query_ids: Vec<u32>,
    /// Source-side interned function-body ids, parallel to
    /// `QueryPlan::update_calls`. Empty unless a [`PrefixCache`] is in use.
    src_body_ids: Vec<u32>,
    /// Target-side interned function-body ids, parallel to
    /// `QueryPlan::update_calls`. Empty unless a [`PrefixCache`] is in use.
    tgt_body_ids: Vec<u32>,
    src_updates: Vec<PreparedUpdate>,
    tgt_updates: Vec<PreparedUpdate>,
    src_queries: Vec<PreparedQuery>,
    tgt_queries: Vec<PreparedQuery>,
}

fn prepare_update(program: &Program, schema: &Schema, call: &Call) -> PreparedUpdate {
    let function = match resolve_update(program, &call.function) {
        Ok(function) => function,
        Err(err) => return PreparedUpdate::Failed(err),
    };
    let env = match bind_args(function, &call.args) {
        Ok(env) => env,
        Err(err) => return PreparedUpdate::Failed(err),
    };
    let update = match &function.body {
        FunctionBody::Update(update) => update,
        FunctionBody::Query(_) => unreachable!("resolve_update rejects queries"),
    };
    match prepare_update_plan(schema, update, &env) {
        Ok(plan) => PreparedUpdate::Ready(plan),
        Err(err) => PreparedUpdate::Failed(err),
    }
}

fn prepare_query(program: &Program, schema: &Schema, call: &Call) -> PreparedQuery {
    let function = match resolve_query(program, &call.function) {
        Ok(function) => function,
        Err(err) => return PreparedQuery::Failed(err),
    };
    let env = match bind_args(function, &call.args) {
        Ok(env) => env,
        Err(err) => return PreparedQuery::Failed(err),
    };
    let query = match &function.body {
        FunctionBody::Query(query) => query,
        FunctionBody::Update(_) => unreachable!("resolve_query rejects updates"),
    };
    match prepare_rows_plan(schema, query, &env) {
        Ok((plan, _header)) => PreparedQuery::Ready(plan),
        Err(err) => PreparedQuery::Failed(err),
    }
}

/// Like [`compare_programs`], but reads (and fills) `oracle` for the source
/// side, so repeated checks against the same source — the shape of every
/// synthesis run — interpret each sequence on the source at most once.
pub fn compare_with_oracle(
    oracle: &SourceOracle<'_>,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> EquivalenceReport {
    compare_with_oracle_cancel(oracle, target, target_schema, config, None)
}

/// Like [`compare_with_oracle`], but polls `cancel` at safe points of the
/// walk (between subtrees and every few hundred sequences inside one) and
/// returns a report with [`EquivalenceReport::cancelled`] set when the token
/// fires. With `cancel` absent (or a token that never fires) the behaviour —
/// including every reported count — is identical to
/// [`compare_with_oracle`].
pub fn compare_with_oracle_cancel(
    oracle: &SourceOracle<'_>,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
    cancel: Option<&CancelToken>,
) -> EquivalenceReport {
    compare_with_oracle_profiled(oracle, target, target_schema, config, cancel, None, None)
}

/// Like [`compare_with_oracle_cancel`], but additionally fills `profile`
/// with per-phase accounting (plan compilation, tree walk, snapshot
/// copying) when one is supplied, and shares executed update-prefix states
/// across checks through `cache` when one is supplied. With both absent the
/// check takes no extra clock reads and the behaviour — including every
/// reported count — is identical to [`compare_with_oracle_cancel`]; with a
/// cache, *what* is reported (counterexample, `sequences_tested`,
/// `bound_exhausted`) is still identical — only which update executions are
/// skipped changes.
pub fn compare_with_oracle_profiled(
    oracle: &SourceOracle<'_>,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
    cancel: Option<&CancelToken>,
    mut profile: Option<&mut CheckProfile>,
    mut cache: Option<&mut PrefixCache>,
) -> EquivalenceReport {
    let timed = profile.is_some();
    let compile_start = timed.then(Instant::now);
    let source = oracle.program();
    let source_schema = oracle.schema();
    let plans = build_plans(source, target, config);
    let mut prepared: Vec<PreparedPlan> = plans
        .iter()
        .map(|plan| PreparedPlan {
            update_ids: plan.update_calls.iter().map(|c| oracle.intern(c)).collect(),
            query_ids: plan.query_calls.iter().map(|c| oracle.intern(c)).collect(),
            src_body_ids: Vec::new(),
            tgt_body_ids: Vec::new(),
            src_updates: plan
                .update_calls
                .iter()
                .map(|c| prepare_update(source, source_schema, c))
                .collect(),
            tgt_updates: plan
                .update_calls
                .iter()
                .map(|c| prepare_update(target, target_schema, c))
                .collect(),
            src_queries: plan
                .query_calls
                .iter()
                .map(|c| prepare_query(source, source_schema, c))
                .collect(),
            tgt_queries: plan
                .query_calls
                .iter()
                .map(|c| prepare_query(target, target_schema, c))
                .collect(),
        })
        .collect();
    if let (Some(profile), Some(start)) = (profile.as_deref_mut(), compile_start) {
        profile.plan_compile_time += start.elapsed();
        profile.plans_compiled += plans
            .iter()
            .map(|p| 2 * (p.update_calls.len() + p.query_calls.len()) as u64)
            .sum::<u64>();
    }
    // Prefix-cache keys pair each call with its function's body id, so the
    // body interning must see this check's target program (candidates swap
    // update-function bodies between checks).
    if let Some(cache) = cache.as_deref_mut() {
        for (plan, prep) in plans.iter().zip(&mut prepared) {
            prep.src_body_ids = plan
                .update_calls
                .iter()
                .map(|c| cache.intern_function(source, &c.function))
                .collect();
            prep.tgt_body_ids = plan
                .update_calls
                .iter()
                .map(|c| cache.intern_function(target, &c.function))
                .collect();
        }
    }
    let hits_before = cache.as_deref().map(PrefixCache::hits);
    let mut snap = SnapStats {
        timed,
        ..SnapStats::default()
    };
    let dfs_start = timed.then(Instant::now);

    // Iterative deepening: depth ℓ re-runs the update prefixes of depths
    // < ℓ, but the extra work is a geometric series dominated by the last
    // level, and it keeps memory at O(L) snapshots while preserving the
    // increasing-length enumeration that makes counterexamples minimal.
    // (Plan, length) pairs are searched in order with a barrier between
    // them — parallelism lives *inside* each pair — so a counterexample in
    // an earlier pair is found before a later pair is ever entered, exactly
    // as in the sequential enumeration.
    // (An immediately-invoked closure, so the early returns of the search
    // still flow through the profile finalization below.)
    let mut walk = || -> EquivalenceReport {
        let mut sequences_tested = 0usize;
        let cancelled_report = |sequences_tested: usize| EquivalenceReport {
            equivalent: false,
            counterexample: None,
            sequences_tested,
            bound_exhausted: false,
            cancelled: true,
        };
        for length in 0..=config.max_updates {
            for (plan, prep) in plans.iter().zip(&prepared) {
                if length > 0 && plan.update_calls.is_empty() {
                    continue;
                }
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return cancelled_report(sequences_tested);
                }
                match search_plan(
                    oracle,
                    target_schema,
                    plan,
                    prep,
                    config,
                    length,
                    &mut sequences_tested,
                    cancel,
                    &mut snap,
                    cache.as_deref_mut(),
                ) {
                    Search::Exhausted => {}
                    Search::Counterexample(sequence) => {
                        return EquivalenceReport {
                            equivalent: false,
                            counterexample: Some(sequence),
                            sequences_tested,
                            bound_exhausted: false,
                            cancelled: false,
                        }
                    }
                    Search::CapHit => {
                        return EquivalenceReport {
                            equivalent: true,
                            counterexample: None,
                            sequences_tested,
                            bound_exhausted: false,
                            cancelled: false,
                        }
                    }
                    Search::Cancelled => return cancelled_report(sequences_tested),
                    Search::Aborted => unreachable!("merge stops before aborted stubs"),
                }
            }
        }

        EquivalenceReport {
            equivalent: true,
            counterexample: None,
            sequences_tested,
            bound_exhausted: true,
            cancelled: false,
        }
    };
    let report = walk();

    if let Some(profile) = profile {
        if let Some(start) = dfs_start {
            profile.dfs_time += start.elapsed();
        }
        profile.snapshot_time += Duration::from_nanos(snap.nanos);
        profile.snapshots_taken += snap.taken;
        profile.snapshot_bytes_copied += snap.bytes;
        profile.undo_frames += snap.frames;
        profile.undo_ops_rolled_back += snap.undone;
        if let (Some(cache), Some(before)) = (cache.as_deref(), hits_before) {
            profile.prefix_cache_hits += cache.hits() - before;
        }
    }
    report
}

/// Smallest estimated leaf count for which a (plan, length) subtree is
/// worth fork-join overhead; below it the subtree is searched inline.
const PARALLEL_LEAF_THRESHOLD: u128 = 4096;

/// Searches one (plan, length) subtree, in parallel when profitable.
///
/// The parallel split partitions the subtree by update-call *stubs* — the
/// first `d` levels of the prefix, enumerated in lexicographic order, which
/// is exactly the order the sequential DFS visits them. Each stub task
/// replays its stub from the empty roots (re-executing at most `d` updates
/// that the sequential walk would have shared — bounded waste, chosen so
/// there are enough tasks to load the thread budget) and then runs the
/// ordinary prefix-shared walk below it with a private sequence counter.
/// Merging task results in stub order and stopping at the first
/// counterexample reproduces the sequential outcome *and* count exactly:
/// stubs before the winner contribute their full subtree counts, the winner
/// contributes its count up to the counterexample, and later stubs — which
/// the sequential walk never reached — are discarded unread.
#[allow(clippy::too_many_arguments)]
fn search_plan(
    oracle: &SourceOracle<'_>,
    target_schema: &Schema,
    plan: &QueryPlan,
    prep: &PreparedPlan,
    config: &TestConfig,
    length: usize,
    sequences_tested: &mut usize,
    token: Option<&CancelToken>,
    snap: &mut SnapStats,
    cache: Option<&mut PrefixCache>,
) -> Search {
    if let Some(cache) = cache {
        return search_plan_prefix_cached(
            oracle,
            target_schema,
            plan,
            prep,
            config,
            length,
            sequences_tested,
            token,
            snap,
            cache,
        );
    }
    let source_schema = oracle.schema();
    let fanout = plan.update_calls.len();
    let workers = parpool::thread_limit();
    let leaves_estimate = (fanout as u128)
        .saturating_pow(length as u32)
        .saturating_mul(plan.query_calls.len() as u128);
    // The sequence cap is a single global budget: splitting it across
    // workers would change which sequence exhausts it, so capped checks run
    // sequentially (they are bounded by construction anyway).
    let parallel = config.max_sequences.is_none()
        && length >= 1
        && fanout >= 2
        && workers > 1
        && leaves_estimate >= PARALLEL_LEAF_THRESHOLD;

    if !parallel {
        let mut dfs = Dfs {
            oracle,
            plan,
            prep,
            cap: config.max_sequences,
            sequences_tested,
            key: Vec::with_capacity(length + 1),
            path: Vec::with_capacity(length),
            cancel: None,
            token,
            polls: 0,
            snap: snap.fresh(),
            src: WorkState::fresh(source_schema),
            tgt: WorkState::fresh(target_schema),
        };
        let result = dfs.walk(length);
        fold_snapshot_peak(dfs.snap.peak);
        snap.absorb(&dfs.snap);
        return result;
    }

    // Deepen the stub until there are enough tasks to load the budget (or
    // we run out of levels), but never so many that per-stub replay
    // overhead dominates.
    let mut stub_depth = 1usize;
    while stub_depth < length
        && (fanout as u128).saturating_pow(stub_depth as u32) < 4 * workers as u128
    {
        stub_depth += 1;
    }
    while stub_depth > 1 && (fanout as u128).saturating_pow(stub_depth as u32) > 4096 {
        stub_depth -= 1;
    }
    let stub_count = fanout.pow(stub_depth as u32);
    let stubs: Vec<usize> = (0..stub_count).collect();
    let timed = snap.timed;

    let results = parpool::par_map_stop(
        &stubs,
        |task_index, &stub, ctx| {
            // Decode the stub number into update-call indices, most
            // significant digit first, so numeric stub order is the
            // lexicographic (sequential DFS) order.
            let mut digits = vec![0usize; stub_depth];
            let mut rem = stub;
            for slot in digits.iter_mut().rev() {
                *slot = rem % fanout;
                rem /= fanout;
            }
            let mut src = ExecState::Live(Instance::empty(source_schema), 0);
            let mut tgt = ExecState::Live(Instance::empty(target_schema), 0);
            let mut key = Vec::with_capacity(length + 1);
            let mut path = Vec::with_capacity(length);
            let mut stub_snap = SnapStats {
                timed,
                ..SnapStats::default()
            };
            for &i in &digits {
                src = apply_update(&prep.src_updates[i], &src, &mut stub_snap);
                tgt = apply_update(&prep.tgt_updates[i], &tgt, &mut stub_snap);
                key.push(prep.update_ids[i]);
                path.push(i);
            }
            let src_work = WorkState::from_snapshot(&src, source_schema);
            let tgt_work = WorkState::from_snapshot(&tgt, target_schema);
            let mut count = 0usize;
            let mut dfs = Dfs {
                oracle,
                plan,
                prep,
                cap: None,
                sequences_tested: &mut count,
                key,
                path,
                cancel: Some((ctx, task_index)),
                token,
                polls: 0,
                snap: stub_snap,
                src: src_work,
                tgt: tgt_work,
            };
            let search = dfs.walk(length - stub_depth);
            fold_snapshot_peak(dfs.snap.peak);
            let stub_snap = dfs.snap;
            drop(dfs); // release the borrow of `count`
            (search, count, stub_snap)
        },
        // A token cancellation is a stopping result too: it makes the whole
        // check moot, so still-queued stubs are skipped instead of started.
        |(search, _, _)| matches!(search, Search::Counterexample(_) | Search::Cancelled),
    );

    // Index-ordered merge: byte-identical to the sequential left-to-right
    // walk with early exit (see the parpool stop contract).
    for result in results {
        let Some((search, count, stub_snap)) = result else {
            break;
        };
        *sequences_tested += count;
        snap.absorb(&stub_snap);
        match search {
            Search::Exhausted => {}
            Search::Counterexample(sequence) => return Search::Counterexample(sequence),
            Search::CapHit => unreachable!("stub tasks run uncapped"),
            Search::Cancelled => return Search::Cancelled,
            Search::Aborted => unreachable!("merge stops before aborted stubs"),
        }
    }
    Search::Exhausted
}

/// [`search_plan`] with cross-candidate prefix sharing.
///
/// Before walking, the first `min(length, PREFIX_CACHE_DEPTH)` levels of
/// the update-call tree are resolved *sequentially, in lexicographic
/// order* through the [`PrefixCache`]: each prefix's executed source and
/// target states are either reused from an earlier candidate (or an
/// earlier depth of this one) or computed once and published. Candidates
/// that differ only in later update-function bodies — the common case in
/// CEGIS, where one hole flips per iteration — hit on every shared prefix.
///
/// All cache access happens here, on the calling thread, at a sequential
/// point *before* any parallel split; the walks below the resolved roots
/// never touch the cache. Hit counts are therefore a pure function of the
/// candidate sequence — deterministic at any thread count — and the cache
/// needs no synchronization. The walk itself mirrors [`search_plan`]
/// exactly: sequential per-root DFS in root order (sharing the one global
/// sequence budget), or `par_map_stop` over the roots with the same
/// index-ordered merge, so every reported count is identical to the
/// uncached search.
#[allow(clippy::too_many_arguments)]
fn search_plan_prefix_cached(
    oracle: &SourceOracle<'_>,
    target_schema: &Schema,
    plan: &QueryPlan,
    prep: &PreparedPlan,
    config: &TestConfig,
    length: usize,
    sequences_tested: &mut usize,
    token: Option<&CancelToken>,
    snap: &mut SnapStats,
    cache: &mut PrefixCache,
) -> Search {
    let source_schema = oracle.schema();
    let fanout = plan.update_calls.len();
    let base = length.min(PREFIX_CACHE_DEPTH);

    // Resolve the first `base` levels through the cache, level by level in
    // lexicographic order. Misses execute the update once and account the
    // clone in a local SnapStats folded below, exactly like a walk subtree.
    let mut resolve_snap = snap.fresh();
    let empty_path: Vec<usize> = Vec::new();
    let src_root = Arc::new(ExecState::Live(Instance::empty(source_schema), 0));
    let tgt_root = Arc::new(ExecState::Live(Instance::empty(target_schema), 0));
    let mut roots: Vec<(Vec<usize>, Arc<ExecState>, Arc<ExecState>)> =
        vec![(empty_path, src_root, tgt_root)];
    for _ in 0..base {
        let mut next = Vec::with_capacity(roots.len() * fanout);
        for (path, src, tgt) in &roots {
            for i in 0..fanout {
                let mut child_path = path.clone();
                child_path.push(i);
                let src_child = cache.resolve(
                    prefix_key(false, &child_path, &prep.update_ids, &prep.src_body_ids),
                    || apply_update(&prep.src_updates[i], src, &mut resolve_snap),
                );
                let tgt_child = cache.resolve(
                    prefix_key(true, &child_path, &prep.update_ids, &prep.tgt_body_ids),
                    || apply_update(&prep.tgt_updates[i], tgt, &mut resolve_snap),
                );
                next.push((child_path, src_child, tgt_child));
            }
        }
        roots = next;
    }
    fold_snapshot_peak(resolve_snap.peak);
    snap.absorb(&resolve_snap);

    let workers = parpool::thread_limit();
    let leaves_estimate = (fanout as u128)
        .saturating_pow(length as u32)
        .saturating_mul(plan.query_calls.len() as u128);
    // Same predicate as the uncached path: capped checks stay sequential so
    // the single global budget is spent in enumeration order.
    let parallel = config.max_sequences.is_none()
        && length >= 1
        && fanout >= 2
        && workers > 1
        && leaves_estimate >= PARALLEL_LEAF_THRESHOLD;

    if !parallel {
        for (path, src, tgt) in &roots {
            let root_snap = snap.fresh();
            let src_work = WorkState::from_snapshot(src, source_schema);
            let tgt_work = WorkState::from_snapshot(tgt, target_schema);
            let mut dfs = Dfs {
                oracle,
                plan,
                prep,
                cap: config.max_sequences,
                sequences_tested: &mut *sequences_tested,
                key: {
                    let mut key = Vec::with_capacity(length + 1);
                    key.extend(path.iter().map(|&i| prep.update_ids[i]));
                    key
                },
                path: path.clone(),
                cancel: None,
                token,
                polls: 0,
                snap: root_snap,
                src: src_work,
                tgt: tgt_work,
            };
            let result = dfs.walk(length - base);
            fold_snapshot_peak(dfs.snap.peak);
            let dfs_snap = dfs.snap;
            drop(dfs);
            snap.absorb(&dfs_snap);
            if !matches!(result, Search::Exhausted) {
                return result;
            }
        }
        return Search::Exhausted;
    }

    let timed = snap.timed;
    let results = parpool::par_map_stop(
        &roots,
        |task_index, (path, src, tgt), ctx| {
            let root_snap = SnapStats {
                timed,
                ..SnapStats::default()
            };
            let src_work = WorkState::from_snapshot(src, source_schema);
            let tgt_work = WorkState::from_snapshot(tgt, target_schema);
            let mut count = 0usize;
            let mut dfs = Dfs {
                oracle,
                plan,
                prep,
                cap: None,
                sequences_tested: &mut count,
                key: {
                    let mut key = Vec::with_capacity(length + 1);
                    key.extend(path.iter().map(|&i| prep.update_ids[i]));
                    key
                },
                path: path.clone(),
                cancel: Some((ctx, task_index)),
                token,
                polls: 0,
                snap: root_snap,
                src: src_work,
                tgt: tgt_work,
            };
            let search = dfs.walk(length - base);
            fold_snapshot_peak(dfs.snap.peak);
            let root_snap = dfs.snap;
            drop(dfs); // release the borrow of `count`
            (search, count, root_snap)
        },
        |(search, _, _)| matches!(search, Search::Counterexample(_) | Search::Cancelled),
    );

    // Index-ordered merge: identical to the stub merge in [`search_plan`].
    for result in results {
        let Some((search, count, root_snap)) = result else {
            break;
        };
        *sequences_tested += count;
        snap.absorb(&root_snap);
        match search {
            Search::Exhausted => {}
            Search::Counterexample(sequence) => return Search::Counterexample(sequence),
            Search::CapHit => unreachable!("root tasks run uncapped"),
            Search::Cancelled => return Search::Cancelled,
            Search::Aborted => unreachable!("merge stops before aborted roots"),
        }
    }
    Search::Exhausted
}

/// The walk's working instance: a borrow of the (shared) root snapshot
/// until the first mutation, an owned COW clone after. Read-only subtrees
/// — every root at the cache depth of a depth-`base` walk, which dominate
/// wide plans — therefore copy *nothing*, not even the table map.
enum WorkInstance<'s> {
    /// Still reading the root snapshot directly — nothing copied yet.
    Borrowed(&'s Instance),
    /// Detached by a mutation (or built fresh): the walk's own instance.
    Owned(Instance),
}

impl WorkInstance<'_> {
    /// The instance to evaluate queries against.
    fn get(&self) -> &Instance {
        match self {
            WorkInstance::Borrowed(instance) => instance,
            WorkInstance::Owned(instance) => instance,
        }
    }

    /// The mutable working instance, detaching from a borrowed root
    /// snapshot on first use. The detach is the walk's one per-root
    /// snapshot: a COW-cheap clone (per-table pointer bumps) accounted at
    /// its physical cost, the clone overhead; any table the walk then
    /// mutates pays its copy through the journal's COW tracking.
    fn owned(&mut self, snap: &mut SnapStats) -> &mut Instance {
        if let WorkInstance::Borrowed(shared) = *self {
            let clone_start = snap.timed.then(Instant::now);
            let working = shared.clone();
            if let Some(start) = clone_start {
                snap.nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            let overhead = working.clone_overhead_bytes();
            snap.taken += 1;
            snap.bytes += overhead as u64;
            snap.peak = snap.peak.max(overhead);
            *self = WorkInstance::Owned(working);
        }
        match self {
            WorkInstance::Owned(instance) => instance,
            WorkInstance::Borrowed(_) => unreachable!("just detached"),
        }
    }
}

/// One side's mutable working state for the in-place walk: the instance
/// updates execute on, the evaluator's fresh-identifier counter, the undo
/// log that makes every execution reversible, and the sticky failure of the
/// current prefix (mirroring [`ExecState::Failed`]).
struct WorkState<'s> {
    instance: WorkInstance<'s>,
    uid: u64,
    journal: Journal,
    failed: Option<Error>,
}

impl<'s> WorkState<'s> {
    /// A live state over the empty instance — the walk's root.
    fn fresh(schema: &Schema) -> WorkState<'s> {
        WorkState {
            instance: WorkInstance::Owned(Instance::empty(schema)),
            uid: 0,
            journal: Journal::new(),
            failed: None,
        }
    }

    /// A working view of a (possibly shared) snapshot. Nothing is copied
    /// here: the instance stays borrowed until the walk's first mutation
    /// detaches it (see [`WorkInstance::owned`]), so roots whose subtree
    /// only evaluates queries never snapshot at all.
    fn from_snapshot(state: &'s ExecState, schema: &Schema) -> WorkState<'s> {
        match state {
            ExecState::Failed(err) => WorkState {
                instance: WorkInstance::Owned(Instance::empty(schema)),
                uid: 0,
                journal: Journal::new(),
                failed: Some(err.clone()),
            },
            ExecState::Live(instance, uid) => WorkState {
                instance: WorkInstance::Borrowed(instance),
                uid: *uid,
                journal: Journal::new(),
                failed: None,
            },
        }
    }
}

/// What [`apply_in_place`] hands back so [`revert_frame`] can undo exactly
/// one update call: the journal mark to roll back to, the uid counter to
/// restore, and whether this call is the one that set the sticky failure.
struct Frame {
    mark: usize,
    prev_uid: u64,
    set_failure: bool,
}

/// Depth-first walker over the update-call tree of one query plan.
struct Dfs<'a, 'p> {
    oracle: &'a SourceOracle<'p>,
    plan: &'a QueryPlan,
    prep: &'a PreparedPlan,
    cap: Option<usize>,
    sequences_tested: &'a mut usize,
    /// Interned ids of the current update prefix (oracle cache key minus
    /// the final query id).
    key: Vec<u32>,
    /// Indices into `plan.update_calls` for the current prefix, used to
    /// materialize the [`InvocationSequence`] only when a counterexample is
    /// actually found.
    path: Vec<usize>,
    /// Set for parallel stub tasks: polled so a task whose result can no
    /// longer win the index-ordered merge stops burning its subtree.
    cancel: Option<(&'a StopCtx, usize)>,
    /// The caller's cancellation/deadline token, polled every
    /// [`TOKEN_POLL_INTERVAL`] visited nodes.
    token: Option<&'a CancelToken>,
    /// Nodes visited since the walk started, for token-poll pacing.
    polls: usize,
    /// Local snapshot/undo accounting, folded into the global metric and
    /// the caller's profile by the walk's caller.
    snap: SnapStats,
    /// The source program's working state, mutated and rolled back in place.
    src: WorkState<'a>,
    /// The target program's working state, mutated and rolled back in place.
    tgt: WorkState<'a>,
}

/// How many tree nodes a walker visits between two polls of the caller's
/// [`CancelToken`]. Each poll with a deadline set costs a clock read, so the
/// interval trades responsiveness (a few hundred nodes ≪ 1ms of work)
/// against per-node overhead. The first node always polls, so even a tiny
/// walk notices an already-expired deadline.
const TOKEN_POLL_INTERVAL: usize = 256;

impl Dfs<'_, '_> {
    /// Returns `true` if this walker belongs to a parallel stub task that a
    /// lower-index counterexample has made irrelevant.
    fn cancelled(&self) -> bool {
        match self.cancel {
            Some((ctx, index)) => ctx.cancelled(index),
            None => false,
        }
    }

    /// Paced poll of the caller's [`CancelToken`]: checks the token on the
    /// first call and every [`TOKEN_POLL_INTERVAL`] calls after that.
    fn interrupted(&mut self) -> bool {
        let Some(token) = self.token else {
            return false;
        };
        let poll_now = self.polls.is_multiple_of(TOKEN_POLL_INTERVAL);
        self.polls += 1;
        poll_now && token.is_cancelled()
    }

    /// Visits every sequence with exactly `depth` more update calls below
    /// the current working states. Children are visited in `update_calls`
    /// order and queries in `query_calls` order, which makes the leaf
    /// enumeration order identical to the naive odometer's.
    ///
    /// Updates execute in place; every child edge is reverted before the
    /// loop advances **or** a non-exhausted result propagates, so the
    /// working states are back at this node's state on every exit path.
    fn walk(&mut self, depth: usize) -> Search {
        if self.cancelled() {
            return Search::Aborted;
        }
        if self.interrupted() {
            return Search::Cancelled;
        }
        if depth == 0 {
            return self.leaves();
        }
        if self.src.failed.is_some() && self.tgt.failed.is_some() {
            // Every sequence through this node fails on both sides and
            // therefore agrees: account for the subtree without walking it.
            return self.skip_agreed_subtree(depth);
        }
        let prep = self.prep;
        for i in 0..self.plan.update_calls.len() {
            let src_frame = apply_in_place(&prep.src_updates[i], &mut self.src, &mut self.snap);
            let tgt_frame = apply_in_place(&prep.tgt_updates[i], &mut self.tgt, &mut self.snap);
            self.key.push(prep.update_ids[i]);
            self.path.push(i);
            let result = self.walk(depth - 1);
            self.path.pop();
            self.key.pop();
            revert_frame(tgt_frame, &mut self.tgt, &mut self.snap);
            revert_frame(src_frame, &mut self.src, &mut self.snap);
            if !matches!(result, Search::Exhausted) {
                return result;
            }
        }
        Search::Exhausted
    }

    /// Runs (and counts) all query calls against the two working states.
    fn leaves(&mut self) -> Search {
        let prep = self.prep;
        for (qi, &query_id) in prep.query_ids.iter().enumerate() {
            if let Some(cap) = self.cap {
                if *self.sequences_tested >= cap {
                    return Search::CapHit;
                }
            }
            *self.sequences_tested += 1;
            if self.src.failed.is_some() && self.tgt.failed.is_some() {
                // Both prefixes already failed: the outcomes agree whatever
                // the query is, no need to even materialize the sequence.
                continue;
            }
            let tgt_outcome = work_outcome(&prep.tgt_queries[qi], &self.tgt);
            self.key.push(query_id);
            let src_outcome = self
                .oracle
                .outcome(&self.key, || work_outcome(&prep.src_queries[qi], &self.src));
            let agree = outcomes_agree(&src_outcome, &tgt_outcome);
            self.key.pop();
            if !agree {
                // Materialize the failing sequence only now, on the cold
                // path: the hot path never clones calls.
                let updates: Vec<Call> = self
                    .path
                    .iter()
                    .map(|&i| self.plan.update_calls[i].clone())
                    .collect();
                let sequence = InvocationSequence::new(updates, self.plan.query_calls[qi].clone());
                return Search::Counterexample(sequence);
            }
        }
        Search::Exhausted
    }

    /// Accounts for a subtree whose sequences all trivially agree, honoring
    /// the sequence budget exactly as if they had been enumerated one by one.
    fn skip_agreed_subtree(&mut self, depth: usize) -> Search {
        let fanout = self.plan.update_calls.len() as u128;
        let leaves = fanout.saturating_pow(depth as u32);
        let sequences = leaves.saturating_mul(self.plan.query_calls.len() as u128);
        if let Some(cap) = self.cap {
            let remaining = cap.saturating_sub(*self.sequences_tested) as u128;
            if sequences > remaining {
                *self.sequences_tested = cap;
                return Search::CapHit;
            }
        }
        *self.sequences_tested += sequences as usize;
        Search::Exhausted
    }
}

/// Executes one (pre-resolved, pre-bound) update call **in place** on a
/// working state, journaling its inverses, and returns the [`Frame`] that
/// [`revert_frame`] undoes it with.
///
/// Mirrors the old clone-based `apply_update` exactly: an already-failed
/// state stays failed (no-op frame), a preparation failure sets the sticky
/// failure, and an execution failure leaves the state failed with the same
/// error a full replay would report — its partial mutations are rolled
/// back on the spot, so the instance under a failed state is byte-identical
/// to the parent's (the old engine discarded the mutated clone; queries
/// never read it either way because the failure gates them).
fn apply_in_place(
    prepared: &PreparedUpdate,
    state: &mut WorkState<'_>,
    snap: &mut SnapStats,
) -> Frame {
    let frame = Frame {
        mark: state.journal.mark(),
        prev_uid: state.uid,
        set_failure: false,
    };
    if state.failed.is_some() {
        return frame;
    }
    let plan = match prepared {
        PreparedUpdate::Ready(plan) => plan,
        PreparedUpdate::Failed(err) => {
            state.failed = Some(err.clone());
            return Frame {
                set_failure: true,
                ..frame
            };
        }
    };
    snap.frames += 1;
    let instance = state.instance.owned(snap);
    let result = exec_update_plan_journaled(plan, instance, state.uid, &mut state.journal);
    let (cow_bytes, cow_peak) = state.journal.take_copy_stats();
    snap.bytes += cow_bytes;
    snap.peak = snap.peak.max(cow_peak);
    match result {
        Ok(next_uid) => {
            state.uid = next_uid;
            frame
        }
        Err(err) => {
            let undone = state
                .journal
                .rollback_to(frame.mark, state.instance.owned(snap));
            snap.undone += undone;
            state.failed = Some(err);
            Frame {
                set_failure: true,
                ..frame
            }
        }
    }
}

/// Undoes exactly the update call that produced `frame`: clears the sticky
/// failure if this call set it, restores the uid counter, and rolls the
/// journal back to the frame's mark.
fn revert_frame(frame: Frame, state: &mut WorkState<'_>, snap: &mut SnapStats) {
    if frame.set_failure {
        state.failed = None;
    }
    state.uid = frame.prev_uid;
    // The guard keeps no-op frames (failed prefixes) from detaching a
    // still-borrowed root; when there are ops to pop, the mutation that
    // recorded them already owns the instance.
    if state.journal.mark() > frame.mark {
        let undone = state
            .journal
            .rollback_to(frame.mark, state.instance.owned(snap));
        snap.undone += undone;
    }
}

/// Extends a shared execution state by one update call, COW-cloning the
/// instance so the parent snapshot survives. Used only where a state must
/// outlive the walk — [`PrefixCache`] resolution and parallel stub replay;
/// the walk itself mutates in place via [`apply_in_place`].
///
/// `snap` is the caller's *local* snapshot accounting: sampling a global
/// atomic here would put a shared read-modify-write on every node of every
/// worker's walk, so callers accumulate locally and fold into
/// [`SNAPSHOT_PEAK_BYTES`] (and the check's [`CheckProfile`]) once per
/// subtree (see [`fold_snapshot_peak`]). Accounting is physical: the
/// clone's pointer overhead plus the copy-on-write table copies the
/// execution triggers (tracked through a scratch journal whose undo ops are
/// discarded — nothing here ever rolls back).
fn apply_update(prepared: &PreparedUpdate, state: &ExecState, snap: &mut SnapStats) -> ExecState {
    let (instance, uid) = match state {
        ExecState::Failed(_) => return state.clone(),
        ExecState::Live(instance, uid) => (instance, *uid),
    };
    let plan = match prepared {
        PreparedUpdate::Ready(plan) => plan,
        PreparedUpdate::Failed(err) => return ExecState::Failed(err.clone()),
    };
    let clone_start = snap.timed.then(Instant::now);
    let mut next = instance.clone();
    if let Some(start) = clone_start {
        snap.nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    let overhead = next.clone_overhead_bytes();
    snap.taken += 1;
    snap.bytes += overhead as u64;
    snap.peak = snap.peak.max(overhead);
    let mut scratch = Journal::new();
    let result = exec_update_plan_journaled(plan, &mut next, uid, &mut scratch);
    let (cow_bytes, cow_peak) = scratch.take_copy_stats();
    snap.bytes += cow_bytes;
    snap.peak = snap.peak.max(cow_peak);
    match result {
        Ok(next_uid) => ExecState::Live(next, next_uid),
        Err(err) => ExecState::Failed(err),
    }
}

/// Folds a locally accumulated snapshot high-water mark into the
/// process-wide metric (one atomic RMW per subtree instead of per node).
fn fold_snapshot_peak(local: usize) {
    if local > 0 {
        SNAPSHOT_PEAK_BYTES.fetch_max(local, Ordering::Relaxed);
    }
}

/// The observable outcome of running one compiled query call against a
/// working state, matching what a full replay of the sequence would observe
/// (queries never mint identifiers, so the state's uid counter is moot).
fn work_outcome(prepared: &PreparedQuery, state: &WorkState<'_>) -> Outcome {
    if let Some(err) = &state.failed {
        return Outcome::Failed(err.clone());
    }
    let plan = match prepared {
        PreparedQuery::Ready(plan) => plan,
        PreparedQuery::Failed(err) => return Outcome::Failed(err.clone()),
    };
    match exec_rows_plan(plan, state.instance.get()) {
        Ok(rows) => {
            let mut rows = rows.into_owned();
            rows.sort();
            Outcome::Rows(rows)
        }
        Err(err) => Outcome::Failed(err),
    }
}

/// The original straight-line engine: materializes every invocation sequence
/// and replays it from the empty instance.
///
/// Retained as the executable reference semantics for the prefix-shared
/// engine — `O(L·kᴸ·|Q|)` update executions, so use [`compare_programs`]
/// anywhere performance matters. The differential property test in
/// `tests/` asserts both engines return identical reports.
pub fn compare_programs_naive(
    source: &Program,
    source_schema: &Schema,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> EquivalenceReport {
    let plans = build_plans(source, target, config);
    let mut sequences_tested = 0usize;

    // Enumerate sequences in increasing number of preceding updates so the
    // first difference found is a minimum failing input.
    for length in 0..=config.max_updates {
        for plan in &plans {
            let mut prefix_indices = vec![0usize; length];
            loop {
                // Materialize the current prefix of update calls.
                if length == 0 || !plan.update_calls.is_empty() {
                    let updates: Vec<Call> = prefix_indices
                        .iter()
                        .map(|&i| plan.update_calls[i].clone())
                        .collect();
                    for query_call in &plan.query_calls {
                        if let Some(cap) = config.max_sequences {
                            if sequences_tested >= cap {
                                return EquivalenceReport {
                                    equivalent: true,
                                    counterexample: None,
                                    sequences_tested,
                                    bound_exhausted: false,
                                    cancelled: false,
                                };
                            }
                        }
                        sequences_tested += 1;
                        let sequence = InvocationSequence::new(updates.clone(), query_call.clone());
                        let lhs = observe(source, source_schema, &sequence);
                        let rhs = observe(target, target_schema, &sequence);
                        if !outcomes_agree(&lhs, &rhs) {
                            return EquivalenceReport {
                                equivalent: false,
                                counterexample: Some(sequence),
                                sequences_tested,
                                bound_exhausted: false,
                                cancelled: false,
                            };
                        }
                    }
                }
                // Advance the prefix odometer.
                if length == 0 || plan.update_calls.is_empty() {
                    break;
                }
                let mut pos = length;
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    prefix_indices[pos] += 1;
                    if prefix_indices[pos] < plan.update_calls.len() {
                        break;
                    }
                    prefix_indices[pos] = 0;
                    if pos == 0 {
                        pos = usize::MAX;
                        break;
                    }
                }
                if pos == usize::MAX {
                    break;
                }
            }
        }
    }

    EquivalenceReport {
        equivalent: true,
        counterexample: None,
        sequences_tested,
        bound_exhausted: true,
        cancelled: false,
    }
}

/// Two outcomes agree when both succeed with the same canonical rows, or
/// both fail. (The particular error does not matter for equivalence; what
/// matters is that neither program produces an observable result the other
/// cannot.)
fn outcomes_agree(lhs: &Outcome, rhs: &Outcome) -> bool {
    match (lhs, rhs) {
        (Outcome::Rows(a), Outcome::Rows(b)) => a == b,
        (Outcome::Failed(_), Outcome::Failed(_)) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, JoinChain, Operand, Param, Pred, Query, Update};
    use crate::schema::QualifiedAttr;

    fn schema() -> Schema {
        Schema::parse("User(uid: int, name: string)").unwrap()
    }

    fn make_program(project_name: bool) -> Program {
        let projected = if project_name {
            QualifiedAttr::new("User", "name")
        } else {
            QualifiedAttr::new("User", "uid")
        };
        Program::new(vec![
            Function::update(
                "addUser",
                vec![
                    Param::new("uid", DataType::Int),
                    Param::new("name", DataType::String),
                ],
                Update::Insert {
                    join: JoinChain::table("User"),
                    values: vec![
                        (QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                        (QualifiedAttr::new("User", "name"), Operand::param("name")),
                    ],
                },
            ),
            Function::query(
                "getUser",
                vec![Param::new("uid", DataType::Int)],
                Query::select(
                    vec![projected],
                    Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                    JoinChain::table("User"),
                ),
            ),
        ])
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let p = make_program(true);
        let report = compare_programs(&p, &schema(), &p.clone(), &schema(), &TestConfig::default());
        assert!(report.equivalent);
        assert!(report.counterexample.is_none());
        assert!(report.sequences_tested > 0);
        assert!(report.bound_exhausted);
    }

    #[test]
    fn differing_projection_is_detected_with_minimal_input() {
        let p = make_program(true);
        let q = make_program(false);
        let cex = find_failing_input(&p, &schema(), &q, &schema(), &TestConfig::default())
            .expect("programs differ");
        // The minimal counterexample needs exactly one insert before the query.
        assert_eq!(cex.updates.len(), 1);
        assert_eq!(cex.updates[0].function, "addUser");
        assert_eq!(cex.query.function, "getUser");
    }

    #[test]
    fn empty_prefix_differences_are_found_first() {
        // A program whose query returns a constant row even on the empty
        // database differs with a zero-update counterexample.
        let p = make_program(true);
        let mut q = make_program(true);
        // Replace the query with one that filters on nothing (returns all
        // rows) — on the empty instance both are empty, so instead change the
        // predicate to `True` and seed via the insert; the difference then
        // still requires one insert. To exercise the zero-length case we make
        // the target query reference a never-matching filter, which agrees on
        // the empty database; so assert the search still starts at length 0.
        if let crate::ast::FunctionBody::Query(query) = &mut q.functions[1].body {
            *query = Query::select(
                vec![QualifiedAttr::new("User", "name")],
                Pred::False,
                JoinChain::table("User"),
            );
        }
        let cex = find_failing_input(&p, &schema(), &q, &schema(), &TestConfig::default())
            .expect("programs differ");
        assert_eq!(cex.updates.len(), 1, "smallest distinguishing input");
    }

    #[test]
    fn clustering_does_not_miss_counterexamples() {
        let p = make_program(true);
        let q = make_program(false);
        let mut config = TestConfig {
            cluster_by_tables: false,
            ..TestConfig::default()
        };
        let unclustered = find_failing_input(&p, &schema(), &q, &schema(), &config);
        config.cluster_by_tables = true;
        let clustered = find_failing_input(&p, &schema(), &q, &schema(), &config);
        assert_eq!(unclustered.is_some(), clustered.is_some());
    }

    /// The prefix cache must change *what work is skipped*, never *what is
    /// reported*: every candidate's report (verdict, counterexample,
    /// `sequences_tested`, `bound_exhausted`) is byte-identical with and
    /// without the cache, hits accrue once candidates share prefixes, and
    /// the deterministic `prefix_cache_hits` counter lands in the profile.
    #[test]
    fn prefix_cache_preserves_reports_and_hits_across_candidates() {
        let source = make_program(true);
        let schema = schema();
        let oracle = SourceOracle::new(&source, &schema);
        let config = TestConfig::default();
        // A CEGIS-like candidate stream: a wrong candidate, the right one,
        // then the wrong one again (same bodies as the first — pure reuse).
        let candidates = [make_program(false), make_program(true), make_program(false)];

        let mut cache = PrefixCache::new();
        let mut profile = CheckProfile::default();
        for candidate in &candidates {
            let cached = compare_with_oracle_profiled(
                &oracle,
                candidate,
                &schema,
                &config,
                None,
                Some(&mut profile),
                Some(&mut cache),
            );
            let plain = compare_with_oracle_cancel(&oracle, candidate, &schema, &config, None);
            assert_eq!(cached.equivalent, plain.equivalent);
            assert_eq!(cached.counterexample, plain.counterexample);
            assert_eq!(cached.sequences_tested, plain.sequences_tested);
            assert_eq!(cached.bound_exhausted, plain.bound_exhausted);
        }

        // The source program never changes, so every source-side prefix
        // after the first candidate is a hit; candidate 3 reuses candidate
        // 1's target prefixes too.
        assert!(cache.hits() > 0, "shared prefixes must produce hits");
        assert!(cache.cached_states() > 0);
        assert_eq!(
            profile.prefix_cache_hits,
            cache.hits(),
            "profile must account exactly the hits of its checks"
        );
    }

    #[test]
    fn arg_combinations_respect_cap() {
        let config = TestConfig {
            max_arg_combinations: Some(3),
            ..TestConfig::default()
        };
        let f = Function::update(
            "wide",
            vec![
                Param::new("a", DataType::Int),
                Param::new("b", DataType::Int),
                Param::new("c", DataType::Int),
            ],
            Update::Seq(vec![]),
        );
        assert_eq!(config.arg_combinations(&f).len(), 3);
    }

    #[test]
    fn seeds_cover_all_types() {
        let config = TestConfig::default();
        for ty in [
            DataType::Int,
            DataType::String,
            DataType::Binary,
            DataType::Bool,
            DataType::Id,
        ] {
            assert!(!config.seeds(ty).is_empty());
        }
    }

    #[test]
    fn id_seeds_are_minted_as_uids() {
        let config = TestConfig::default();
        let seeds = config.seeds(DataType::Id);
        assert!(seeds.iter().all(|s| matches!(s, Value::Uid(_))));
        assert!(seeds.contains(&Value::Uid(0)), "{seeds:?}");
    }

    /// The Id-seed regression of the issue: two candidates that differ only
    /// on an Id-keyed query. With `Int` seeds every lookup against the
    /// evaluator-minted `Uid` misses, so both candidates answer every test
    /// query with zero rows and the checker wrongly equates them. `Uid`
    /// seeds hit the stored identifier and tell them apart.
    #[test]
    fn id_keyed_queries_distinguish_candidates() {
        let schema = Schema::parse("Picture(PicId: id, Pic: binary)").unwrap();
        let add = Function::update(
            "addPic",
            vec![Param::new("pic", DataType::Binary)],
            Update::Insert {
                join: JoinChain::table("Picture"),
                values: vec![(QualifiedAttr::new("Picture", "Pic"), Operand::param("pic"))],
            },
        );
        let honest_query = Function::query(
            "getPic",
            vec![Param::new("pid", DataType::Id)],
            Query::select(
                vec![QualifiedAttr::new("Picture", "Pic")],
                Pred::eq_value(
                    QualifiedAttr::new("Picture", "PicId"),
                    Operand::param("pid"),
                ),
                JoinChain::table("Picture"),
            ),
        );
        let blind_query = Function::query(
            "getPic",
            vec![Param::new("pid", DataType::Id)],
            Query::select(
                vec![QualifiedAttr::new("Picture", "Pic")],
                Pred::False,
                JoinChain::table("Picture"),
            ),
        );
        let honest = Program::new(vec![add.clone(), honest_query]);
        let blind = Program::new(vec![add, blind_query]);

        // The broken seeding (Ints for Id parameters) cannot tell the two
        // programs apart: no seeded argument ever equals a stored Uid.
        let broken = |ty: DataType, config: &TestConfig| -> Vec<Value> {
            match ty {
                DataType::Id => config
                    .id_seeds
                    .iter()
                    .map(|&v| Value::Int(v as i64))
                    .collect(),
                other => config.seeds(other),
            }
        };
        let config = TestConfig::default();
        for args in config.arg_combinations(honest.function("getPic").unwrap()) {
            // Sanity: the fixed seeding produces Uids for the Id parameter...
            assert!(matches!(args[0], Value::Uid(_)));
        }
        assert!(
            broken(DataType::Id, &config)
                .iter()
                .all(|s| matches!(s, Value::Int(_))),
            "the broken seeding this test guards against used Int seeds"
        );

        // ...and with them the checker distinguishes the candidates.
        let report = compare_programs(&honest, &schema, &blind, &schema, &config);
        assert!(
            !report.equivalent,
            "Uid seeds must expose the Id-keyed difference"
        );
        let cex = report.counterexample.unwrap();
        assert_eq!(cex.updates.len(), 1, "one insert suffices");
        assert_eq!(cex.query.function, "getPic");
    }

    #[test]
    fn max_sequences_cap_short_circuits() {
        let p = make_program(true);
        let q = make_program(false);
        let config = TestConfig {
            max_sequences: Some(1),
            ..TestConfig::default()
        };
        let report = compare_programs(&p, &schema(), &q, &schema(), &config);
        assert!(report.sequences_tested <= 1);
    }

    #[test]
    fn hitting_the_cap_is_not_reported_as_an_exhausted_bound() {
        let p = make_program(true);
        let config = TestConfig {
            max_sequences: Some(1),
            ..TestConfig::default()
        };
        let capped = compare_programs(&p, &schema(), &p.clone(), &schema(), &config);
        assert!(capped.equivalent);
        assert!(
            !capped.bound_exhausted,
            "a capped run must not masquerade as an exhausted bound"
        );
        let full = compare_programs(&p, &schema(), &p.clone(), &schema(), &TestConfig::default());
        assert!(full.equivalent);
        assert!(full.bound_exhausted);
        // The naive reference agrees on both.
        let naive_capped = compare_programs_naive(&p, &schema(), &p.clone(), &schema(), &config);
        assert_eq!(capped, naive_capped);
    }

    #[test]
    fn prefix_shared_engine_matches_naive_reference() {
        for (lhs, rhs) in [(true, true), (true, false)] {
            let p = make_program(lhs);
            let q = make_program(rhs);
            for config in [
                TestConfig::default(),
                TestConfig::quick(),
                TestConfig {
                    max_sequences: Some(7),
                    ..TestConfig::default()
                },
                TestConfig {
                    cluster_by_tables: false,
                    ..TestConfig::default()
                },
            ] {
                let fast = compare_programs(&p, &schema(), &q, &schema(), &config);
                let slow = compare_programs_naive(&p, &schema(), &q, &schema(), &config);
                assert_eq!(fast, slow, "engines diverged under {config:?}");
            }
        }
    }

    #[test]
    fn oracle_caches_source_outcomes_across_checks() {
        let p = make_program(true);
        let q = make_program(false);
        let source_schema = schema();
        let oracle = SourceOracle::new(&p, &source_schema);
        let config = TestConfig::default();
        let first = compare_with_oracle(&oracle, &q, &source_schema, &config);
        assert_eq!(oracle.hits(), 0, "cold cache cannot hit");
        assert!(oracle.cached_sequences() > 0);
        let second = compare_with_oracle(&oracle, &q, &source_schema, &config);
        assert_eq!(first, second, "memoization must not change the verdict");
        assert!(
            oracle.hits() > 0,
            "the second identical check must be served from cache"
        );
        // The oracle's replay entry point agrees with the cache.
        let cex = second.counterexample.unwrap();
        assert_eq!(oracle.observe(&cex), observe(&p, &source_schema, &cex));
    }

    #[test]
    fn expired_token_cancels_the_check_without_a_verdict() {
        let p = make_program(true);
        let q = make_program(false);
        let source_schema = schema();
        let oracle = SourceOracle::new(&p, &source_schema);
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        let report = compare_with_oracle_cancel(
            &oracle,
            &q,
            &source_schema,
            &TestConfig::default(),
            Some(&token),
        );
        assert!(report.cancelled);
        assert!(!report.equivalent);
        assert!(report.counterexample.is_none());
        assert!(!report.bound_exhausted);
    }

    #[test]
    fn live_token_changes_nothing() {
        let p = make_program(true);
        let q = make_program(false);
        let source_schema = schema();
        let token = CancelToken::new();
        for candidate in [&p, &q] {
            let oracle = SourceOracle::new(&p, &source_schema);
            let plain =
                compare_with_oracle(&oracle, candidate, &source_schema, &TestConfig::default());
            let oracle = SourceOracle::new(&p, &source_schema);
            let with_token = compare_with_oracle_cancel(
                &oracle,
                candidate,
                &source_schema,
                &TestConfig::default(),
                Some(&token),
            );
            assert_eq!(plain, with_token);
            assert!(!with_token.cancelled);
        }
    }

    #[test]
    fn thorough_config_is_deeper_than_default() {
        assert!(TestConfig::thorough().max_updates > TestConfig::default().max_updates);
        assert!(TestConfig::quick().max_updates <= TestConfig::default().max_updates);
    }
}
