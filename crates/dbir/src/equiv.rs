//! Bounded equivalence checking and minimum-failing-input search.
//!
//! The paper checks candidate programs against the original by *bounded
//! exhaustive testing*: invocation sequences are generated from a small seed
//! set of constants in increasing order of length, and the first sequence on
//! which the two programs disagree is, by construction, a **minimum failing
//! input** (Section 5, "Generating minimum failing inputs").
//!
//! This module implements that procedure, plus a *relevance-closure*
//! optimization: when testing a particular query function, only update
//! functions whose (transitive) table footprint can influence that query in
//! either program are considered. Updates outside the closure cannot change
//! the query's result in either program, so omitting them preserves both
//! soundness and minimality of the search at a given bound.

use std::collections::BTreeSet;

use crate::ast::{Function, Program};
use crate::invocation::{observe, Call, InvocationSequence, Outcome};
use crate::schema::{Schema, TableName};
use crate::value::{DataType, Value};

/// Configuration of the bounded testing procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct TestConfig {
    /// Maximum number of update calls preceding the final query.
    pub max_updates: usize,
    /// Seed constants used for integer parameters.
    pub int_seeds: Vec<i64>,
    /// Seed constants used for string parameters.
    pub string_seeds: Vec<String>,
    /// Seed constants used for binary parameters.
    pub binary_seeds: Vec<Vec<u8>>,
    /// Seed constants used for boolean parameters.
    pub bool_seeds: Vec<bool>,
    /// Seed constants used for identifier parameters.
    pub id_seeds: Vec<i64>,
    /// Maximum number of argument combinations explored per function
    /// (`None` for no cap).  Combinations are enumerated deterministically,
    /// so the cap keeps very wide functions tractable.
    pub max_arg_combinations: Option<usize>,
    /// If `true`, restrict the update functions considered for a given query
    /// to the relevance closure described in the module documentation.
    pub cluster_by_tables: bool,
    /// Hard cap on the total number of invocation sequences executed
    /// (`None` for no cap).
    pub max_sequences: Option<usize>,
}

impl Default for TestConfig {
    fn default() -> TestConfig {
        TestConfig {
            max_updates: 2,
            int_seeds: vec![0, 1],
            string_seeds: vec!["A".to_string(), "B".to_string()],
            binary_seeds: vec![vec![0xaa], vec![0xbb]],
            bool_seeds: vec![true, false],
            id_seeds: vec![0, 1],
            max_arg_combinations: Some(16),
            cluster_by_tables: true,
            max_sequences: None,
        }
    }
}

impl TestConfig {
    /// A configuration with a deeper bound (three preceding updates), used
    /// as the final verification pass. The argument-combination cap is kept
    /// small because the sequence space grows cubically in it.
    pub fn thorough() -> TestConfig {
        TestConfig {
            max_updates: 3,
            int_seeds: vec![0, 1, 2],
            max_arg_combinations: Some(8),
            ..TestConfig::default()
        }
    }

    /// A shallow configuration (a single preceding update) used for quick
    /// screening of obviously wrong candidates.
    pub fn quick() -> TestConfig {
        TestConfig {
            max_updates: 1,
            ..TestConfig::default()
        }
    }

    /// The seed values available for a parameter of type `ty`.
    pub fn seeds(&self, ty: DataType) -> Vec<Value> {
        match ty {
            DataType::Int => self.int_seeds.iter().map(|&v| Value::Int(v)).collect(),
            DataType::String => self
                .string_seeds
                .iter()
                .map(|s| Value::Str(s.clone()))
                .collect(),
            DataType::Binary => self
                .binary_seeds
                .iter()
                .map(|b| Value::Bytes(b.clone()))
                .collect(),
            DataType::Bool => self.bool_seeds.iter().map(|&b| Value::Bool(b)).collect(),
            DataType::Id => self.id_seeds.iter().map(|&v| Value::Int(v)).collect(),
        }
    }

    /// All argument combinations (Cartesian product of per-parameter seeds)
    /// for `function`, capped at [`TestConfig::max_arg_combinations`].
    pub fn arg_combinations(&self, function: &Function) -> Vec<Vec<Value>> {
        let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
        for param in &function.params {
            let seeds = self.seeds(param.ty);
            let mut next = Vec::with_capacity(combos.len() * seeds.len().max(1));
            for combo in &combos {
                for seed in &seeds {
                    let mut extended = combo.clone();
                    extended.push(seed.clone());
                    next.push(extended);
                }
            }
            combos = next;
            if let Some(cap) = self.max_arg_combinations {
                if combos.len() > cap {
                    combos.truncate(cap);
                }
            }
        }
        combos
    }
}

/// The result of a bounded equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// `true` if no failing input was found within the bound.
    pub equivalent: bool,
    /// The minimum failing input, if one was found.
    pub counterexample: Option<InvocationSequence>,
    /// Number of invocation sequences executed.
    pub sequences_tested: usize,
}

/// Computes the relevance closure for one query function: the set of update
/// functions whose table footprint (in either program) can transitively
/// influence the query's tables.
fn relevant_updates<'p>(
    query: &Function,
    source: &'p Program,
    target: &Program,
) -> Vec<&'p Function> {
    let target_query_tables: Vec<TableName> = target
        .function(&query.name)
        .map(|f| f.tables())
        .unwrap_or_default();
    let mut reachable: BTreeSet<TableName> = query.tables().into_iter().collect();
    reachable.extend(target_query_tables);

    let footprint = |name: &str| -> BTreeSet<TableName> {
        let mut tables = BTreeSet::new();
        if let Some(f) = source.function(name) {
            tables.extend(f.tables());
        }
        if let Some(f) = target.function(name) {
            tables.extend(f.tables());
        }
        tables
    };

    let update_names: Vec<String> = source.updates().map(|f| f.name.clone()).collect();
    let mut selected: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for name in &update_names {
            if selected.contains(name) {
                continue;
            }
            let tables = footprint(name);
            if tables.iter().any(|t| reachable.contains(t)) {
                selected.insert(name.clone());
                for table in tables {
                    reachable.insert(table);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    source
        .updates()
        .filter(|f| selected.contains(&f.name))
        .collect()
}

/// Searches for a **minimum failing input** distinguishing `source` (over
/// `source_schema`) from `target` (over `target_schema`).
///
/// Sequences are enumerated in increasing number of update calls, so the
/// first counterexample returned has minimal length among all sequences
/// expressible with the configured seed constants.
///
/// Returns `None` if the two programs agree on every sequence within the
/// bound.
pub fn find_failing_input(
    source: &Program,
    source_schema: &Schema,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> Option<InvocationSequence> {
    compare_programs(source, source_schema, target, target_schema, config).counterexample
}

/// Runs the bounded equivalence check and reports the outcome together with
/// the number of sequences executed.
pub fn compare_programs(
    source: &Program,
    source_schema: &Schema,
    target: &Program,
    target_schema: &Schema,
    config: &TestConfig,
) -> EquivalenceReport {
    let mut sequences_tested = 0usize;

    // Pre-compute per-query call lists.
    struct QueryPlan {
        query_calls: Vec<Call>,
        update_calls: Vec<Call>,
    }
    let mut plans: Vec<QueryPlan> = Vec::new();
    for query in source.queries() {
        let query_calls: Vec<Call> = config
            .arg_combinations(query)
            .into_iter()
            .map(|args| Call::new(query.name.clone(), args))
            .collect();
        let updates: Vec<&Function> = if config.cluster_by_tables {
            relevant_updates(query, source, target)
        } else {
            source.updates().collect()
        };
        let update_calls: Vec<Call> = updates
            .iter()
            .flat_map(|u| {
                config
                    .arg_combinations(u)
                    .into_iter()
                    .map(|args| Call::new(u.name.clone(), args))
            })
            .collect();
        plans.push(QueryPlan {
            query_calls,
            update_calls,
        });
    }

    // Enumerate sequences in increasing number of preceding updates so the
    // first difference found is a minimum failing input.
    for length in 0..=config.max_updates {
        for plan in &plans {
            let mut prefix_indices = vec![0usize; length];
            loop {
                // Materialize the current prefix of update calls.
                if length == 0 || !plan.update_calls.is_empty() {
                    let updates: Vec<Call> = prefix_indices
                        .iter()
                        .map(|&i| plan.update_calls[i].clone())
                        .collect();
                    for query_call in &plan.query_calls {
                        if let Some(cap) = config.max_sequences {
                            if sequences_tested >= cap {
                                return EquivalenceReport {
                                    equivalent: true,
                                    counterexample: None,
                                    sequences_tested,
                                };
                            }
                        }
                        sequences_tested += 1;
                        let sequence = InvocationSequence::new(updates.clone(), query_call.clone());
                        let lhs = observe(source, source_schema, &sequence);
                        let rhs = observe(target, target_schema, &sequence);
                        if !outcomes_agree(&lhs, &rhs) {
                            return EquivalenceReport {
                                equivalent: false,
                                counterexample: Some(sequence),
                                sequences_tested,
                            };
                        }
                    }
                }
                // Advance the prefix odometer.
                if length == 0 || plan.update_calls.is_empty() {
                    break;
                }
                let mut pos = length;
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    prefix_indices[pos] += 1;
                    if prefix_indices[pos] < plan.update_calls.len() {
                        break;
                    }
                    prefix_indices[pos] = 0;
                    if pos == 0 {
                        pos = usize::MAX;
                        break;
                    }
                }
                if pos == usize::MAX {
                    break;
                }
            }
        }
    }

    EquivalenceReport {
        equivalent: true,
        counterexample: None,
        sequences_tested,
    }
}

/// Two outcomes agree when both succeed with the same canonical rows, or
/// both fail. (The particular error does not matter for equivalence; what
/// matters is that neither program produces an observable result the other
/// cannot.)
fn outcomes_agree(lhs: &Outcome, rhs: &Outcome) -> bool {
    match (lhs, rhs) {
        (Outcome::Rows(a), Outcome::Rows(b)) => a == b,
        (Outcome::Failed(_), Outcome::Failed(_)) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, JoinChain, Operand, Param, Pred, Query, Update};
    use crate::schema::QualifiedAttr;

    fn schema() -> Schema {
        Schema::parse("User(uid: int, name: string)").unwrap()
    }

    fn make_program(project_name: bool) -> Program {
        let projected = if project_name {
            QualifiedAttr::new("User", "name")
        } else {
            QualifiedAttr::new("User", "uid")
        };
        Program::new(vec![
            Function::update(
                "addUser",
                vec![
                    Param::new("uid", DataType::Int),
                    Param::new("name", DataType::String),
                ],
                Update::Insert {
                    join: JoinChain::table("User"),
                    values: vec![
                        (QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                        (QualifiedAttr::new("User", "name"), Operand::param("name")),
                    ],
                },
            ),
            Function::query(
                "getUser",
                vec![Param::new("uid", DataType::Int)],
                Query::select(
                    vec![projected],
                    Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                    JoinChain::table("User"),
                ),
            ),
        ])
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let p = make_program(true);
        let report = compare_programs(&p, &schema(), &p.clone(), &schema(), &TestConfig::default());
        assert!(report.equivalent);
        assert!(report.counterexample.is_none());
        assert!(report.sequences_tested > 0);
    }

    #[test]
    fn differing_projection_is_detected_with_minimal_input() {
        let p = make_program(true);
        let q = make_program(false);
        let cex = find_failing_input(&p, &schema(), &q, &schema(), &TestConfig::default())
            .expect("programs differ");
        // The minimal counterexample needs exactly one insert before the query.
        assert_eq!(cex.updates.len(), 1);
        assert_eq!(cex.updates[0].function, "addUser");
        assert_eq!(cex.query.function, "getUser");
    }

    #[test]
    fn empty_prefix_differences_are_found_first() {
        // A program whose query returns a constant row even on the empty
        // database differs with a zero-update counterexample.
        let p = make_program(true);
        let mut q = make_program(true);
        // Replace the query with one that filters on nothing (returns all
        // rows) — on the empty instance both are empty, so instead change the
        // predicate to `True` and seed via the insert; the difference then
        // still requires one insert. To exercise the zero-length case we make
        // the target query reference a never-matching filter, which agrees on
        // the empty database; so assert the search still starts at length 0.
        if let crate::ast::FunctionBody::Query(query) = &mut q.functions[1].body {
            *query = Query::select(
                vec![QualifiedAttr::new("User", "name")],
                Pred::False,
                JoinChain::table("User"),
            );
        }
        let cex = find_failing_input(&p, &schema(), &q, &schema(), &TestConfig::default())
            .expect("programs differ");
        assert_eq!(cex.updates.len(), 1, "smallest distinguishing input");
    }

    #[test]
    fn clustering_does_not_miss_counterexamples() {
        let p = make_program(true);
        let q = make_program(false);
        let mut config = TestConfig {
            cluster_by_tables: false,
            ..TestConfig::default()
        };
        let unclustered = find_failing_input(&p, &schema(), &q, &schema(), &config);
        config.cluster_by_tables = true;
        let clustered = find_failing_input(&p, &schema(), &q, &schema(), &config);
        assert_eq!(unclustered.is_some(), clustered.is_some());
    }

    #[test]
    fn arg_combinations_respect_cap() {
        let config = TestConfig {
            max_arg_combinations: Some(3),
            ..TestConfig::default()
        };
        let f = Function::update(
            "wide",
            vec![
                Param::new("a", DataType::Int),
                Param::new("b", DataType::Int),
                Param::new("c", DataType::Int),
            ],
            Update::Seq(vec![]),
        );
        assert_eq!(config.arg_combinations(&f).len(), 3);
    }

    #[test]
    fn seeds_cover_all_types() {
        let config = TestConfig::default();
        for ty in [
            DataType::Int,
            DataType::String,
            DataType::Binary,
            DataType::Bool,
            DataType::Id,
        ] {
            assert!(!config.seeds(ty).is_empty());
        }
    }

    #[test]
    fn max_sequences_cap_short_circuits() {
        let p = make_program(true);
        let q = make_program(false);
        let config = TestConfig {
            max_sequences: Some(1),
            ..TestConfig::default()
        };
        let report = compare_programs(&p, &schema(), &q, &schema(), &config);
        assert!(report.sequences_tested <= 1);
    }

    #[test]
    fn thorough_config_is_deeper_than_default() {
        assert!(TestConfig::thorough().max_updates > TestConfig::default().max_updates);
        assert!(TestConfig::quick().max_updates <= TestConfig::default().max_updates);
    }
}
