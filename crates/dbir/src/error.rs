//! Error types shared across the crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing, parsing or evaluating database programs.
///
/// The messages are lowercase without trailing punctuation so they compose
/// well when wrapped by downstream errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name was referenced but does not exist in the schema.
    UnknownTable(String),
    /// An attribute was referenced but does not exist in the schema
    /// (or is ambiguous when unqualified).
    UnknownAttribute(String),
    /// A function name was invoked but does not exist in the program.
    UnknownFunction(String),
    /// A function parameter was referenced but not declared.
    UnknownParameter(String),
    /// The number or types of arguments do not match the function signature.
    ArityMismatch {
        /// Function being invoked.
        function: String,
        /// Number of parameters the function declares.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// A value of the wrong type was supplied for an attribute or parameter.
    TypeMismatch {
        /// Human-readable location of the mismatch.
        context: String,
        /// Expected data type.
        expected: String,
        /// Actual data type.
        actual: String,
    },
    /// A statement is structurally invalid (e.g. deleting from a table that
    /// does not participate in the statement's join chain).
    InvalidStatement(String),
    /// An `IN` subquery produced a relation that is not single-column, so
    /// membership of a scalar in it is ill-typed.
    NonSingleColumnSubquery {
        /// Number of columns the subquery actually produced.
        columns: usize,
    },
    /// An ordering comparison (`<`, `<=`, `>`, `>=`) was applied to values
    /// of different runtime types, for which no order is defined.
    MixedTypeOrdering {
        /// Rendered type of the left operand (`null` for NULL).
        lhs: String,
        /// Rendered type of the right operand (`null` for NULL).
        rhs: String,
    },
    /// A function declares the same parameter name twice, which would let
    /// one binding silently shadow the other.
    DuplicateParameter {
        /// Function declaring the duplicate.
        function: String,
        /// The repeated parameter name.
        parameter: String,
    },
    /// A syntax error encountered by the parser.
    Parse {
        /// Line number (1-based) of the offending token.
        line: usize,
        /// Column number (1-based) of the offending token.
        column: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A schema-level inconsistency (duplicate table, duplicate column, ...).
    Schema(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            Error::UnknownParameter(name) => write!(f, "unknown parameter `{name}`"),
            Error::ArityMismatch {
                function,
                expected,
                actual,
            } => write!(
                f,
                "function `{function}` expects {expected} arguments but received {actual}"
            ),
            Error::TypeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {actual}"
            ),
            Error::InvalidStatement(msg) => write!(f, "invalid statement: {msg}"),
            Error::NonSingleColumnSubquery { columns } => write!(
                f,
                "IN subquery must produce exactly one column, found {columns}"
            ),
            Error::MixedTypeOrdering { lhs, rhs } => write!(
                f,
                "ordering comparison between incompatible types {lhs} and {rhs}"
            ),
            Error::DuplicateParameter {
                function,
                parameter,
            } => write!(
                f,
                "function `{function}` declares parameter `{parameter}` more than once"
            ),
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_table() {
        let err = Error::UnknownTable("Foo".to_string());
        assert_eq!(err.to_string(), "unknown table `Foo`");
    }

    #[test]
    fn display_arity_mismatch() {
        let err = Error::ArityMismatch {
            function: "addUser".into(),
            expected: 3,
            actual: 1,
        };
        assert!(err.to_string().contains("addUser"));
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('1'));
    }

    #[test]
    fn display_parse_error_has_position() {
        let err = Error::Parse {
            line: 4,
            column: 7,
            message: "expected identifier".into(),
        };
        assert_eq!(err.to_string(), "parse error at 4:7: expected identifier");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
