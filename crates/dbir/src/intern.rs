//! Process-wide interning of strings and binary blobs.
//!
//! Bounded testing snapshots an [`Instance`](crate::Instance) at every node
//! of the update-call tree — millions of clones per synthesis run. With
//! `Value::Str(String)` every snapshot re-heap-allocates every string in the
//! database; the profile of PR 2's prefix-shared engine was dominated by
//! exactly those clones. Interning replaces the owned payloads with `u32`
//! symbols into two append-only pools, which makes
//! [`Value`](crate::value::Value) a `Copy` type: snapshotting a tuple is a
//! `memcpy`, equality and hashing are integer operations, and only ordering
//! comparisons and display ever look at the characters again.
//!
//! The pools are **process-global and append-only**: entries are leaked into
//! `&'static` storage on first sight and never freed, so resolution hands
//! out `&'static` references without holding any lock for the caller's
//! lifetime. This is the right trade-off for a synthesizer — the universe of
//! distinct strings is the program text plus a handful of seed constants,
//! not attacker-controlled input — and it is what lets one interner be
//! shared by every worker thread of the parallel engine without
//! synchronizing on the hot (already-interned) path beyond one `RwLock`
//! read acquisition.
//!
//! [`stats`] reports how much the pools hold, which the benchmark harness
//! records as an allocation proxy alongside wall times.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `u32` index into the process-wide string pool.
///
/// Two `Sym`s are equal iff the strings they denote are equal (interning is
/// canonical). Symbols deliberately implement no ordering — symbol numbers
/// reflect interning insertion order, which is meaningless and
/// nondeterministic under parallel interning; order strings via
/// [`Sym::as_str`] (as [`Value`]'s manual `Ord` does).
///
/// [`Value`]: crate::value::Value
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The interned string.
    pub fn as_str(self) -> &'static str {
        strings().resolve(self.0)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Resolve in Debug output too: `Sym(3)` would be useless in test
        // failures and must never leak into anything user-visible.
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An interned binary blob: a `u32` index into the process-wide blob pool.
///
/// Same contract as [`Sym`], for `&[u8]` payloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blob(u32);

impl Blob {
    /// The interned bytes.
    pub fn as_bytes(self) -> &'static [u8] {
        blobs().resolve(self.0)
    }
}

impl fmt::Debug for Blob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Blob(0x")?;
        for byte in self.as_bytes() {
            write!(f, "{byte:02x}")?;
        }
        f.write_str(")")
    }
}

/// Interns a string, returning its canonical symbol.
pub fn intern_str(s: &str) -> Sym {
    Sym(strings().intern(s))
}

/// Interns a byte blob, returning its canonical symbol.
pub fn intern_bytes(b: &[u8]) -> Blob {
    Blob(blobs().intern(b))
}

/// A snapshot of the interner's footprint, used by the benchmark harness as
/// an allocation proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// Number of distinct interned strings.
    pub strings: usize,
    /// Total bytes of interned string payloads.
    pub string_bytes: usize,
    /// Number of distinct interned blobs.
    pub blobs: usize,
    /// Total bytes of interned blob payloads.
    pub blob_bytes: usize,
}

impl InternStats {
    /// Total payload bytes across both pools.
    pub fn total_bytes(&self) -> usize {
        self.string_bytes + self.blob_bytes
    }
}

/// Current footprint of both pools.
pub fn stats() -> InternStats {
    let (strings, string_bytes) = strings().footprint();
    let (blobs, blob_bytes) = blobs().footprint();
    InternStats {
        strings,
        string_bytes,
        blobs,
        blob_bytes,
    }
}

/// One append-only, leak-backed pool. `T` is the unsized payload
/// (`str` or `[u8]`).
struct Pool<T: ?Sized + 'static> {
    inner: RwLock<PoolInner<T>>,
}

struct PoolInner<T: ?Sized + 'static> {
    /// id → payload, in insertion order.
    list: Vec<&'static T>,
    /// payload → id, for canonicalization.
    map: HashMap<&'static T, u32>,
    /// Total payload bytes held.
    bytes: usize,
}

impl<T> Pool<T>
where
    T: ?Sized + std::hash::Hash + Eq + PayloadLen + 'static,
{
    fn new() -> Pool<T> {
        Pool {
            inner: RwLock::new(PoolInner {
                list: Vec::new(),
                map: HashMap::new(),
                bytes: 0,
            }),
        }
    }

    fn intern(&self, payload: &T) -> u32
    where
        for<'a> &'a T: Leak<T>,
    {
        if let Some(&id) = self
            .inner
            .read()
            .expect("interner poisoned")
            .map
            .get(payload)
        {
            return id;
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        // Re-check under the write lock: another thread may have interned the
        // same payload between our read probe and here.
        if let Some(&id) = inner.map.get(payload) {
            return id;
        }
        let leaked: &'static T = payload.leak();
        let id = u32::try_from(inner.list.len()).expect("more than u32::MAX interned values");
        inner.list.push(leaked);
        inner.map.insert(leaked, id);
        inner.bytes += leaked.payload_len();
        id
    }

    fn resolve(&self, id: u32) -> &'static T {
        self.inner.read().expect("interner poisoned").list[id as usize]
    }

    fn footprint(&self) -> (usize, usize) {
        let inner = self.inner.read().expect("interner poisoned");
        (inner.list.len(), inner.bytes)
    }
}

/// Payload size in bytes (for the allocation-proxy stats).
trait PayloadLen {
    fn payload_len(&self) -> usize;
}

impl PayloadLen for str {
    fn payload_len(&self) -> usize {
        self.len()
    }
}

impl PayloadLen for [u8] {
    fn payload_len(&self) -> usize {
        self.len()
    }
}

/// Leaks a borrowed payload into `&'static` storage.
trait Leak<T: ?Sized> {
    fn leak(self) -> &'static T;
}

impl Leak<str> for &str {
    fn leak(self) -> &'static str {
        Box::leak(self.to_owned().into_boxed_str())
    }
}

impl Leak<[u8]> for &[u8] {
    fn leak(self) -> &'static [u8] {
        Box::leak(self.to_owned().into_boxed_slice())
    }
}

fn strings() -> &'static Pool<str> {
    static POOL: OnceLock<Pool<str>> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

fn blobs() -> &'static Pool<[u8]> {
    static POOL: OnceLock<Pool<[u8]>> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let a = intern_str("hello");
        let b = intern_str("hello");
        let c = intern_str("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn blobs_are_canonical() {
        let a = intern_bytes(&[1, 2, 3]);
        let b = intern_bytes(&[1, 2, 3]);
        let c = intern_bytes(&[]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_bytes(), &[1, 2, 3]);
        assert_eq!(c.as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn debug_resolves_payloads() {
        let sym = intern_str("x\"y");
        assert_eq!(format!("{sym:?}"), "Sym(\"x\\\"y\")");
        let blob = intern_bytes(&[0xab, 0x01]);
        assert_eq!(format!("{blob:?}"), "Blob(0xab01)");
    }

    #[test]
    fn stats_grow_monotonically() {
        let before = stats();
        // A string that no other test interns.
        intern_str("stats_grow_monotonically probe");
        let after = stats();
        assert!(after.strings > before.strings);
        assert!(after.string_bytes > before.string_bytes);
        assert_eq!(after.total_bytes(), after.string_bytes + after.blob_bytes);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let words: Vec<String> = (0..64).map(|i| format!("concurrent-{}", i % 8)).collect();
        let symbols: Vec<Vec<Sym>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| words.iter().map(|w| intern_str(w)).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &symbols[1..] {
            assert_eq!(&symbols[0], other);
        }
        for (word, sym) in words.iter().zip(&symbols[0]) {
            assert_eq!(sym.as_str(), word);
        }
    }
}
