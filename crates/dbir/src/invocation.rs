//! Invocation sequences and program execution (Section 3.2 of the paper).
//!
//! An invocation sequence `ω = (f1,σ1); …; (fk,σk)` consists of zero or more
//! update-function calls followed by a single query-function call. Executing
//! a program on `ω` starts from the empty database instance, applies the
//! updates in order, evaluates the final query and returns its result.
//! Two programs are equivalent iff every invocation sequence yields the same
//! query result on both.

use std::fmt;

use crate::ast::{Function, Program};
use crate::error::{Error, Result};
use crate::eval::Evaluator;
use crate::instance::{Instance, Relation};
use crate::schema::Schema;
use crate::value::Value;

/// A single function call: a function name and its positional arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Call {
    /// Name of the invoked function.
    pub function: String,
    /// Positional arguments.
    pub args: Vec<Value>,
}

impl Call {
    /// Creates a call.
    pub fn new(function: impl Into<String>, args: Vec<Value>) -> Call {
        Call {
            function: function.into(),
            args,
        }
    }
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.function)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{arg}")?;
        }
        f.write_str(")")
    }
}

/// An invocation sequence: update calls followed by one query call.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvocationSequence {
    /// The update calls, applied in order to the empty instance.
    pub updates: Vec<Call>,
    /// The final query call whose result is observed.
    pub query: Call,
}

impl InvocationSequence {
    /// Creates an invocation sequence.
    pub fn new(updates: Vec<Call>, query: Call) -> InvocationSequence {
        InvocationSequence { updates, query }
    }

    /// The total number of calls (updates plus the query), i.e. `|ω|`.
    pub fn len(&self) -> usize {
        self.updates.len() + 1
    }

    /// Returns `true` if the sequence consists only of the query call.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The update-call depth: how many update calls precede the
    /// distinguishing query. This is the "death depth" the forensics
    /// ledger buckets minimum failing inputs by.
    pub fn depth(&self) -> usize {
        self.updates.len()
    }
}

impl fmt::Display for InvocationSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for call in &self.updates {
            write!(f, "{call}; ")?;
        }
        write!(f, "{}", self.query)
    }
}

/// The observable outcome of running a program on an invocation sequence:
/// either the rows of the final query (sorted into canonical order) or an
/// execution error.
///
/// Errors are part of the observable behaviour: a candidate program that
/// fails where the original succeeds is not equivalent to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The final query's rows in canonical (sorted) order.
    Rows(Vec<Vec<Value>>),
    /// Execution failed with the given error.
    Failed(Error),
}

impl Outcome {
    /// Returns the rows if execution succeeded.
    pub fn rows(&self) -> Option<&[Vec<Value>]> {
        match self {
            Outcome::Rows(rows) => Some(rows),
            Outcome::Failed(_) => None,
        }
    }
}

/// Executes `program` (over `schema`) on the invocation sequence `ω`,
/// starting from the empty instance, and returns the final query result —
/// the paper's `⟦P⟧ω`.
///
/// # Errors
///
/// Returns an error if a call names an unknown function, if the final call
/// is not a query, or if evaluation fails.
pub fn run(program: &Program, schema: &Schema, sequence: &InvocationSequence) -> Result<Relation> {
    let mut instance = Instance::empty(schema);
    let mut evaluator = Evaluator::new(schema);
    for call in &sequence.updates {
        let function = resolve_update(program, &call.function)?;
        evaluator.call(function, &call.args, &mut instance)?;
    }
    let query = resolve_query(program, &sequence.query.function)?;
    let result = evaluator.call(query, &sequence.query.args, &mut instance)?;
    Ok(result.expect("query functions return a relation"))
}

/// Resolves a function used in update position, rejecting queries.
///
/// Shared between [`run`] and the prefix-shared engine in [`crate::equiv`]
/// so both report byte-identical errors.
pub(crate) fn resolve_update<'p>(program: &'p Program, name: &str) -> Result<&'p Function> {
    let function = program
        .function(name)
        .ok_or_else(|| Error::UnknownFunction(name.to_string()))?;
    if function.is_query() {
        return Err(Error::InvalidStatement(format!(
            "`{name}` is a query function but is used as an update in the sequence"
        )));
    }
    Ok(function)
}

/// Resolves a function used in query position, rejecting updates.
pub(crate) fn resolve_query<'p>(program: &'p Program, name: &str) -> Result<&'p Function> {
    let function = program
        .function(name)
        .ok_or_else(|| Error::UnknownFunction(name.to_string()))?;
    if !function.is_query() {
        return Err(Error::InvalidStatement(format!(
            "`{name}` is an update function but is used as the final query"
        )));
    }
    Ok(function)
}

/// Executes `program` on `ω` and converts the result into an [`Outcome`]
/// suitable for comparing two programs.
pub fn observe(program: &Program, schema: &Schema, sequence: &InvocationSequence) -> Outcome {
    match run(program, schema, sequence) {
        Ok(relation) => Outcome::Rows(relation.canonical_rows()),
        Err(err) => Outcome::Failed(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, JoinChain, Operand, Param, Pred, Query, Update};
    use crate::schema::QualifiedAttr;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::parse("User(uid: int, name: string)").unwrap()
    }

    fn program() -> Program {
        Program::new(vec![
            Function::update(
                "addUser",
                vec![
                    Param::new("uid", DataType::Int),
                    Param::new("name", DataType::String),
                ],
                Update::Insert {
                    join: JoinChain::table("User"),
                    values: vec![
                        (QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                        (QualifiedAttr::new("User", "name"), Operand::param("name")),
                    ],
                },
            ),
            Function::update(
                "deleteUser",
                vec![Param::new("uid", DataType::Int)],
                Update::Delete {
                    tables: vec!["User".into()],
                    join: JoinChain::table("User"),
                    pred: Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                },
            ),
            Function::query(
                "getUser",
                vec![Param::new("uid", DataType::Int)],
                Query::select(
                    vec![QualifiedAttr::new("User", "name")],
                    Pred::eq_value(QualifiedAttr::new("User", "uid"), Operand::param("uid")),
                    JoinChain::table("User"),
                ),
            ),
        ])
    }

    #[test]
    fn run_insert_then_query() {
        let seq = InvocationSequence::new(
            vec![Call::new("addUser", vec![Value::Int(1), Value::str("ada")])],
            Call::new("getUser", vec![Value::Int(1)]),
        );
        let result = run(&program(), &schema(), &seq).unwrap();
        assert_eq!(result.rows, vec![vec![Value::str("ada")]]);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
    }

    #[test]
    fn run_insert_delete_query_is_empty() {
        let seq = InvocationSequence::new(
            vec![
                Call::new("addUser", vec![Value::Int(1), Value::str("ada")]),
                Call::new("deleteUser", vec![Value::Int(1)]),
            ],
            Call::new("getUser", vec![Value::Int(1)]),
        );
        let result = run(&program(), &schema(), &seq).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn unknown_function_is_reported() {
        let seq = InvocationSequence::new(vec![], Call::new("nope", vec![]));
        assert!(matches!(
            run(&program(), &schema(), &seq),
            Err(Error::UnknownFunction(_))
        ));
    }

    #[test]
    fn query_used_as_update_is_rejected() {
        let seq = InvocationSequence::new(
            vec![Call::new("getUser", vec![Value::Int(1)])],
            Call::new("getUser", vec![Value::Int(1)]),
        );
        assert!(run(&program(), &schema(), &seq).is_err());
    }

    #[test]
    fn update_used_as_query_is_rejected() {
        let seq = InvocationSequence::new(
            vec![],
            Call::new("addUser", vec![Value::Int(1), Value::str("x")]),
        );
        assert!(run(&program(), &schema(), &seq).is_err());
    }

    #[test]
    fn observe_wraps_errors() {
        let seq = InvocationSequence::new(vec![], Call::new("nope", vec![]));
        match observe(&program(), &schema(), &seq) {
            Outcome::Failed(Error::UnknownFunction(_)) => {}
            other => panic!("expected failure outcome, got {other:?}"),
        }
    }

    #[test]
    fn display_formats_sequence() {
        let seq = InvocationSequence::new(
            vec![Call::new("addUser", vec![Value::Int(1), Value::str("ada")])],
            Call::new("getUser", vec![Value::Int(1)]),
        );
        let text = seq.to_string();
        assert!(text.contains("addUser(1, \"ada\")"));
        assert!(text.ends_with("getUser(1)"));
    }
}
