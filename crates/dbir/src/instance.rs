//! In-memory database instances and intermediate relations.
//!
//! # Structural sharing
//!
//! [`Instance`] is a *copy-on-write value*: each table's rows live behind an
//! [`Arc`], so `Instance::clone()` is `O(tables)` pointer bumps and two
//! clones share every row until one of them writes. The first mutable access
//! to a table ([`Instance::rows_mut`]) un-shares just that table via
//! [`Arc::make_mut`]; other tables stay shared. This makes the bounded
//! testing engine's snapshots (prefix-cache entries, parallel walk roots)
//! nearly free, and it is what the undo-log walk in [`crate::equiv`] relies
//! on: a walker clones a cached prefix state cheaply, mutates its private
//! copy in place, and can never perturb the cached original because every
//! write path goes through `rows_mut`.
//!
//! Sharing invariants:
//!
//! * Rows are only reachable through [`Instance`] methods; no API hands out
//!   an `Arc` or a `&mut` that bypasses the copy-on-write gate.
//! * [`Value`] is `Copy` (strings and blobs are interned symbols), so
//!   un-sharing a table is a flat memcpy of its tuples — no deep payload
//!   clones, and shared rows never alias mutable heap data.
//! * Holding an `Instance` clone (or anything cloned from one — prefix-cache
//!   states, oracle outcomes, speculation snapshots) keeps the shared rows
//!   alive but can never observe a sibling's writes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::schema::{QualifiedAttr, Schema, TableName};
use crate::value::Value;

/// A tuple: an ordered list of values matching a table's column order.
pub type Tuple = Vec<Value>;

/// A database instance: a mapping from table names to lists (multisets) of
/// tuples, as in Definition A.4 of the paper.
///
/// Cloning is cheap (structural sharing — see the module docs); mutation
/// copies only the touched table, and only when it is actually shared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instance {
    tables: BTreeMap<TableName, Arc<Vec<Tuple>>>,
}

/// Approximate heap bytes of one table's rows, exploiting that every row of
/// a table has the same arity.
fn table_bytes(rows: &[Tuple]) -> usize {
    let width = rows.first().map(Vec::len).unwrap_or(0);
    rows.len() * (std::mem::size_of::<Tuple>() + width * std::mem::size_of::<Value>())
}

impl Instance {
    /// Creates the empty instance `ϵ` for the given schema: every table is
    /// present with zero tuples.
    pub fn empty(schema: &Schema) -> Instance {
        let mut tables = BTreeMap::new();
        for table in schema.tables() {
            tables.insert(table.name, Arc::new(Vec::new()));
        }
        Instance { tables }
    }

    /// The tuples currently stored in a table (empty if the table is absent).
    pub fn rows(&self, table: &TableName) -> &[Tuple] {
        self.tables
            .get(table)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Mutable access to a table's tuples, creating the table if needed.
    ///
    /// This is the copy-on-write gate: if the table's rows are shared with
    /// another instance (a snapshot, a cached prefix state), they are copied
    /// first, so the sibling can never observe the mutation.
    pub fn rows_mut(&mut self, table: &TableName) -> &mut Vec<Tuple> {
        Arc::make_mut(self.tables.entry(*table).or_default())
    }

    /// Like [`Instance::rows_mut`], but also reports the bytes physically
    /// copied if this access had to un-share the table (`0` when the rows
    /// were already uniquely owned). The bounded-testing engine uses this to
    /// account *actual* copy traffic instead of logical snapshot sizes.
    pub fn rows_mut_tracked(&mut self, table: &TableName) -> (&mut Vec<Tuple>, usize) {
        let rows = self.tables.entry(*table).or_default();
        let copied = if Arc::strong_count(rows) > 1 {
            table_bytes(rows)
        } else {
            0
        };
        (Arc::make_mut(rows), copied)
    }

    /// Replaces a table's rows wholesale, dropping any sharing with other
    /// instances. Used by bulk loaders (e.g. the SQL backend's
    /// `Database::to_instance`) to build tables without a push-per-row
    /// copy-on-write dance.
    pub fn set_rows(&mut self, table: &TableName, rows: Vec<Tuple>) {
        self.tables.insert(*table, Arc::new(rows));
    }

    /// Appends a tuple to a table.
    pub fn insert(&mut self, table: &TableName, tuple: Tuple) {
        self.rows_mut(table).push(tuple);
    }

    /// Total number of tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|rows| rows.len()).sum()
    }

    /// Returns `true` if no table holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.total_rows() == 0
    }

    /// Iterates over `(table, rows)` pairs in table-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&TableName, &[Tuple])> {
        self.tables
            .iter()
            .map(|(name, rows)| (name, rows.as_slice()))
    }

    /// Approximate heap footprint of the instance's *logical contents* in
    /// bytes: every row counted once, whether or not it is shared with other
    /// instances. `O(tables)`, so it is cheap enough to sample frequently.
    /// With interned values this is the full cost of materializing the
    /// instance from scratch; see [`Instance::heap_bytes_split`] for the
    /// owned/shared breakdown that avoids double-counting structurally
    /// shared rows across clones.
    pub fn approx_heap_bytes(&self) -> usize {
        let (owned, shared) = self.heap_bytes_split();
        owned + shared
    }

    /// The instance's approximate heap bytes split into `(owned, shared)`:
    /// tables whose rows this instance uniquely owns versus tables whose
    /// rows are structurally shared with at least one other instance.
    /// Summing `owned` across a family of clones counts every physical byte
    /// exactly once per owner, where the pre-copy-on-write accounting would
    /// have counted each shared table once per clone.
    pub fn heap_bytes_split(&self) -> (usize, usize) {
        let mut owned = std::mem::size_of::<Instance>();
        let mut shared = 0;
        for rows in self.tables.values() {
            let bytes = table_bytes(rows);
            if Arc::strong_count(rows) > 1 {
                shared += bytes;
            } else {
                owned += bytes;
            }
        }
        (owned, shared)
    }

    /// The bytes physically copied by one `Instance::clone()`: the table map
    /// and one `Arc` pointer bump per table — *not* the rows, which are
    /// shared. This is the honest per-snapshot cost the bounded-testing
    /// engine accounts for copy-on-write clones.
    pub fn clone_overhead_bytes(&self) -> usize {
        std::mem::size_of::<Instance>()
            + self.tables.len()
                * (std::mem::size_of::<TableName>() + std::mem::size_of::<Arc<Vec<Tuple>>>())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (table, rows) in self.iter() {
            writeln!(f, "{table}: {} row(s)", rows.len())?;
            for row in rows {
                f.write_str("  (")?;
                for (i, value) in row.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str(")\n")?;
            }
        }
        Ok(())
    }
}

/// An intermediate relation produced while evaluating a query: a header of
/// qualified column names plus rows.
///
/// Join chains produce relations whose columns are the concatenation of the
/// participating tables' columns, qualified by table name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Column header.
    pub columns: Vec<QualifiedAttr>,
    /// Rows, each with one value per column.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given header.
    pub fn empty(columns: Vec<QualifiedAttr>) -> Relation {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// The index of a column in the header, if present.
    pub fn column_index(&self, attr: &QualifiedAttr) -> Option<usize> {
        self.columns.iter().position(|c| c == attr)
    }

    /// Projects the relation onto the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if a requested column is not part of the header; callers are
    /// expected to validate attribute references first.
    pub fn project(&self, attrs: &[QualifiedAttr]) -> Relation {
        let indices: Vec<usize> = attrs
            .iter()
            .map(|a| {
                self.column_index(a)
                    .unwrap_or_else(|| panic!("column {a} not in relation header"))
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| indices.iter().map(|&i| row[i]).collect())
            .collect();
        Relation {
            columns: attrs.to_vec(),
            rows,
        }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the rows sorted into a canonical order, for comparing query
    /// results under multiset semantics.
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Returns `true` if the two relations hold the same multiset of rows
    /// (column *names* are not compared — the paper's equivalence compares
    /// query results positionally).
    pub fn same_rows(&self, other: &Relation) -> bool {
        self.canonical_rows() == other.canonical_rows()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{col}")?;
        }
        f.write_str("\n")?;
        for row in &self.rows {
            for (i, value) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{value}")?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::parse("Car(cid: int, model: string)\nPart(name: string, cid: int)").unwrap()
    }

    #[test]
    fn empty_instance_has_all_tables() {
        let instance = Instance::empty(&schema());
        assert!(instance.is_empty());
        assert_eq!(instance.rows(&"Car".into()).len(), 0);
        assert_eq!(instance.rows(&"Part".into()).len(), 0);
        assert_eq!(instance.iter().count(), 2);
    }

    #[test]
    fn insert_and_count() {
        let mut instance = Instance::empty(&schema());
        instance.insert(&"Car".into(), vec![Value::Int(1), Value::str("M1")]);
        instance.insert(&"Car".into(), vec![Value::Int(2), Value::str("M2")]);
        assert_eq!(instance.total_rows(), 2);
        assert_eq!(instance.rows(&"Car".into()).len(), 2);
    }

    #[test]
    fn missing_table_yields_empty_rows() {
        let instance = Instance::empty(&schema());
        assert!(instance.rows(&"Ghost".into()).is_empty());
    }

    #[test]
    fn clones_share_rows_until_mutation() {
        let mut original = Instance::empty(&schema());
        original.insert(&"Car".into(), vec![Value::Int(1), Value::str("M1")]);
        let mut clone = original.clone();
        // Shared: the clone sees the rows without owning them.
        let (owned, shared) = clone.heap_bytes_split();
        assert!(shared > 0, "cloned table rows must be shared");
        assert_eq!(owned, std::mem::size_of::<Instance>());
        assert_eq!(
            original.approx_heap_bytes(),
            clone.approx_heap_bytes(),
            "logical size is sharing-independent"
        );

        // Writing through the clone un-shares only the touched table and
        // never perturbs the original.
        clone.insert(&"Car".into(), vec![Value::Int(2), Value::str("M2")]);
        assert_eq!(original.rows(&"Car".into()).len(), 1);
        assert_eq!(clone.rows(&"Car".into()).len(), 2);
        let (owned_after, shared_after) = clone.heap_bytes_split();
        assert_eq!(shared_after, 0, "the only populated table was un-shared");
        assert!(owned_after > owned);
    }

    #[test]
    fn tracked_mutation_reports_copy_on_write_bytes() {
        let mut original = Instance::empty(&schema());
        original.insert(&"Car".into(), vec![Value::Int(1), Value::str("M1")]);
        let mut clone = original.clone();
        let (_, copied) = clone.rows_mut_tracked(&"Car".into());
        assert!(copied > 0, "first write to a shared table copies its rows");
        let (_, copied_again) = clone.rows_mut_tracked(&"Car".into());
        assert_eq!(copied_again, 0, "already-unique rows are not re-copied");
        // The untouched sibling table stays shared with the original.
        let (_, part_copy) = clone.rows_mut_tracked(&"Part".into());
        assert_eq!(part_copy, 0, "empty shared table copies zero bytes");
    }

    #[test]
    fn clone_overhead_is_rows_independent() {
        let mut instance = Instance::empty(&schema());
        let overhead_empty = instance.clone_overhead_bytes();
        for i in 0..100 {
            instance.insert(&"Car".into(), vec![Value::Int(i), Value::str("M")]);
        }
        assert_eq!(
            instance.clone_overhead_bytes(),
            overhead_empty,
            "clone cost depends on table count, not row count"
        );
        assert!(instance.approx_heap_bytes() > instance.clone_overhead_bytes());
    }

    #[test]
    fn set_rows_replaces_wholesale() {
        let mut instance = Instance::empty(&schema());
        instance.set_rows(
            &"Car".into(),
            vec![
                vec![Value::Int(1), Value::str("M1")],
                vec![Value::Int(2), Value::str("M2")],
            ],
        );
        assert_eq!(instance.rows(&"Car".into()).len(), 2);
        let (_, shared) = instance.heap_bytes_split();
        assert_eq!(shared, 0);
    }

    #[test]
    fn relation_project_and_compare() {
        let rel = Relation {
            columns: vec![
                QualifiedAttr::new("Car", "cid"),
                QualifiedAttr::new("Car", "model"),
            ],
            rows: vec![
                vec![Value::Int(2), Value::str("M2")],
                vec![Value::Int(1), Value::str("M1")],
            ],
        };
        let projected = rel.project(&[QualifiedAttr::new("Car", "model")]);
        assert_eq!(projected.columns.len(), 1);
        assert_eq!(projected.rows.len(), 2);

        let same_different_order = Relation {
            columns: rel.columns.clone(),
            rows: vec![
                vec![Value::Int(1), Value::str("M1")],
                vec![Value::Int(2), Value::str("M2")],
            ],
        };
        assert!(rel.same_rows(&same_different_order));

        let different = Relation {
            columns: rel.columns.clone(),
            rows: vec![vec![Value::Int(3), Value::str("M3")]],
        };
        assert!(!rel.same_rows(&different));
    }

    #[test]
    #[should_panic(expected = "not in relation header")]
    fn project_unknown_column_panics() {
        let rel = Relation::empty(vec![QualifiedAttr::new("Car", "cid")]);
        let _ = rel.project(&[QualifiedAttr::new("Car", "model")]);
    }
}
