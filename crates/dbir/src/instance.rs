//! In-memory database instances and intermediate relations.

use std::collections::BTreeMap;
use std::fmt;

use crate::schema::{QualifiedAttr, Schema, TableName};
use crate::value::Value;

/// A tuple: an ordered list of values matching a table's column order.
pub type Tuple = Vec<Value>;

/// A database instance: a mapping from table names to lists (multisets) of
/// tuples, as in Definition A.4 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instance {
    tables: BTreeMap<TableName, Vec<Tuple>>,
}

impl Instance {
    /// Creates the empty instance `ϵ` for the given schema: every table is
    /// present with zero tuples.
    pub fn empty(schema: &Schema) -> Instance {
        let mut tables = BTreeMap::new();
        for table in schema.tables() {
            tables.insert(table.name, Vec::new());
        }
        Instance { tables }
    }

    /// The tuples currently stored in a table (empty if the table is absent).
    pub fn rows(&self, table: &TableName) -> &[Tuple] {
        self.tables.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mutable access to a table's tuples, creating the table if needed.
    pub fn rows_mut(&mut self, table: &TableName) -> &mut Vec<Tuple> {
        self.tables.entry(*table).or_default()
    }

    /// Appends a tuple to a table.
    pub fn insert(&mut self, table: &TableName, tuple: Tuple) {
        self.rows_mut(table).push(tuple);
    }

    /// Total number of tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Returns `true` if no table holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.total_rows() == 0
    }

    /// Iterates over `(table, rows)` pairs in table-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&TableName, &Vec<Tuple>)> {
        self.tables.iter()
    }

    /// Approximate heap footprint of the instance in bytes, exploiting that
    /// every row of a table has the same arity. `O(tables)`, so it is cheap
    /// enough for the snapshot path to sample on every clone; used as an
    /// allocation proxy by the benchmark harness. With interned values this
    /// is also (approximately) the cost of one snapshot, since tuples hold
    /// `Copy` values and no payload heap blocks.
    pub fn approx_heap_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Instance>();
        for rows in self.tables.values() {
            let width = rows.first().map(Vec::len).unwrap_or(0);
            bytes +=
                rows.len() * (std::mem::size_of::<Tuple>() + width * std::mem::size_of::<Value>());
        }
        bytes
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (table, rows) in &self.tables {
            writeln!(f, "{table}: {} row(s)", rows.len())?;
            for row in rows {
                f.write_str("  (")?;
                for (i, value) in row.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str(")\n")?;
            }
        }
        Ok(())
    }
}

/// An intermediate relation produced while evaluating a query: a header of
/// qualified column names plus rows.
///
/// Join chains produce relations whose columns are the concatenation of the
/// participating tables' columns, qualified by table name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Column header.
    pub columns: Vec<QualifiedAttr>,
    /// Rows, each with one value per column.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given header.
    pub fn empty(columns: Vec<QualifiedAttr>) -> Relation {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// The index of a column in the header, if present.
    pub fn column_index(&self, attr: &QualifiedAttr) -> Option<usize> {
        self.columns.iter().position(|c| c == attr)
    }

    /// Projects the relation onto the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if a requested column is not part of the header; callers are
    /// expected to validate attribute references first.
    pub fn project(&self, attrs: &[QualifiedAttr]) -> Relation {
        let indices: Vec<usize> = attrs
            .iter()
            .map(|a| {
                self.column_index(a)
                    .unwrap_or_else(|| panic!("column {a} not in relation header"))
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| indices.iter().map(|&i| row[i]).collect())
            .collect();
        Relation {
            columns: attrs.to_vec(),
            rows,
        }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the rows sorted into a canonical order, for comparing query
    /// results under multiset semantics.
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Returns `true` if the two relations hold the same multiset of rows
    /// (column *names* are not compared — the paper's equivalence compares
    /// query results positionally).
    pub fn same_rows(&self, other: &Relation) -> bool {
        self.canonical_rows() == other.canonical_rows()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{col}")?;
        }
        f.write_str("\n")?;
        for row in &self.rows {
            for (i, value) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{value}")?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::parse("Car(cid: int, model: string)\nPart(name: string, cid: int)").unwrap()
    }

    #[test]
    fn empty_instance_has_all_tables() {
        let instance = Instance::empty(&schema());
        assert!(instance.is_empty());
        assert_eq!(instance.rows(&"Car".into()).len(), 0);
        assert_eq!(instance.rows(&"Part".into()).len(), 0);
        assert_eq!(instance.iter().count(), 2);
    }

    #[test]
    fn insert_and_count() {
        let mut instance = Instance::empty(&schema());
        instance.insert(&"Car".into(), vec![Value::Int(1), Value::str("M1")]);
        instance.insert(&"Car".into(), vec![Value::Int(2), Value::str("M2")]);
        assert_eq!(instance.total_rows(), 2);
        assert_eq!(instance.rows(&"Car".into()).len(), 2);
    }

    #[test]
    fn missing_table_yields_empty_rows() {
        let instance = Instance::empty(&schema());
        assert!(instance.rows(&"Ghost".into()).is_empty());
    }

    #[test]
    fn relation_project_and_compare() {
        let rel = Relation {
            columns: vec![
                QualifiedAttr::new("Car", "cid"),
                QualifiedAttr::new("Car", "model"),
            ],
            rows: vec![
                vec![Value::Int(2), Value::str("M2")],
                vec![Value::Int(1), Value::str("M1")],
            ],
        };
        let projected = rel.project(&[QualifiedAttr::new("Car", "model")]);
        assert_eq!(projected.columns.len(), 1);
        assert_eq!(projected.rows.len(), 2);

        let same_different_order = Relation {
            columns: rel.columns.clone(),
            rows: vec![
                vec![Value::Int(1), Value::str("M1")],
                vec![Value::Int(2), Value::str("M2")],
            ],
        };
        assert!(rel.same_rows(&same_different_order));

        let different = Relation {
            columns: rel.columns.clone(),
            rows: vec![vec![Value::Int(3), Value::str("M3")]],
        };
        assert!(!rel.same_rows(&different));
    }

    #[test]
    #[should_panic(expected = "not in relation header")]
    fn project_unknown_column_panics() {
        let rel = Relation::empty(vec![QualifiedAttr::new("Car", "cid")]);
        let _ = rel.project(&[QualifiedAttr::new("Car", "model")]);
    }
}
