//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! experiments table1 [--textbook-only] [--only <name>]... [--out <path>] [--threads <n>]
//! experiments table2 [--textbook-only] [--budget-secs <n>] [--threads <n>]
//! experiments table3 [--textbook-only] [--cap <iterations>] [--threads <n>]
//! experiments all    [--textbook-only] [--out <path>] [--threads <n>]
//! experiments check  [--textbook-only] [--only <name>]... [--against <path>] [--threads <n>]
//! experiments known-red [--threads <n>]
//! experiments cmp <old.json> <new.json> [--threshold <ratio>]
//! experiments dump <benchmark> <dir>
//! ```
//!
//! `--threads N` caps the synthesizer's global thread budget (default: the
//! machine's available parallelism). The search is deterministic by
//! construction at any thread count — `check` runs under `--threads 1` and
//! `--threads 4` in CI must (and do) produce identical statistics.
//!
//! Each table command prints a Markdown table with the measured numbers next
//! to the numbers the paper reports, so EXPERIMENTS.md can be updated by
//! copying the output. `table1` and `all` additionally write the measured
//! rows (per-benchmark wall time plus the underlying search statistics) as
//! machine-readable JSON to `--out` (default `BENCH_results.json`), so
//! successive revisions leave a performance trajectory.
//!
//! `check` is the deterministic-stats mode CI runs on a fast benchmark
//! subset: it re-runs the selected benchmarks and asserts that the
//! *deterministic* columns — the allowlists
//! [`bench::DETERMINISTIC_TOP_FIELDS`] and
//! [`bench::DETERMINISTIC_PHASE_FIELDS`], plus the success and validation
//! flags — match the committed trajectory file (wall time, thread count and
//! snapshot/oracle/allocation counters are machine- or
//! scheduling-dependent and excluded). Mismatches are reported field by
//! field in a `### Mismatches` section (expected vs measured) with a
//! one-line summary count on stderr. `--only` is repeatable. Exits non-zero
//! on any mismatch, so a search-behaviour regression fails the build.
//!
//! `known-red` is the frontier gate: every benchmark outside the known-red
//! list must keep synthesizing and validating under the standard
//! configuration, while the known-red benchmarks are attempted under the
//! widened-space preset (`SynthesisConfig::widened`) and their status is
//! recorded informationally in the Markdown output.
//!
//! `cmp` diffs two `BENCH_results.json` files run-over-run (the rebar-style
//! companion to the trajectory file): per-benchmark wall-time ratios, drift
//! in the deterministic allowlisted fields, and a `### Regressions` section
//! listing benchmarks whose wall time grew beyond `--threshold` (default
//! 1.2×). Wall-time regressions are advisory — two files from different
//! machines are not comparable — but a deterministic-field mismatch means
//! the search itself changed between the runs, so `cmp` exits non-zero on
//! one exactly like `check`.
//!
//! `dump` writes one benchmark's inputs (`source.sql`, `target.sql`,
//! `program.dbp`) into a directory, so the `migrate` CLI — and CI's
//! forensics job — can run the exact evaluation instance from files.

use std::time::{Duration, Instant};

use bench::{cegis_config_for, config_for, row_to_json, run_table1, session_for};
use benchmarks::{all_benchmarks, textbook_benchmarks, Benchmark};
use migrator::baselines::solve_cegis;
use migrator::sketch_gen::generate_sketch;
use migrator::value_corr::VcEnumerator;
use migrator::SketchSolverKind;
use pipeline::RefactorError;

#[derive(Debug)]
struct Options {
    command: String,
    textbook_only: bool,
    only: Vec<String>,
    budget_secs: u64,
    cap: usize,
    out: String,
    out_explicit: bool,
    against: String,
    threads: usize,
    threshold: f64,
    positional: Vec<String>,
}

fn require_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn require_number<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let value = require_value(args, flag);
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{value}`");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut options = Options {
        command,
        textbook_only: false,
        only: Vec::new(),
        budget_secs: 20,
        cap: 100_000,
        out: "BENCH_results.json".to_string(),
        out_explicit: false,
        against: "BENCH_results.json".to_string(),
        threads: 0,
        threshold: 1.2,
        positional: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--textbook-only" => options.textbook_only = true,
            "--only" => options.only.push(require_value(&mut args, "--only")),
            "--out" => {
                options.out = require_value(&mut args, "--out");
                options.out_explicit = true;
            }
            "--against" => options.against = require_value(&mut args, "--against"),
            "--budget-secs" => options.budget_secs = require_number(&mut args, "--budget-secs"),
            "--threads" => options.threads = require_number(&mut args, "--threads"),
            "--cap" => options.cap = require_number(&mut args, "--cap"),
            "--threshold" => options.threshold = require_number(&mut args, "--threshold"),
            other if !other.starts_with('-') => options.positional.push(other.to_string()),
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    options
}

fn selected_benchmarks(options: &Options) -> Vec<Benchmark> {
    let pool = if options.textbook_only {
        textbook_benchmarks()
    } else {
        all_benchmarks()
    };
    if options.only.is_empty() {
        return pool;
    }
    pool.into_iter()
        .filter(|b| {
            options
                .only
                .iter()
                .any(|name| b.name.eq_ignore_ascii_case(name))
        })
        .collect()
}

fn table1(options: &Options) {
    println!("## Table 1 — main results (measured vs. paper)\n");
    println!(
        "| Benchmark | Funcs | Value Corr (paper) | Iters (paper) | Synth s (paper) | Total s (paper) | OK | Migration validated |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut results = Vec::new();
    for benchmark in selected_benchmarks(options) {
        let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        results.push(row_to_json(&benchmark, &row));
        println!(
            "| {} | {} | {} ({}) | {} ({}) | {:.1} ({:.1}) | {:.1} ({:.1}) | {} | {} |",
            row.name,
            benchmark.paper.funcs,
            row.value_corr,
            benchmark.paper.value_corr,
            row.iters,
            benchmark.paper.iters,
            row.synth_time,
            benchmark.paper.synth_time_secs,
            row.total_time,
            benchmark.paper.total_time_secs,
            if row.succeeded { "yes" } else { "NO" },
            match row.validated {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
        );
    }
    println!();

    // Only a full, unfiltered run may overwrite the default trajectory file;
    // a filtered spot-check would silently replace 20 rows with one.
    let filter = if !options.only.is_empty() {
        format!("only:{}", options.only.join(","))
    } else if options.textbook_only {
        "textbook-only".to_string()
    } else {
        "all".to_string()
    };
    if filter != "all" && !options.out_explicit {
        eprintln!(
            "filtered run ({filter}): not overwriting {}; pass --out to write anyway",
            options.out
        );
        return;
    }
    let count = results.len();
    let document = sqlbridge::Json::object()
        .with("solver", sqlbridge::Json::str("MfiGuided"))
        .with("filter", sqlbridge::Json::str(filter))
        .with("threads", parpool::thread_limit().into())
        .with("benchmark_count", count.into())
        .with("benchmarks", sqlbridge::Json::Array(results));
    match std::fs::write(&options.out, document.to_pretty_string()) {
        Ok(()) => eprintln!("wrote {}", options.out),
        Err(e) => eprintln!("cannot write {}: {e}", options.out),
    }
}

fn table2(options: &Options) {
    let budget = Duration::from_secs(options.budget_secs);
    println!(
        "## Table 2 — comparison with a CEGIS-style solver (budget {}s per benchmark)\n",
        options.budget_secs
    );
    println!("| Benchmark | Migrator synth s | CEGIS-style s | Speedup | Paper (Sketch s) |");
    println!("|---|---|---|---|---|");
    for benchmark in selected_benchmarks(options) {
        let migrator_row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        // Run the CEGIS baseline on the sketches produced by the same
        // correspondence enumeration (the space the Sketch encoding covers).
        // This is deliberately *not* a facade client: it swaps the paper's
        // completion algorithm for a baseline solver, which the pipeline —
        // by design — does not expose.
        let config = config_for(&benchmark, SketchSolverKind::MfiGuided);
        let mut enumerator = VcEnumerator::new(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
            &config.vc,
        );
        let start = Instant::now();
        let mut cegis_result = None;
        while let Some(phi) = enumerator.next_correspondence() {
            if start.elapsed() > budget {
                break;
            }
            let Some(sketch) = generate_sketch(
                &benchmark.source_program,
                &phi,
                &benchmark.target_schema,
                &config.sketch,
            ) else {
                continue;
            };
            let remaining = budget.saturating_sub(start.elapsed());
            let outcome = solve_cegis(
                &sketch,
                &benchmark.source_program,
                &benchmark.source_schema,
                &benchmark.target_schema,
                &cegis_config_for(&benchmark, remaining),
            );
            if outcome.program.is_some() {
                cegis_result = Some(start.elapsed());
                break;
            }
            if outcome.timed_out {
                break;
            }
        }
        let (cegis_text, speedup_text) = match cegis_result {
            Some(elapsed) => (
                format!("{:.1}", elapsed.as_secs_f64()),
                format!(
                    "{:.1}x",
                    elapsed.as_secs_f64() / migrator_row.synth_time.max(1e-3)
                ),
            ),
            None => (
                format!(">{:.1}", budget.as_secs_f64()),
                format!(
                    ">{:.1}x",
                    budget.as_secs_f64() / migrator_row.synth_time.max(1e-3)
                ),
            ),
        };
        let paper = benchmark
            .paper
            .sketch_time_secs
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| ">86400".to_string());
        println!(
            "| {} | {:.1} | {} | {} | {} |",
            benchmark.name, migrator_row.synth_time, cegis_text, speedup_text, paper
        );
    }
    println!();
}

fn table3(options: &Options) {
    println!(
        "## Table 3 — comparison with symbolic enumerative search (cap {} candidates)\n",
        options.cap
    );
    println!("| Benchmark | MFI iters | Enum iters (paper) | MFI synth s | Enum synth s (paper) |");
    println!("|---|---|---|---|---|");
    for benchmark in selected_benchmarks(options) {
        let mfi_row = run_table1(&benchmark, SketchSolverKind::MfiGuided);

        // Enumerative baseline: the same facade pipeline with full-model
        // blocking and a candidate cap standing in for the paper's 24-hour
        // timeout.
        let mut config = config_for(&benchmark, SketchSolverKind::Enumerative);
        config.max_iterations_per_sketch = options.cap;
        let session = session_for(&benchmark, SketchSolverKind::Enumerative).config(config);
        let start = Instant::now();
        let (succeeded, iterations) = match session.synthesize() {
            Ok(synthesized) => (true, synthesized.stats.iterations),
            Err(RefactorError::Unsolved { stats, .. }) => (false, stats.iterations),
            Err(error) => {
                eprintln!("benchmark {} failed to run: {error}", benchmark.name);
                std::process::exit(2);
            }
        };
        let enum_time = start.elapsed().as_secs_f64();
        let (enum_iters, enum_time_text) = if succeeded {
            (format!("{iterations}"), format!("{enum_time:.1}"))
        } else {
            (format!(">{iterations}"), format!(">{enum_time:.1}"))
        };
        let paper_iters = benchmark
            .paper
            .enumerative_iters
            .map(|i| i.to_string())
            .unwrap_or_else(|| "timeout".to_string());
        let paper_time = benchmark
            .paper
            .enumerative_time_secs
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| ">86400".to_string());
        println!(
            "| {} | {} | {} ({}) | {:.1} | {} ({}) |",
            benchmark.name,
            mfi_row.iters,
            enum_iters,
            paper_iters,
            mfi_row.synth_time,
            enum_time_text,
            paper_time,
        );
    }
    println!();
}

/// The deterministic-stats CI mode: re-runs the selected benchmarks and
/// compares the machine-independent columns against the committed
/// trajectory file. Wall time is excluded by design.
fn check(options: &Options) {
    let committed = match std::fs::read_to_string(&options.against) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e}", options.against);
            std::process::exit(2);
        }
    };
    let document = match sqlbridge::Json::parse(&committed) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", options.against);
            std::process::exit(2);
        }
    };
    let rows = document
        .get("benchmarks")
        .and_then(|b| b.as_array())
        .unwrap_or_else(|| {
            eprintln!("{} has no `benchmarks` array", options.against);
            std::process::exit(2);
        });
    let committed_row = |name: &str| -> Option<&sqlbridge::Json> {
        rows.iter()
            .find(|row| row.get("name").and_then(|n| n.as_str()) == Some(name))
    };

    println!(
        "## Deterministic-stats check against {} (wall time excluded)\n",
        options.against
    );
    println!("| Benchmark | Value Corr | Iters | Succeeded | Validated | Verdict |");
    println!("|---|---|---|---|---|---|");
    // Per-benchmark field-level diffs, collected for the Mismatches section
    // below the table (one `expected … / measured …` line per field).
    let mut mismatched: Vec<(String, Vec<String>)> = Vec::new();
    let mut checked = 0usize;
    for benchmark in selected_benchmarks(options) {
        let Some(expected) = committed_row(&benchmark.name) else {
            println!(
                "| {} | - | - | - | - | MISSING from {} |",
                benchmark.name, options.against
            );
            mismatched.push((
                benchmark.name.clone(),
                vec![format!("row is missing from {}", options.against)],
            ));
            continue;
        };
        let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        checked += 1;
        let mut diffs: Vec<String> = Vec::new();
        let mut field = |committed: Option<i128>, measured: i128, label: &str| {
            if committed != Some(measured) {
                diffs.push(format!(
                    "{label}: expected {}, measured {measured}",
                    committed.map_or("absent".to_string(), |v| v.to_string())
                ));
            }
        };
        let top = |key: &str| expected.get(key).and_then(|v| v.as_i128());
        // Deterministic counters nested under `phases` are part of the
        // trajectory contract too — exactly the allowlisted ones; the other
        // phase fields are wall-clock or scheduling-dependent by design.
        let phase = |key: &str| {
            expected
                .get("phases")
                .and_then(|p| p.get(key))
                .and_then(|v| v.as_i128())
        };
        for (name, extract) in bench::DETERMINISTIC_TOP_FIELDS {
            field(top(name), extract(&row), name);
        }
        for (name, extract) in bench::DETERMINISTIC_PHASE_FIELDS {
            field(phase(name), extract(&row.phases), &format!("phases.{name}"));
        }
        let committed_success = expected.get("succeeded").and_then(|v| v.as_bool());
        if committed_success != Some(row.succeeded) {
            diffs.push(format!(
                "succeeded: expected {}, measured {}",
                committed_success.map_or("absent".to_string(), |v| v.to_string()),
                row.succeeded
            ));
        }
        // End-to-end migration validation is deterministic (seeded source
        // instance, memory backend), so it is part of the trajectory
        // contract: an emitter regression fails the build here.
        let committed_validated = expected.get("validated").and_then(|v| v.as_bool());
        if committed_validated != row.validated {
            diffs.push(format!(
                "validated: expected {}, measured {}",
                committed_validated.map_or("null".to_string(), |v| v.to_string()),
                row.validated.map_or("null".to_string(), |v| v.to_string())
            ));
        }
        let verdict = if diffs.is_empty() {
            "ok".to_string()
        } else {
            let fields = diffs.len();
            mismatched.push((benchmark.name.clone(), diffs));
            format!("MISMATCH ({fields} field(s), see below)")
        };
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            benchmark.name,
            row.value_corr,
            row.iters,
            row.succeeded,
            row.validated.map_or("null".to_string(), |v| v.to_string()),
            verdict
        );
    }
    println!();
    if checked == 0 {
        eprintln!("no benchmarks selected — check the --only / --textbook-only filters");
        std::process::exit(2);
    }
    if !mismatched.is_empty() {
        println!("### Mismatches\n");
        for (name, diffs) in &mismatched {
            for diff in diffs {
                println!("- {name}: {diff}");
            }
        }
        println!();
        let fields: usize = mismatched.iter().map(|(_, diffs)| diffs.len()).sum();
        eprintln!(
            "{} benchmark(s) diverged from {} ({} field(s) differ)",
            mismatched.len(),
            options.against,
            fields
        );
        std::process::exit(1);
    }
    eprintln!("{checked} benchmark(s) match {}", options.against);
}

/// Benchmarks the repo records as unsolved under the standard
/// configuration. The known-red gate attempts them with the widened-space
/// preset and *records* the result instead of gating on it; everything not
/// in this list must stay green.
const KNOWN_RED: &[&str] = &["MathHotSpot", "probable-engine"];

/// The known-red CI gate: every benchmark outside [`KNOWN_RED`] must keep
/// synthesizing *and* validating under the standard configuration (exit 1
/// otherwise), and the known-red frontier is attempted under the
/// widened-space preset so the job summary records its current status.
/// The output is Markdown, suitable for `$GITHUB_STEP_SUMMARY`.
fn known_red(options: &Options) {
    println!("## Known-red gate\n");
    println!("| Benchmark | Config | Synthesized | Validated | Status |");
    println!("|---|---|---|---|---|");
    let mut regressions: Vec<String> = Vec::new();
    let mut green = 0usize;
    let mut frontier: Vec<Benchmark> = Vec::new();
    for benchmark in selected_benchmarks(options) {
        if KNOWN_RED.contains(&benchmark.name.as_str()) {
            frontier.push(benchmark);
            continue;
        }
        let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        let ok = row.succeeded && row.validated == Some(true);
        if ok {
            green += 1;
        } else {
            regressions.push(benchmark.name.clone());
        }
        println!(
            "| {} | standard | {} | {} | {} |",
            benchmark.name,
            if row.succeeded { "yes" } else { "NO" },
            match row.validated {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
            if ok { "green" } else { "REGRESSION" },
        );
    }
    for benchmark in frontier {
        let row = bench::run_table1_with(&benchmark, bench::widened_config_for(&benchmark));
        let solved = row.succeeded && row.validated == Some(true);
        println!(
            "| {} | widened | {} | {} | {} |",
            benchmark.name,
            if row.succeeded { "yes" } else { "no" },
            match row.validated {
                Some(true) => "yes",
                Some(false) => "no",
                None => "-",
            },
            if solved {
                "solved under widened space"
            } else {
                "known red (informational)"
            },
        );
    }
    println!();
    if !regressions.is_empty() {
        eprintln!(
            "known-red gate: {} benchmark(s) regressed: {}",
            regressions.len(),
            regressions.join(", ")
        );
        std::process::exit(1);
    }
    eprintln!("known-red gate: {green} green benchmark(s) still green");
}

/// Loads one `BENCH_results.json` document, exiting with a usage error when
/// the file is unreadable or not the expected shape.
fn load_results(path: &str) -> sqlbridge::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let document = sqlbridge::Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    if document
        .get("benchmarks")
        .and_then(|b| b.as_array())
        .is_none()
    {
        eprintln!("{path} has no `benchmarks` array");
        std::process::exit(2);
    }
    document
}

/// The run-over-run diff mode: `experiments cmp old.json new.json`.
///
/// Prints per-benchmark wall-time ratios and flags two kinds of divergence:
/// wall-time regressions beyond `--threshold` (advisory — wall time is
/// machine-dependent) and drift in the deterministic allowlisted fields
/// (fatal — the search behaved differently, exit 1).
fn cmp(options: &Options) {
    let [old_path, new_path] = options.positional.as_slice() else {
        eprintln!("usage: experiments cmp <old.json> <new.json> [--threshold <ratio>]");
        std::process::exit(2);
    };
    let old_doc = load_results(old_path);
    let new_doc = load_results(new_path);
    let old_rows = old_doc
        .get("benchmarks")
        .and_then(|b| b.as_array())
        .unwrap();
    let new_rows = new_doc
        .get("benchmarks")
        .and_then(|b| b.as_array())
        .unwrap();
    let row_name = |row: &sqlbridge::Json| {
        row.get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("<unnamed>")
            .to_string()
    };
    println!("## Bench comparison: {old_path} → {new_path}\n");
    println!("| Benchmark | Total s (old) | Total s (new) | Ratio | Deterministic |");
    println!("|---|---|---|---|---|");

    let total_secs = |row: &sqlbridge::Json| row.get("total_time_secs").and_then(|v| v.as_f64());
    let snapshot_bytes = |row: &sqlbridge::Json| {
        row.get("phases")
            .and_then(|p| p.get("snapshot_bytes_copied"))
            .and_then(|v| v.as_i128())
            .unwrap_or(0)
    };

    // Deterministic drift is judged field-by-field on the same allowlists
    // `check` uses, plus the success/validation flags.
    let drift_for = |old_row: &sqlbridge::Json, new_row: &sqlbridge::Json| -> Vec<String> {
        let mut drift = Vec::new();
        let mut diff = |label: &str, old: Option<i128>, new: Option<i128>| {
            if old != new {
                let fmt = |v: Option<i128>| v.map_or("absent".to_string(), |v| v.to_string());
                drift.push(format!("{label}: {} → {}", fmt(old), fmt(new)));
            }
        };
        for (name, _) in bench::DETERMINISTIC_TOP_FIELDS {
            diff(
                name,
                old_row.get(name).and_then(|v| v.as_i128()),
                new_row.get(name).and_then(|v| v.as_i128()),
            );
        }
        let phase = |row: &sqlbridge::Json, key: &str| {
            row.get("phases")
                .and_then(|p| p.get(key))
                .and_then(|v| v.as_i128())
        };
        for (name, _) in bench::DETERMINISTIC_PHASE_FIELDS {
            diff(
                &format!("phases.{name}"),
                phase(old_row, name),
                phase(new_row, name),
            );
        }
        for flag in ["succeeded", "validated"] {
            let read =
                |row: &sqlbridge::Json| row.get(flag).and_then(|v| v.as_bool()).map(i128::from);
            diff(flag, read(old_row), read(new_row));
        }
        drift
    };

    let mut regressions: Vec<String> = Vec::new();
    let mut drifted: Vec<(String, Vec<String>)> = Vec::new();
    let mut missing = 0usize;
    let mut old_total = 0.0f64;
    let mut new_total = 0.0f64;
    let mut old_snapshot_total = 0i128;
    let mut new_snapshot_total = 0i128;
    let mut compared = 0usize;
    for old_row in old_rows {
        let name = row_name(old_row);
        // A row absent from one file is not deterministic drift — filtered
        // runs (CI's fast subset) legitimately cover fewer benchmarks.
        let Some(new_row) = new_rows.iter().find(|r| row_name(r) == name) else {
            println!("| {name} | - | - | - | not in {new_path} |");
            missing += 1;
            continue;
        };
        compared += 1;
        let (old_secs, new_secs) = (total_secs(old_row), total_secs(new_row));
        old_total += old_secs.unwrap_or(0.0);
        new_total += new_secs.unwrap_or(0.0);
        old_snapshot_total += snapshot_bytes(old_row);
        new_snapshot_total += snapshot_bytes(new_row);
        let ratio = match (old_secs, new_secs) {
            (Some(old), Some(new)) if old > 0.0 => Some(new / old),
            _ => None,
        };
        if let Some(ratio) = ratio {
            if ratio > options.threshold {
                regressions.push(format!(
                    "{name}: total_time_secs {:.3} → {:.3} ({ratio:.2}x)",
                    old_secs.unwrap_or(0.0),
                    new_secs.unwrap_or(0.0),
                ));
            }
        }
        let drift = drift_for(old_row, new_row);
        let verdict = if drift.is_empty() {
            "ok".to_string()
        } else {
            let fields = drift.len();
            drifted.push((name.clone(), drift));
            format!("DRIFT ({fields} field(s), see below)")
        };
        println!(
            "| {name} | {} | {} | {} | {verdict} |",
            old_secs.map_or("-".to_string(), |s| format!("{s:.3}")),
            new_secs.map_or("-".to_string(), |s| format!("{s:.3}")),
            ratio.map_or("-".to_string(), |r| format!("{r:.2}x")),
        );
    }
    for new_row in new_rows {
        let name = row_name(new_row);
        if !old_rows.iter().any(|r| row_name(r) == name) {
            println!("| {name} | - | - | - | new in {new_path} |");
            missing += 1;
        }
    }
    println!();
    println!(
        "Suite totals: wall {old_total:.3}s → {new_total:.3}s ({}); snapshot_bytes_copied {old_snapshot_total} → {new_snapshot_total} ({})",
        if old_total > 0.0 {
            format!("{:.2}x", new_total / old_total)
        } else {
            "-".to_string()
        },
        if old_snapshot_total > 0 {
            format!("{:.3}x", new_snapshot_total as f64 / old_snapshot_total as f64)
        } else {
            "-".to_string()
        },
    );
    println!();

    println!("### Regressions (threshold {:.2}x)\n", options.threshold);
    if regressions.is_empty() {
        println!("none");
    } else {
        for regression in &regressions {
            println!("- {regression}");
        }
    }
    println!();

    if !drifted.is_empty() {
        println!("### Deterministic drift\n");
        for (name, drift) in &drifted {
            for line in drift {
                println!("- {name}: {line}");
            }
        }
        println!();
        let fields: usize = drifted.iter().map(|(_, d)| d.len()).sum();
        eprintln!(
            "{} benchmark(s) show deterministic drift between {old_path} and {new_path} ({fields} field(s))",
            drifted.len()
        );
        std::process::exit(1);
    }
    if compared == 0 {
        eprintln!("no common benchmarks between {old_path} and {new_path}");
        std::process::exit(2);
    }
    eprintln!(
        "{compared} benchmark(s) compared ({missing} only in one file); {} wall-time regression(s) beyond {:.2}x (advisory)",
        regressions.len(),
        options.threshold
    );
}

/// Dumps one benchmark's inputs to a directory as the three files the
/// `migrate` CLI consumes: `source.sql` / `target.sql` (ANSI DDL) and
/// `program.dbp` (the source program). CI uses this to run `migrate explain`
/// on the exact known-red evaluation instance.
fn dump(options: &Options) {
    let [name, dir] = options.positional.as_slice() else {
        eprintln!("usage: experiments dump <benchmark> <dir>");
        std::process::exit(2);
    };
    let Some(benchmark) = all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
    else {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(2);
    }
    let dialect = sqlbridge::Ansi;
    let files = [
        (
            "source.sql",
            sqlbridge::schema_to_ddl(&benchmark.source_schema, &dialect),
        ),
        (
            "target.sql",
            sqlbridge::schema_to_ddl(&benchmark.target_schema, &dialect),
        ),
        (
            "program.dbp",
            dbir::pretty::program_to_string(&benchmark.source_program),
        ),
    ];
    for (file, contents) in files {
        let path = format!("{dir}/{file}");
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    eprintln!("wrote {}/{{source.sql,target.sql,program.dbp}}", dir);
}

fn main() {
    let options = parse_args();
    // 0 means "use the machine's available parallelism" (parpool's default).
    parpool::set_thread_limit(options.threads);
    match options.command.as_str() {
        "table1" => table1(&options),
        "table2" => table2(&options),
        "table3" => table3(&options),
        "check" => check(&options),
        "known-red" => known_red(&options),
        "cmp" => cmp(&options),
        "dump" => dump(&options),
        "all" => {
            table1(&options);
            table2(&options);
            table3(&options);
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected table1, table2, table3, check, known-red, cmp, dump or all"
            );
            std::process::exit(2);
        }
    }
}
