//! Shared harness code for the experiment binary and the Criterion benches:
//! per-benchmark synthesis configuration and result-row formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use benchmarks::{Benchmark, Category};
use dbir::equiv::TestConfig;
use migrator::baselines::CegisConfig;
use migrator::{SketchSolverKind, SynthesisConfig, SynthesisOutcome, SynthesisStats};
use pipeline::{RefactorError, Refactoring};

/// The synthesis configuration used for a benchmark in the experiments:
/// textbook benchmarks use the standard configuration; application-scale
/// benchmarks use a leaner bounded-testing configuration (fewer argument
/// combinations per function), matching DESIGN.md.
pub fn config_for(benchmark: &Benchmark, solver: SketchSolverKind) -> SynthesisConfig {
    let mut config = SynthesisConfig {
        solver,
        ..SynthesisConfig::standard()
    };
    lean_testing_for(benchmark, &mut config);
    config
}

/// The widened-space configuration ([`SynthesisConfig::widened`]) with the
/// same per-category bounded-testing adjustments as [`config_for`] — the
/// configuration the known-red gate uses to attack the frontier benchmarks.
pub fn widened_config_for(benchmark: &Benchmark) -> SynthesisConfig {
    let mut config = SynthesisConfig::widened();
    lean_testing_for(benchmark, &mut config);
    config
}

fn lean_testing_for(benchmark: &Benchmark, config: &mut SynthesisConfig) {
    if benchmark.category == Category::RealWorld {
        config.testing = TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::default()
        };
        config.verification = TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::default()
        };
    }
}

/// One entry in a deterministic-field allowlist: the JSON field name and
/// the extractor that reads its value from a fresh run.
pub type DeterministicField<T> = (&'static str, fn(&T) -> i128);

/// The deterministic trajectory contract: the top-level `BENCH_results.json`
/// fields `experiments check` compares against a fresh run, with their
/// extractors. Everything not listed here (wall time, snapshot and
/// oracle-hit counters, interner sizes) is machine- or scheduling-dependent
/// and deliberately excluded.
pub const DETERMINISTIC_TOP_FIELDS: &[DeterministicField<Table1Row>] = &[
    ("value_correspondences", |row| row.value_corr as i128),
    ("iterations", |row| row.iters as i128),
    ("sequences_tested", |row| row.sequences_tested as i128),
];

/// The deterministic phase counters nested under `phases` in
/// `BENCH_results.json` — the other half of the trajectory contract (see
/// [`DETERMINISTIC_TOP_FIELDS`]). These are merged from the winning
/// trajectory in enumeration order, so they are identical at any thread
/// count.
pub const DETERMINISTIC_PHASE_FIELDS: &[DeterministicField<migrator::PhaseBreakdown>] = &[
    ("sat_blocking_clauses", |p| p.sat_blocking_clauses as i128),
    ("plans_compiled", |p| p.plans_compiled as i128),
    ("solver_reuses", |p| p.solver_reuses as i128),
    ("learned_clauses_kept", |p| p.learned_clauses_kept as i128),
    ("prefix_cache_hits", |p| p.prefix_cache_hits as i128),
    ("undo_frames", |p| p.undo_frames as i128),
    ("undo_ops_rolled_back", |p| p.undo_ops_rolled_back as i128),
];

/// The CEGIS (Sketch stand-in) configuration used in Table 2 runs.
pub fn cegis_config_for(benchmark: &Benchmark, time_limit: Duration) -> CegisConfig {
    let testing = config_for(benchmark, SketchSolverKind::MfiGuided).testing;
    CegisConfig {
        max_candidates: 0,
        time_limit,
        testing,
    }
}

/// One measured row of Table 1, plus the underlying search statistics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Whether synthesis succeeded.
    pub succeeded: bool,
    /// Value correspondences considered.
    pub value_corr: usize,
    /// Candidate programs explored.
    pub iters: usize,
    /// Synthesis time (seconds).
    pub synth_time: f64,
    /// Total time including verification (seconds).
    pub total_time: f64,
    /// Sketches generated (one per productive value correspondence).
    pub sketches_generated: usize,
    /// Structurally invalid hole assignments encountered.
    pub invalid_instantiations: usize,
    /// Completion count of the largest sketch explored.
    pub largest_search_space: u128,
    /// Invocation sequences executed during testing.
    pub sequences_tested: usize,
    /// Equivalence checks that accepted a candidate without enumerating
    /// their whole bound (their verdicts are optimistic).
    pub truncated_checks: usize,
    /// `true` when every accepting equivalence check exhausted its bound
    /// (i.e. `truncated_checks == 0`).
    pub bound_exhausted: bool,
    /// Source-side sequences served from the memoized source oracle.
    pub oracle_hits: usize,
    /// Largest single physical snapshot copy (bytes) performed by the
    /// bounded-testing engine during this run — a COW clone's pointer
    /// overhead or one copy-on-write table copy — an allocation proxy that
    /// makes snapshot-cost regressions visible independent of wall time.
    pub peak_snapshot_bytes: usize,
    /// Total payload bytes held by the process-wide value interner after
    /// this run (cumulative across runs in one process).
    pub interned_bytes: usize,
    /// Whether the emitted data-migration script, executed end-to-end on
    /// the in-memory SQL backend over a seeded source instance, produced
    /// exactly the dbir-predicted target instance (`None` when synthesis
    /// failed, so there is no migration to validate).
    pub validated: Option<bool>,
    /// How the run ended (`solved`, `no_solution`, `timeout`, `cancelled`).
    pub outcome: &'static str,
    /// Per-phase breakdown of the run: wall-clock times (never compared
    /// across runs) plus the deterministic counters
    /// (`sat_blocking_clauses`, `plans_compiled`, `solver_reuses`,
    /// `learned_clauses_kept`, `prefix_cache_hits`, `undo_frames`,
    /// `undo_ops_rolled_back`) that `experiments check` verifies.
    pub phases: migrator::PhaseBreakdown,
}

/// Builds the facade session the harness runs a benchmark through — the
/// same `Refactoring` pipeline every other client uses.
pub fn session_for(benchmark: &Benchmark, solver: SketchSolverKind) -> Refactoring {
    session_with(benchmark, config_for(benchmark, solver))
}

/// Builds the facade session for a benchmark with an explicit synthesis
/// configuration (e.g. the widened-space preset).
pub fn session_with(benchmark: &Benchmark, config: SynthesisConfig) -> Refactoring {
    Refactoring::new(
        benchmark.source_schema.clone(),
        benchmark.target_schema.clone(),
    )
    .program(benchmark.source_program.clone())
    .config(config)
}

/// Runs the full synthesis pipeline on a benchmark — through the
/// [`Refactoring`] facade — and returns the measured Table 1 row.
pub fn run_table1(benchmark: &Benchmark, solver: SketchSolverKind) -> Table1Row {
    run_table1_with(benchmark, config_for(benchmark, solver))
}

/// [`run_table1`] with an explicit synthesis configuration.
pub fn run_table1_with(benchmark: &Benchmark, config: SynthesisConfig) -> Table1Row {
    dbir::equiv::reset_snapshot_peak();
    let (outcome, stats, validated) = match session_with(benchmark, config).synthesize() {
        Ok(synthesized) => {
            // Every successful synthesis also validates its emitted
            // migration end-to-end through the in-memory SQL backend, so a
            // benchmark row is an emitter test, not just a synthesizer
            // test. This is deterministic (seeded instance, no wall time),
            // so `experiments check` compares it.
            let validated = synthesized
                .emit(Box::new(sqlbridge::Sqlite))
                .validate(
                    &mut sqlexec::MemoryBackend::new(),
                    VALIDATION_ROWS_PER_TABLE,
                )
                .map(|validated| validated.ok())
                .unwrap_or(false);
            (synthesized.outcome, synthesized.stats, Some(validated))
        }
        Err(RefactorError::Unsolved { outcome, stats }) => (outcome, *stats, None),
        Err(error) => unreachable!("benchmark inputs are pre-parsed: {error}"),
    };
    row_from_stats(benchmark, outcome, &stats, validated)
}

fn row_from_stats(
    benchmark: &Benchmark,
    outcome: SynthesisOutcome,
    stats: &SynthesisStats,
    validated: Option<bool>,
) -> Table1Row {
    Table1Row {
        name: benchmark.name.clone(),
        succeeded: outcome == SynthesisOutcome::Solved,
        value_corr: stats.value_correspondences,
        iters: stats.iterations,
        synth_time: stats.synthesis_time.as_secs_f64(),
        total_time: stats.total_time().as_secs_f64(),
        sketches_generated: stats.sketches_generated,
        invalid_instantiations: stats.invalid_instantiations,
        largest_search_space: stats.largest_search_space,
        sequences_tested: stats.sequences_tested,
        truncated_checks: stats.truncated_checks,
        bound_exhausted: stats.truncated_checks == 0,
        oracle_hits: stats.oracle_hits,
        peak_snapshot_bytes: dbir::equiv::snapshot_peak_bytes(),
        interned_bytes: dbir::intern::stats().total_bytes(),
        validated,
        outcome: outcome.as_str(),
        phases: stats.phases.clone(),
    }
}

/// Rows seeded per source table when validating an emitted migration
/// (shared with the `migrate` CLI via `sqlexec`, so CI validates the same
/// instance a user's `--validate` run does).
pub use sqlexec::DEFAULT_ROWS_PER_TABLE as VALIDATION_ROWS_PER_TABLE;

/// Renders a measured row (plus its benchmark's metadata) as one entry of
/// the machine-readable `BENCH_results.json`.
pub fn row_to_json(benchmark: &Benchmark, row: &Table1Row) -> sqlbridge::Json {
    use sqlbridge::Json;
    Json::object()
        .with("name", Json::str(&row.name))
        .with(
            "category",
            Json::str(match benchmark.category {
                Category::Textbook => "textbook",
                Category::RealWorld => "realworld",
            }),
        )
        .with("succeeded", Json::Bool(row.succeeded))
        .with("value_correspondences", row.value_corr.into())
        .with("iterations", row.iters.into())
        .with("sketches_generated", row.sketches_generated.into())
        .with("invalid_instantiations", row.invalid_instantiations.into())
        .with("largest_search_space", row.largest_search_space.into())
        .with("sequences_tested", row.sequences_tested.into())
        .with("truncated_checks", row.truncated_checks.into())
        .with("bound_exhausted", Json::Bool(row.bound_exhausted))
        .with("oracle_hits", row.oracle_hits.into())
        .with("peak_snapshot_bytes", row.peak_snapshot_bytes.into())
        .with("interned_bytes", row.interned_bytes.into())
        .with(
            "validated",
            match row.validated {
                Some(ok) => Json::Bool(ok),
                None => Json::Null,
            },
        )
        .with("outcome", Json::str(row.outcome))
        .with("synth_time_secs", row.synth_time.into())
        .with("total_time_secs", row.total_time.into())
        .with("phases", pipeline::report::phases_json(&row.phases))
        .with(
            "paper",
            Json::object()
                .with("value_correspondences", benchmark.paper.value_corr.into())
                .with("iterations", benchmark.paper.iters.into())
                .with("synth_time_secs", benchmark.paper.synth_time_secs.into())
                .with("total_time_secs", benchmark.paper.total_time_secs.into()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchmarks::benchmark_by_name;

    #[test]
    fn real_world_benchmarks_get_leaner_testing_configs() {
        let textbook = benchmark_by_name("Ambler-4").unwrap();
        let realworld = benchmark_by_name("coachup").unwrap();
        let textbook_config = config_for(&textbook, SketchSolverKind::MfiGuided);
        let realworld_config = config_for(&realworld, SketchSolverKind::MfiGuided);
        assert!(
            realworld_config.testing.max_arg_combinations.unwrap()
                < textbook_config.testing.max_arg_combinations.unwrap()
        );
    }

    #[test]
    fn deterministic_allowlists_are_distinct_and_json_backed() {
        // Every allowlisted field must exist (under its exact name) in the
        // JSON a row renders to, or `check` would report spurious "absent"
        // mismatches forever.
        let benchmark = benchmark_by_name("Ambler-4").unwrap();
        let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        let json = row_to_json(&benchmark, &row);
        for (name, extract) in DETERMINISTIC_TOP_FIELDS {
            assert_eq!(
                json.get(name).and_then(|v| v.as_i128()),
                Some(extract(&row)),
                "top-level field {name}"
            );
        }
        let phases = json.get("phases").unwrap();
        for (name, extract) in DETERMINISTIC_PHASE_FIELDS {
            assert_eq!(
                phases.get(name).and_then(|v| v.as_i128()),
                Some(extract(&row.phases)),
                "phase field {name}"
            );
        }
    }

    #[test]
    fn widened_config_keeps_lean_testing_for_realworld() {
        let realworld = benchmark_by_name("coachup").unwrap();
        let widened = widened_config_for(&realworld);
        assert_eq!(widened.testing.max_arg_combinations, Some(4));
        assert!(widened.sketch.relax_delete_coverage);
        let textbook = benchmark_by_name("Ambler-4").unwrap();
        let widened = widened_config_for(&textbook);
        assert_eq!(
            widened.testing.max_arg_combinations,
            SynthesisConfig::standard().testing.max_arg_combinations
        );
    }

    #[test]
    fn table1_row_for_the_smallest_benchmark() {
        let benchmark = benchmark_by_name("Ambler-4").unwrap();
        let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
        assert!(row.succeeded);
        assert!(row.value_corr >= 1);
        assert!(row.total_time >= row.synth_time);
    }
}
