//! Criterion bench for Table 2 (comparison with the Sketch tool): the
//! MFI-guided solver against the CEGIS-style enumerator on sketches where
//! both terminate quickly. The qualitative result of Table 2 — the
//! CEGIS-style solver times out on larger sketches — is reproduced by the
//! `experiments table2` command; here we measure the two solvers on a small
//! sketch where both finish, so the per-candidate overhead is visible.

use benchmarks::benchmark_by_name;
use criterion::{criterion_group, criterion_main, Criterion};
use dbir::equiv::{SourceOracle, TestConfig};
use migrator::baselines::{solve_cegis, CegisConfig};
use migrator::completion::{complete_sketch, BlockingStrategy, CompletionControls};
use migrator::sketch_gen::{generate_sketch, SketchGenConfig};
use migrator::value_corr::{VcConfig, VcEnumerator};

fn bench_table2(c: &mut Criterion) {
    let benchmark = benchmark_by_name("Ambler-4").expect("benchmark exists");
    let mut enumerator = VcEnumerator::new(
        &benchmark.source_program,
        &benchmark.source_schema,
        &benchmark.target_schema,
        &VcConfig::default(),
    );
    let phi = enumerator.next_correspondence().unwrap();
    let sketch = generate_sketch(
        &benchmark.source_program,
        &phi,
        &benchmark.target_schema,
        &SketchGenConfig::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("table2_sketch_solvers");
    group.sample_size(10);
    group.bench_function("mfi_guided", |b| {
        b.iter(|| {
            let oracle = SourceOracle::new(&benchmark.source_program, &benchmark.source_schema);
            let outcome = complete_sketch(
                &sketch,
                &oracle,
                &benchmark.target_schema,
                &TestConfig::default(),
                &TestConfig::default(),
                BlockingStrategy::MinimumFailingInput,
                0,
                CompletionControls::none(),
            );
            assert!(outcome.program.is_some());
            outcome
        })
    });
    group.bench_function("cegis_style", |b| {
        b.iter(|| {
            let outcome = solve_cegis(
                &sketch,
                &benchmark.source_program,
                &benchmark.source_schema,
                &benchmark.target_schema,
                &CegisConfig::default(),
            );
            assert!(outcome.program.is_some());
            outcome
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
