//! Microbenchmarks for the bounded-testing hot path's two dominant
//! primitives: instance snapshot/restore and compiled-plan scans.
//!
//! End-to-end synthesis time moves for many reasons; these benches isolate
//! the costs that value interning and plan compilation were built to shrink,
//! so a regression in snapshot or scan cost is visible even when wall-time
//! noise or search-trajectory changes mask it in `experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use dbir::ast::{JoinChain, Operand, Pred, Query, Update};
use dbir::eval::{CompiledQuery, CompiledUpdate, Env, Evaluator, Journal};
use dbir::schema::{QualifiedAttr, Schema};
use dbir::{Instance, Value};

fn schema() -> Schema {
    Schema::parse(
        "Product(pk pid: int, pname: string, price: int, descr: string, image: binary, weight: int)",
    )
    .unwrap()
}

/// A populated instance shaped like a bounded-testing snapshot at depth 2-3:
/// a handful of rows, string- and blob-heavy.
fn populated(rows: usize) -> (Schema, Instance) {
    let schema = schema();
    let mut instance = Instance::empty(&schema);
    for i in 0..rows {
        instance.insert(
            &"Product".into(),
            vec![
                Value::Int(i as i64),
                Value::str(format!("product-name-{}", i % 8)),
                Value::Int(100 + i as i64),
                Value::str(format!("a moderately long description string {}", i % 8)),
                Value::bytes([0xab, i as u8, 0xcd]),
                Value::Int(i as i64 % 50),
            ],
        );
    }
    (schema, instance)
}

fn bench_snapshots(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_snapshot");
    group.sample_size(20);
    for rows in [4usize, 64, 512] {
        let (schema, instance) = populated(rows);
        // A COW clone shares every table Arc: O(tables), not O(rows).
        group.bench_function(format!("cow_clone/{rows}_rows"), |b| {
            b.iter(|| instance.clone())
        });
        // The pre-COW cost for reference: materialise a fresh copy of
        // every row.
        group.bench_function(format!("deep_clone/{rows}_rows"), |b| {
            b.iter(|| {
                let mut copy = Instance::empty(&schema);
                copy.set_rows(&"Product".into(), instance.rows(&"Product".into()).to_vec());
                copy
            })
        });
        // The DFS pattern: clone the parent snapshot, mutate the child,
        // drop it when the subtree is done.
        group.bench_function(format!("clone_mutate_drop/{rows}_rows"), |b| {
            b.iter(|| {
                let mut child = instance.clone();
                child.insert(
                    &"Product".into(),
                    vec![
                        Value::Int(-1),
                        Value::str("fresh"),
                        Value::Int(0),
                        Value::str("fresh-descr"),
                        Value::bytes([0u8]),
                        Value::Int(0),
                    ],
                );
                child
            })
        });
        group.bench_function(format!("approx_heap_bytes/{rows}_rows"), |b| {
            b.iter(|| instance.approx_heap_bytes())
        });
    }
    group.finish();
}

/// One DFS frame's worth of mutation: insert a fresh row and rewrite the
/// `weight` cells of the rows sharing one of the eight `pname` values.
fn frame_update(schema: &Schema) -> CompiledUpdate {
    let update = Update::Seq(vec![
        Update::Insert {
            join: JoinChain::table("Product"),
            values: vec![
                (
                    QualifiedAttr::new("Product", "pid"),
                    Operand::Value(Value::Int(-1)),
                ),
                (
                    QualifiedAttr::new("Product", "pname"),
                    Operand::Value(Value::str("fresh")),
                ),
                (
                    QualifiedAttr::new("Product", "price"),
                    Operand::Value(Value::Int(0)),
                ),
                (
                    QualifiedAttr::new("Product", "descr"),
                    Operand::Value(Value::str("fresh-descr")),
                ),
                (
                    QualifiedAttr::new("Product", "image"),
                    Operand::Value(Value::bytes([0u8])),
                ),
                (
                    QualifiedAttr::new("Product", "weight"),
                    Operand::Value(Value::Int(0)),
                ),
            ],
        },
        Update::UpdateAttr {
            join: JoinChain::table("Product"),
            pred: Pred::eq_value(
                QualifiedAttr::new("Product", "pname"),
                Operand::Value(Value::str("product-name-3")),
            ),
            attr: QualifiedAttr::new("Product", "weight"),
            value: Operand::Value(Value::Int(7)),
        },
    ]);
    CompiledUpdate::compile(schema, &update, &Env::new()).expect("update compiles")
}

/// The two backtracking strategies head to head: the undo-log journal
/// (apply journaled, roll back) against clone-based restore (COW-clone a
/// snapshot, apply — paying the copy-on-write of every touched table —
/// then reinstate the snapshot). The journal mutates a uniquely-owned
/// instance in place, so no table is ever copied.
fn bench_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("backtracking");
    group.sample_size(20);
    for rows in [4usize, 64, 512] {
        let (schema, original) = populated(rows);
        let compiled = frame_update(&schema);

        let mut work = original.clone();
        let mut journal = Journal::new();
        group.bench_function(format!("undo_rollback/{rows}_rows"), |b| {
            b.iter(|| {
                let mark = journal.mark();
                let uid = compiled
                    .execute_journaled(&mut work, 1_000, &mut journal)
                    .expect("update applies");
                journal.rollback_to(mark, &mut work);
                uid
            })
        });

        let mut work = original.clone();
        group.bench_function(format!("snapshot_restore/{rows}_rows"), |b| {
            b.iter(|| {
                let snapshot = work.clone();
                let uid = compiled.execute(&mut work, 1_000).expect("update applies");
                work = snapshot;
                uid
            })
        });
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_scan");
    group.sample_size(20);
    let (schema, instance) = populated(64);
    let query = Query::select(
        vec![
            QualifiedAttr::new("Product", "pname"),
            QualifiedAttr::new("Product", "price"),
        ],
        Pred::eq_value(
            QualifiedAttr::new("Product", "pid"),
            Operand::Value(Value::Int(7)),
        ),
        JoinChain::table("Product"),
    );
    let env = Env::new();
    let compiled = CompiledQuery::compile(&schema, &query, &env).expect("query compiles");
    group.bench_function("compiled_filter_scan", |b| {
        b.iter(|| {
            let rows = compiled.execute(&instance).expect("scan succeeds");
            assert_eq!(rows.len(), 1);
            rows
        })
    });
    // The AST interpreter as a reference point: re-resolves and re-compiles
    // the predicate per call.
    group.bench_function("interpreted_filter_scan", |b| {
        b.iter(|| {
            let mut evaluator = Evaluator::new(&schema);
            let rel = evaluator
                .eval_query(&query, &instance, &env)
                .expect("query evaluates");
            assert_eq!(rel.rows.len(), 1);
            rel
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshots, bench_backtracking, bench_scans);
criterion_main!(benches);
